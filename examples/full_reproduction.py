"""One-command mini reproduction of the whole evaluation.

Runs scaled-down versions of every paper artifact back to back and
prints their outputs — a ~2-minute tour of the reproduction.  For the
recorded (larger-scale) numbers see EXPERIMENTS.md and results/; for
paper-scale runs use the per-experiment CLIs documented in README.md.

Run with::

    python examples/full_reproduction.py
"""

from __future__ import annotations

import time

from repro.experiments import ablations, fig1, fig2, fig3, fig4, fig5
from repro.experiments import fig6, table1, whatif_calls


def _banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    started = time.perf_counter()

    _banner("Fig. 1 — TPC-C worked example")
    print(fig1.render(fig1.run()))

    _banner("Table I — solve-time scaling (scaled: Q = 200)")
    print(
        table1.render(
            table1.run(
                table1.Table1Config(
                    total_queries=(200,),
                    candidate_sizes=(50, 200),
                    time_limit=20.0,
                )
            )
        )
    )

    _banner("Fig. 2 — candidate heuristics (scaled: N = 60, Q = 36)")
    print(
        fig2.render(
            fig2.run(
                fig2.Fig2Config(
                    queries_per_table=6,
                    attributes_per_table=10,
                    candidate_set_size=16,
                    budget_steps=4,
                    include_imax=True,
                    time_limit=20.0,
                )
            )
        )
    )

    _banner("Fig. 3 — candidate-set sizes (scaled)")
    print(
        fig3.render(
            fig3.run(
                fig3.Fig3Config(
                    queries_per_table=6,
                    attributes_per_table=10,
                    candidate_set_sizes=(8, 48),
                    budget_steps=4,
                    include_imax=True,
                    time_limit=20.0,
                )
            )
        )
    )

    _banner("Fig. 4 — enterprise workload (scaled: 5 % of the ERP)")
    print(
        fig4.render(
            fig4.run(
                fig4.Fig4Config(
                    workload_scale=0.05,
                    candidate_set_sizes=(24,),
                    budget_steps=3,
                    include_imax=False,
                    time_limit=20.0,
                )
            )
        )
    )

    _banner("Fig. 5 — end-to-end on measured costs (scaled)")
    print(
        fig5.render(
            fig5.run(
                fig5.Fig5Config(
                    queries_per_table=4,
                    attributes_per_table=5,
                    row_cap=10_000,
                    budget_steps=4,
                    time_limit=20.0,
                )
            )
        )
    )

    _banner("Fig. 6 — LP size growth")
    print(fig6.render(fig6.run()))

    _banner("What-if call accounting (Section III-A)")
    print(
        whatif_calls.render(
            whatif_calls.run(
                whatif_calls.WhatIfCallsConfig(
                    queries_per_table_values=(20, 40),
                    candidate_set_size=200,
                )
            )
        )
    )

    _banner("Ablations — Remark 1 variants")
    print(ablations.render(ablations.run()))

    print(
        f"\nFull mini reproduction finished in "
        f"{time.perf_counter() - started:.1f}s."
    )


if __name__ == "__main__":
    main()
