"""Quickstart: select indexes for a synthetic workload in ~20 lines.

Generates the paper's reproducible workload (Appendix C) at a small
scale, runs the recursive selection algorithm (Algorithm 1 / "Extend"),
and prints the chosen configuration together with the construction trace.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AnalyticalCostSource,
    CostModel,
    GeneratorConfig,
    WhatIfOptimizer,
    generate_workload,
    relative_budget,
)
from repro.core import ExtendAlgorithm, format_steps


def main() -> None:
    # A workload of 3 tables x 10 attributes with 15 queries per table.
    workload = generate_workload(
        GeneratorConfig(
            tables=3, attributes_per_table=10, queries_per_table=15,
            seed=42,
        )
    )
    print(
        f"Workload: {workload.query_count} queries over "
        f"{workload.schema.attribute_count} attributes in "
        f"{workload.schema.table_count} tables"
    )

    # Costs come from the paper's reproducible cost model, served through
    # the caching what-if facade.
    optimizer = WhatIfOptimizer(
        AnalyticalCostSource(CostModel(workload.schema))
    )

    # Budget: 30 % of the memory needed to index every attribute once.
    budget = relative_budget(workload.schema, 0.3)
    result = ExtendAlgorithm(optimizer).select(workload, budget)

    no_index_cost = optimizer.workload_cost(workload, ())
    print(f"\nWorkload cost without indexes: {no_index_cost:.4g}")
    print(f"Workload cost with selection:  {result.total_cost:.4g}")
    print(f"Improvement factor:            "
          f"{no_index_cost / result.total_cost:.1f}x")
    print(f"Memory used: {result.memory:,} / {budget:,.0f} bytes")
    print(f"What-if optimizer calls: {result.whatif_calls}")
    print(f"Solve time: {result.runtime_seconds * 1000:.1f} ms")

    print(f"\nSelected {len(result.configuration)} indexes:")
    for index in sorted(
        result.configuration,
        key=lambda index: (index.table_name, index.attributes),
    ):
        print(f"  {index.label(workload.schema)}")

    print("\nConstruction trace (Algorithm 1):")
    print(format_steps(result.steps, workload.schema))


if __name__ == "__main__":
    main()
