"""Adapting index selections to changing workloads (Section VII).

Simulates a drifting workload (frequency random walk + template churn)
and compares three adaptation strategies over the epochs:

* **static** — tune once, never touch again,
* **reselect** — retune and switch every epoch, paying reconfiguration
  each time,
* **adaptive** — retune every epoch but switch only when the projected
  saving amortizes the reconfiguration cost.

Run with::

    python examples/dynamic_workload.py
"""

from __future__ import annotations

from repro import (
    AnalyticalCostSource,
    CostModel,
    GeneratorConfig,
    ReconfigurationModel,
    WhatIfOptimizer,
    generate_workload,
    relative_budget,
)
from repro.core import AdaptationStrategy, AdaptiveAdvisor
from repro.workload import DriftConfig, drifting_workloads


def main() -> None:
    base = generate_workload(
        GeneratorConfig(
            tables=3, attributes_per_table=8, queries_per_table=12,
            seed=17,
        )
    )
    snapshots = drifting_workloads(
        base,
        DriftConfig(
            epochs=8,
            frequency_volatility=0.5,
            churn_rate=0.25,
            seed=99,
        ),
    )
    budget = relative_budget(base.schema, 0.3)
    reconfiguration = ReconfigurationModel(creation_weight=0.01)

    print(
        f"Base workload: {base.query_count} templates; "
        f"{len(snapshots)} epochs of drift "
        "(volatility 0.5, churn 25%)\n"
    )
    header = f"{'epoch':>5}  " + "".join(
        f"{strategy.value:>14}" for strategy in AdaptationStrategy
    )
    print(header)

    totals = {}
    per_epoch = {}
    for strategy in AdaptationStrategy:
        optimizer = WhatIfOptimizer(
            AnalyticalCostSource(CostModel(base.schema))
        )
        advisor = AdaptiveAdvisor(
            optimizer, budget, reconfiguration, strategy=strategy
        )
        reports = advisor.run(snapshots)
        per_epoch[strategy] = reports
        totals[strategy] = sum(report.total_cost for report in reports)

    for epoch in range(len(snapshots)):
        cells = []
        for strategy in AdaptationStrategy:
            report = per_epoch[strategy][epoch]
            marker = "*" if report.switched else " "
            cells.append(f"{report.total_cost:>13.3g}{marker}")
        print(f"{epoch:>5}  " + "".join(cells))

    print("\n(* = configuration switched that epoch)\n")
    for strategy in AdaptationStrategy:
        switches = sum(
            report.switched for report in per_epoch[strategy]
        )
        print(
            f"{strategy.value:<9} total F+R = {totals[strategy]:.4g} "
            f"({switches} switches)"
        )
    best = min(totals, key=totals.get)
    print(f"\nBest strategy on this drift: {best.value}")


if __name__ == "__main__":
    main()
