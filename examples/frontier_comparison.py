"""Frontier comparison: H6 vs CoPhy with candidate heuristics (Figs 2/3).

Sweeps memory budgets and plots (as a text chart) the performance/memory
frontier of the recursive strategy against CoPhy restricted to candidate
sets from the H1-M/H2-M/H3-M heuristics — the paper's central argument
that candidate-set choice caps solver-based quality while H6 needs no
candidate set at all.

Run with::

    python examples/frontier_comparison.py
"""

from __future__ import annotations

from repro import (
    GeneratorConfig,
    WorkloadStatistics,
    generate_workload,
)
from repro.experiments.common import (
    analytic_optimizer,
    budget_grid,
    sweep_cophy,
    sweep_extend,
)
from repro.indexes.candidates import (
    CANDIDATE_HEURISTICS,
    syntactically_relevant_candidates,
)

_BAR_WIDTH = 46


def _text_chart(series_list) -> str:
    """Render all series as log-scaled horizontal bars per budget."""
    import math

    finite = [
        cost
        for series in series_list
        for _, cost in series.points
        if cost != float("inf") and cost > 0
    ]
    low, high = math.log10(min(finite)), math.log10(max(finite))
    span = max(high - low, 1e-9)
    lines = []
    for series in series_list:
        lines.append(f"{series.name}")
        for w, cost in series.points:
            if cost == float("inf"):
                lines.append(f"  w={w:4.2f} DNF")
                continue
            filled = int(
                round((math.log10(cost) - low) / span * _BAR_WIDTH)
            )
            lines.append(
                f"  w={w:4.2f} {'#' * filled:<{_BAR_WIDTH}} {cost:.3g}"
            )
    return "\n".join(lines)


def main() -> None:
    workload = generate_workload(
        GeneratorConfig(
            tables=4, attributes_per_table=10, queries_per_table=12,
            seed=5,
        )
    )
    statistics = WorkloadStatistics(workload)
    optimizer = analytic_optimizer(workload)
    budgets = budget_grid(0.05, 0.4, 5)

    print(
        f"Workload: {workload.query_count} queries, "
        f"{workload.schema.attribute_count} attributes\n"
    )

    series = [sweep_extend(workload, optimizer, budgets)]
    candidate_budget = 24
    for name, heuristic in CANDIDATE_HEURISTICS.items():
        candidates = heuristic(statistics, candidate_budget, 4)
        series.append(
            sweep_cophy(
                workload,
                optimizer,
                budgets,
                candidates,
                name=f"CoPhy/{name}({len(candidates)})",
                time_limit=60.0,
            )
        )
    exhaustive = syntactically_relevant_candidates(workload)
    series.append(
        sweep_cophy(
            workload,
            optimizer,
            budgets,
            exhaustive,
            name=f"CoPhy/I_max({len(exhaustive)}) [optimal]",
            time_limit=60.0,
        )
    )

    print(_text_chart(series))
    print(
        "\nShorter bars = lower workload cost (log scale). H6 should "
        "track the optimal CoPhy/I_max frontier while the restricted "
        "candidate sets fall behind."
    )


if __name__ == "__main__":
    main()
