"""Enterprise index advisor: the Section IV-A scenario at adjustable scale.

Generates the synthetic ERP workload (the stand-in for the paper's
Fortune-500 trace: hundreds of tables, thousands of attributes, heavily
skewed template frequencies) and compares the recursive strategy (H6)
against CoPhy with reduced candidate sets and the rule-based heuristics —
the Fig. 4 setting.

Run with::

    python examples/enterprise_advisor.py [--scale 0.25]
"""

from __future__ import annotations

import argparse

from repro import (
    AnalyticalCostSource,
    CostModel,
    EnterpriseConfig,
    WhatIfOptimizer,
    WorkloadStatistics,
    candidates_h1m,
    generate_enterprise_workload,
    relative_budget,
)
from repro.cophy import CoPhyAlgorithm
from repro.core import ExtendAlgorithm
from repro.heuristics import FrequencyHeuristic


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="workload scale in (0, 1]; 1.0 = 500 tables / 4204 attrs "
        "/ 2271 templates (default 0.25)",
    )
    parser.add_argument("--budget", type=float, default=0.05)
    arguments = parser.parse_args()

    workload = generate_enterprise_workload(
        EnterpriseConfig(scale=arguments.scale)
    )
    statistics = WorkloadStatistics(workload)
    print(
        f"ERP workload: {workload.schema.table_count} tables, "
        f"{workload.schema.attribute_count} attributes, "
        f"{workload.query_count} templates, "
        f"{workload.total_frequency():,.0f} executions"
    )

    optimizer = WhatIfOptimizer(
        AnalyticalCostSource(CostModel(workload.schema))
    )
    budget = relative_budget(workload.schema, arguments.budget)
    print(f"Budget: w={arguments.budget} -> {budget:,.0f} bytes\n")

    results = []

    h6 = ExtendAlgorithm(optimizer).select(workload, budget)
    results.append(h6)
    print(h6.summary())

    for size in (100, 1_000):
        candidates = candidates_h1m(statistics, size)
        cophy = CoPhyAlgorithm(optimizer, time_limit=120.0)
        result = cophy.select(workload, budget, candidates)
        results.append(result)
        print(
            f"CoPhy/H1-M({size}): cost={result.total_cost:.6g} "
            f"solve={result.runtime_seconds:.2f}s"
        )

    h1 = FrequencyHeuristic(optimizer).select(
        workload, budget, candidates_h1m(statistics, 1_000)
    )
    results.append(h1)
    print(h1.summary())

    best = min(results, key=lambda result: result.total_cost)
    print(
        f"\nBest: {best.algorithm} — H6 is "
        f"{h6.total_cost / best.total_cost:.3f}x the best cost "
        "(1.0 means H6 wins)"
    )


if __name__ == "__main__":
    main()
