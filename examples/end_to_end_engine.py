"""End-to-end selection on measured execution costs (Section IV-B).

Materializes a workload's tables in the in-memory column-store engine,
measures every ``f_j(k)`` by actually executing query ``j`` with index
``k`` built, feeds those measured costs to the selection algorithms, and
finally judges each resulting configuration by executing the entire
workload under it — no analytic cost model anywhere in the loop.

Run with::

    python examples/end_to_end_engine.py
"""

from __future__ import annotations

from repro import (
    GeneratorConfig,
    WhatIfOptimizer,
    generate_workload,
    relative_budget,
    syntactically_relevant_candidates,
)
from repro.cophy import CoPhyAlgorithm
from repro.core import ExtendAlgorithm
from repro.engine import (
    ColumnStoreDatabase,
    MeasuredCostSource,
    evaluate_configuration,
)
from repro.heuristics import BenefitPerSizeHeuristic, FrequencyHeuristic


def main() -> None:
    workload = generate_workload(
        GeneratorConfig(
            tables=3, attributes_per_table=8, queries_per_table=10,
            seed=7,
        )
    )
    database = ColumnStoreDatabase(
        workload.schema, seed=11, row_cap=50_000
    )
    source = MeasuredCostSource(database)
    optimizer = WhatIfOptimizer(source)
    candidates = syntactically_relevant_candidates(workload)
    budget = relative_budget(workload.schema, 0.4)

    print(
        f"Workload: {workload.query_count} queries; "
        f"{len(candidates)} exhaustive candidates; measured costs from "
        f"actual execution over up to {database.row_cap:,} rows/table\n"
    )

    from repro import IndexConfiguration

    baseline = evaluate_configuration(
        source, workload, IndexConfiguration()
    )
    print(f"No indexes: measured workload cost {baseline.total_cost:.4g}\n")

    algorithms = [
        ("H6 (Extend)", lambda: ExtendAlgorithm(optimizer).select(
            workload, budget
        )),
        ("H1 (frequency)", lambda: FrequencyHeuristic(optimizer).select(
            workload, budget, candidates
        )),
        ("H5 (benefit/size)", lambda: BenefitPerSizeHeuristic(
            optimizer
        ).select(workload, budget, candidates)),
        ("CoPhy (all candidates)", lambda: CoPhyAlgorithm(
            optimizer, time_limit=120.0
        ).select(workload, budget, candidates)),
    ]
    rows = []
    for name, runner in algorithms:
        result = runner()
        execution = evaluate_configuration(
            source, workload, result.configuration
        )
        rows.append((name, execution.total_cost, result))
        print(
            f"{name:<24} measured cost {execution.total_cost:>12.4g}  "
            f"({baseline.total_cost / execution.total_cost:5.1f}x better"
            f", {len(result.configuration)} indexes, "
            f"solve {result.runtime_seconds:.2f}s)"
        )

    best = min(rows, key=lambda row: row[1])
    print(f"\nBest configuration: {best[0]}")
    h6_cost = rows[0][1]
    print(
        f"H6 is within {(h6_cost / best[1] - 1) * 100:.1f}% of the best "
        "measured configuration."
    )


if __name__ == "__main__":
    main()
