"""SQL-in, report-out: the advisor pipeline a downstream user runs.

Defines a schema, provides the workload as weighted SQL templates
(including an update stream, so index maintenance matters), runs the
recursive selection, and prints the full advisor report with per-index
benefit attribution and remaining hot spots.

Run with::

    python examples/sql_advisor.py
"""

from __future__ import annotations

from repro import (
    AnalyticalCostSource,
    CostModel,
    Schema,
    WhatIfOptimizer,
    build_report,
    relative_budget,
    workload_from_sql,
)
from repro.core import ExtendAlgorithm

SCHEMA = Schema.build(
    {
        "CUSTOMERS": (
            2_000_000,
            [
                ("ID", 2_000_000, 8),
                ("EMAIL", 1_900_000, 32),
                ("COUNTRY", 120, 2),
                ("SEGMENT", 8, 1),
                ("CREATED_AT", 1_500_000, 8),
            ],
        ),
        "ORDERS": (
            30_000_000,
            [
                ("ID", 30_000_000, 8),
                ("CUSTOMER_ID", 2_000_000, 8),
                ("STATUS", 6, 1),
                ("WAREHOUSE", 40, 2),
                ("PLACED_AT", 20_000_000, 8),
            ],
        ),
    }
)

TEMPLATES = [
    # The application's hot paths, weighted by executions per hour.
    ("SELECT * FROM CUSTOMERS WHERE ID = ?", 120_000.0),
    ("SELECT * FROM CUSTOMERS WHERE EMAIL = ?", 45_000.0),
    (
        "SELECT ID FROM CUSTOMERS WHERE COUNTRY = ? AND SEGMENT = ?",
        800.0,
    ),
    ("SELECT * FROM ORDERS WHERE ID = ?", 200_000.0),
    ("SELECT * FROM ORDERS WHERE CUSTOMER_ID = ?", 90_000.0),
    (
        "SELECT ID FROM ORDERS WHERE CUSTOMER_ID = ? AND STATUS = ?",
        30_000.0,
    ),
    ("SELECT ID FROM ORDERS WHERE WAREHOUSE = ? AND STATUS = ?", 2_500.0),
    # Write streams: maintenance makes over-indexing costly.
    ("UPDATE ORDERS SET STATUS = ? WHERE ID = ?", 150_000.0),
    (
        "INSERT INTO ORDERS (ID, CUSTOMER_ID, STATUS, WAREHOUSE, "
        "PLACED_AT) VALUES (?, ?, ?, ?, ?)",
        60_000.0,
    ),
]


def main() -> None:
    workload = workload_from_sql(SCHEMA, TEMPLATES)
    optimizer = WhatIfOptimizer(AnalyticalCostSource(CostModel(SCHEMA)))
    budget = relative_budget(SCHEMA, 0.35)

    result = ExtendAlgorithm(optimizer).select(workload, budget)
    report = build_report(workload, optimizer, result)
    print(report.render(workload))


if __name__ == "__main__":
    main()
