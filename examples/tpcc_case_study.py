"""TPC-C case study: the worked example of the paper's Fig. 1.

The paper illustrates Algorithm 1 on the aggregated conjunctive
selections of all TPC-C transactions: single-attribute indexes appear
first, then the algorithm *morphs* them — appending attributes to the end
of existing indexes — into the multi-attribute indexes that serve the
point-access templates (e.g. the three-attribute CUSTOMER index).

This script reproduces that narrative: it prints the query templates,
runs the construction, and shows which queries each final index covers.

Run with::

    python examples/tpcc_case_study.py
"""

from __future__ import annotations

from repro import (
    AnalyticalCostSource,
    CostModel,
    WhatIfOptimizer,
    relative_budget,
    tpcc_workload,
)
from repro.core import ExtendAlgorithm, StepKind, format_steps


def main() -> None:
    workload = tpcc_workload(warehouses=10)
    schema = workload.schema

    print("TPC-C query templates (aggregated conjunctive selections):")
    for query in workload:
        names = ", ".join(
            sorted(
                schema.attribute(attribute_id).name
                for attribute_id in query.attributes
            )
        )
        print(
            f"  q{query.query_id + 1:<3} {query.table_name}({names})  "
            f"b={query.frequency:,.0f}"
        )

    optimizer = WhatIfOptimizer(
        AnalyticalCostSource(CostModel(schema))
    )
    budget = relative_budget(schema, 0.6)
    result = ExtendAlgorithm(optimizer).select(workload, budget)

    print("\nConstruction steps (cf. Fig. 1):")
    print(format_steps(result.steps, schema))

    morphs = sum(
        1 for step in result.steps if step.kind is StepKind.EXTEND
    )
    print(
        f"\n{len(result.steps)} steps total, {morphs} of them morphing "
        "steps (appending an attribute to an existing index)."
    )

    print("\nFinal configuration and the queries each index covers:")
    for index in sorted(
        result.configuration,
        key=lambda index: (index.table_name, index.attributes),
    ):
        covered = [
            f"q{query.query_id + 1}"
            for query in workload
            if index.usable_prefix_length(query) == index.width
        ]
        print(
            f"  {index.label(schema):<42} fully covers: "
            f"{', '.join(covered) if covered else '-'}"
        )

    baseline = optimizer.workload_cost(workload, ())
    print(
        f"\nWorkload cost: {baseline:.4g} -> {result.total_cost:.4g} "
        f"({baseline / result.total_cost:.0f}x better) using "
        f"{result.memory:,} bytes"
    )


if __name__ == "__main__":
    main()
