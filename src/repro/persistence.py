"""JSON persistence for schemas, workloads, and index selections.

Experiments and advisors need to hand artifacts across process
boundaries: a workload captured on one machine, a recommended
configuration applied on another, a selection result archived next to a
benchmark run.  This module serializes the core value objects to plain
JSON (no pickle — artifacts stay portable, diffable, and safe to load).

Round-trip guarantees are exact: ``load_x(dump_x(value)) == value`` for
every supported type, including the construction-step trace and status
of degraded selection results.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.steps import (
    STATUS_COMPLETED,
    ConstructionStep,
    SelectionResult,
    StepKind,
)
from repro.exceptions import ReproError
from repro.indexes.configuration import IndexConfiguration
from repro.indexes.index import Index
from repro.workload.query import Query, QueryKind, Workload
from repro.workload.schema import Schema

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "workload_to_dict",
    "workload_from_dict",
    "configuration_to_dict",
    "configuration_from_dict",
    "result_to_dict",
    "result_from_dict",
    "step_to_dict",
    "step_from_dict",
    "save_json",
    "load_json",
]

_FORMAT_VERSION = 1


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    """Serialize a schema (table order and attribute ids preserved)."""
    return {
        "version": _FORMAT_VERSION,
        "tables": [
            {
                "name": table.name,
                "row_count": table.row_count,
                "columns": [
                    {
                        "name": attribute.name,
                        "distinct_values": attribute.distinct_values,
                        "value_size": attribute.value_size,
                    }
                    for attribute in table.attributes
                ],
            }
            for table in schema.tables
        ],
    }


def schema_from_dict(data: dict[str, Any]) -> Schema:
    """Deserialize a schema."""
    _check_version(data)
    return Schema.build(
        {
            table["name"]: (
                table["row_count"],
                [
                    (
                        column["name"],
                        column["distinct_values"],
                        column["value_size"],
                    )
                    for column in table["columns"]
                ],
            )
            for table in data["tables"]
        }
    )


def workload_to_dict(workload: Workload) -> dict[str, Any]:
    """Serialize a workload together with its schema."""
    return {
        "version": _FORMAT_VERSION,
        "schema": schema_to_dict(workload.schema),
        "queries": [
            {
                "query_id": query.query_id,
                "table": query.table_name,
                "attributes": sorted(query.attributes),
                "frequency": query.frequency,
                "kind": query.kind.value,
            }
            for query in workload
        ],
    }


def workload_from_dict(data: dict[str, Any]) -> Workload:
    """Deserialize a workload."""
    _check_version(data)
    schema = schema_from_dict(data["schema"])
    queries = [
        Query(
            query_id=entry["query_id"],
            table_name=entry["table"],
            attributes=frozenset(entry["attributes"]),
            frequency=entry["frequency"],
            kind=QueryKind(entry["kind"]),
        )
        for entry in data["queries"]
    ]
    return Workload(schema, queries)


def configuration_to_dict(
    configuration: IndexConfiguration,
) -> dict[str, Any]:
    """Serialize an index configuration (deterministic order)."""
    return {
        "version": _FORMAT_VERSION,
        "indexes": [
            {"table": index.table_name, "attributes": list(index.attributes)}
            for index in sorted(
                configuration,
                key=lambda index: (index.table_name, index.attributes),
            )
        ],
    }


def configuration_from_dict(data: dict[str, Any]) -> IndexConfiguration:
    """Deserialize an index configuration."""
    _check_version(data)
    return IndexConfiguration(
        Index(entry["table"], tuple(entry["attributes"]))
        for entry in data["indexes"]
    )


def _index_to_dict(index: Index | None) -> dict[str, Any] | None:
    if index is None:
        return None
    return {
        "table": index.table_name,
        "attributes": list(index.attributes),
    }


def _index_from_dict(data: dict[str, Any] | None) -> Index | None:
    if data is None:
        return None
    return Index(data["table"], tuple(data["attributes"]))


def step_to_dict(step: ConstructionStep) -> dict[str, Any]:
    """Serialize one construction step."""
    return {
        "step_number": step.step_number,
        "kind": step.kind.value,
        "index_before": _index_to_dict(step.index_before),
        "index_after": _index_to_dict(step.index_after),
        "cost_before": step.cost_before,
        "cost_after": step.cost_after,
        "memory_before": step.memory_before,
        "memory_after": step.memory_after,
    }


def step_from_dict(data: dict[str, Any]) -> ConstructionStep:
    """Deserialize one construction step."""
    return ConstructionStep(
        step_number=data["step_number"],
        kind=StepKind(data["kind"]),
        index_before=_index_from_dict(data["index_before"]),
        index_after=_index_from_dict(data["index_after"]),
        cost_before=data["cost_before"],
        cost_after=data["cost_after"],
        memory_before=data["memory_before"],
        memory_after=data["memory_after"],
    )


def result_to_dict(result: SelectionResult) -> dict[str, Any]:
    """Serialize a selection result, step trace included.

    The trace matters most for *degraded* results: which steps were
    taken before the deadline (or a drain) cut the run short is the
    part a post-mortem needs, so it must survive the round-trip.
    """
    return {
        "version": _FORMAT_VERSION,
        "algorithm": result.algorithm,
        "configuration": configuration_to_dict(result.configuration),
        "total_cost": result.total_cost,
        "memory": result.memory,
        "budget": result.budget,
        "runtime_seconds": result.runtime_seconds,
        "whatif_calls": result.whatif_calls,
        "reconfiguration_cost": result.reconfiguration_cost,
        "status": result.status,
        "steps": [step_to_dict(step) for step in result.steps],
    }


def result_from_dict(data: dict[str, Any]) -> SelectionResult:
    """Deserialize a selection result."""
    _check_version(data)
    return SelectionResult(
        algorithm=data["algorithm"],
        configuration=configuration_from_dict(data["configuration"]),
        total_cost=data["total_cost"],
        memory=data["memory"],
        budget=data["budget"],
        runtime_seconds=data["runtime_seconds"],
        whatif_calls=data["whatif_calls"],
        reconfiguration_cost=data["reconfiguration_cost"],
        # Artifacts written before the resilience layer carry no status;
        # those runs by construction finished normally.  Ones written
        # before step serialization simply carry an empty trace.
        status=data.get("status", STATUS_COMPLETED),
        steps=tuple(
            step_from_dict(entry) for entry in data.get("steps", ())
        ),
    )


def save_json(path: str, data: dict[str, Any]) -> None:
    """Write a serialized artifact to disk (pretty-printed)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> dict[str, Any]:
    """Read a serialized artifact from disk."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _check_version(data: dict[str, Any]) -> None:
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported artifact format version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
