"""Reproduction of "Efficient Scalable Multi-Attribute Index Selection
Using Recursive Strategies" (Schlosser, Kossmann, Boissier — ICDE 2019).

The package implements the paper's recursive constructive index-selection
algorithm (Algorithm 1, "H6", known as *Extend*), a re-implementation of
CoPhy's integer-LP approach, the rule-based baselines H1–H5, the
reproducible cost model and workload generator of the paper's appendices,
and an in-memory column-store engine for end-to-end (measured-cost)
evaluation.

Quickstart
----------
>>> from repro import (
...     GeneratorConfig, generate_workload, CostModel,
...     AnalyticalCostSource, WhatIfOptimizer, ExtendAlgorithm,
...     relative_budget,
... )
>>> workload = generate_workload(GeneratorConfig(tables=2, seed=7))
>>> optimizer = WhatIfOptimizer(
...     AnalyticalCostSource(CostModel(workload.schema)))
>>> result = ExtendAlgorithm(optimizer).select(
...     workload, budget=relative_budget(workload.schema, 0.2))
>>> len(result.configuration) > 0
True
"""

from repro.cophy import (
    CoPhyAlgorithm,
    CoPhyResult,
    LPSize,
    exhaustive_best_selection,
    lp_size,
)
from repro.core import (
    ConstructionStep,
    ExtendAlgorithm,
    ExtendResult,
    Frontier,
    FrontierPoint,
    NO_RECONFIGURATION,
    ReconfigurationModel,
    SelectionResult,
    StepKind,
    format_steps,
    frontier_from_steps,
    swap_local_search,
)
from repro.cost import (
    AnalyticalCostSource,
    CostModel,
    CostSource,
    InteractionReport,
    pairwise_interaction,
    WhatIfOptimizer,
    WhatIfStatistics,
)
from repro.engine import (
    ColumnStoreDatabase,
    MeasuredCostSource,
    QueryExecutor,
    evaluate_configuration,
)
from repro.heuristics import (
    BenefitPerSizeHeuristic,
    FrequencyHeuristic,
    PerformanceHeuristic,
    RankingHeuristic,
    SelectivityFrequencyHeuristic,
    SelectivityHeuristic,
    skyline_filter,
)
from repro.exceptions import (
    BudgetError,
    ConfigurationError,
    CostModelError,
    EngineError,
    ExperimentError,
    IndexDefinitionError,
    ReproError,
    SchemaError,
    SolverError,
    SolverTimeoutError,
    TelemetryError,
    WorkloadError,
)
from repro.indexes import (
    CANDIDATE_HEURISTICS,
    Index,
    IndexConfiguration,
    all_permutation_candidates,
    candidates_h1m,
    candidates_h2m,
    candidates_h3m,
    canonical_index,
    configuration_memory,
    index_memory,
    relative_budget,
    single_attribute_candidates,
    single_attribute_total_memory,
    syntactically_relevant_candidates,
)
from repro.advisor import IndexAdvisor, Recommendation
from repro.report import AdvisorReport, IndexReport, build_report
from repro.telemetry import (
    InMemorySink,
    JsonLinesSink,
    MetricsRegistry,
    NO_OP_TRACER,
    NULL_TELEMETRY,
    StepEvent,
    Telemetry,
    TelemetrySnapshot,
    Tracer,
)
from repro.workload import (
    Attribute,
    DriftConfig,
    EnterpriseConfig,
    GeneratorConfig,
    Query,
    QueryKind,
    Schema,
    Table,
    Workload,
    WorkloadStatistics,
    drifting_workloads,
    frequency_share,
    generate_enterprise_workload,
    generate_workload,
    merge_duplicate_templates,
    parse_template,
    top_k_expensive,
    tpcc_schema,
    tpcc_workload,
    workload_from_sql,
)

__version__ = "1.0.0"

__all__ = [
    "AdvisorReport",
    "AnalyticalCostSource",
    "Attribute",
    "DriftConfig",
    "IndexAdvisor",
    "IndexReport",
    "Recommendation",
    "QueryKind",
    "build_report",
    "drifting_workloads",
    "frequency_share",
    "merge_duplicate_templates",
    "parse_template",
    "top_k_expensive",
    "workload_from_sql",
    "BenefitPerSizeHeuristic",
    "BudgetError",
    "CANDIDATE_HEURISTICS",
    "CoPhyAlgorithm",
    "CoPhyResult",
    "ColumnStoreDatabase",
    "ConfigurationError",
    "ConstructionStep",
    "CostModel",
    "CostModelError",
    "CostSource",
    "EngineError",
    "EnterpriseConfig",
    "ExperimentError",
    "ExtendAlgorithm",
    "ExtendResult",
    "FrequencyHeuristic",
    "Frontier",
    "FrontierPoint",
    "GeneratorConfig",
    "Index",
    "IndexConfiguration",
    "IndexDefinitionError",
    "InMemorySink",
    "InteractionReport",
    "JsonLinesSink",
    "LPSize",
    "MeasuredCostSource",
    "MetricsRegistry",
    "NO_OP_TRACER",
    "NO_RECONFIGURATION",
    "NULL_TELEMETRY",
    "PerformanceHeuristic",
    "Query",
    "QueryExecutor",
    "RankingHeuristic",
    "ReconfigurationModel",
    "ReproError",
    "Schema",
    "SchemaError",
    "SelectionResult",
    "SelectivityFrequencyHeuristic",
    "SelectivityHeuristic",
    "SolverError",
    "SolverTimeoutError",
    "StepEvent",
    "StepKind",
    "Table",
    "Telemetry",
    "TelemetryError",
    "TelemetrySnapshot",
    "Tracer",
    "WhatIfOptimizer",
    "WhatIfStatistics",
    "Workload",
    "WorkloadError",
    "WorkloadStatistics",
    "all_permutation_candidates",
    "evaluate_configuration",
    "exhaustive_best_selection",
    "format_steps",
    "frontier_from_steps",
    "lp_size",
    "skyline_filter",
    "swap_local_search",
    "candidates_h1m",
    "candidates_h2m",
    "candidates_h3m",
    "canonical_index",
    "configuration_memory",
    "generate_enterprise_workload",
    "generate_workload",
    "index_memory",
    "pairwise_interaction",
    "relative_budget",
    "single_attribute_candidates",
    "single_attribute_total_memory",
    "syntactically_relevant_candidates",
    "tpcc_schema",
    "tpcc_workload",
]
