"""High-level index advisor facade.

The one-stop API for downstream users: point it at a schema, hand it a
workload (as :class:`~repro.workload.query.Workload` objects or SQL
templates), pick a budget, and get a recommendation with a full report.

>>> advisor = IndexAdvisor(schema)
>>> recommendation = advisor.recommend(
...     ["SELECT * FROM ORDERS WHERE ID = ?"], budget_share=0.3)
>>> print(recommendation.report.render(recommendation.workload))

Under the hood this wires together the pieces the experiments use
individually: the Appendix B cost model behind the caching what-if
facade, Algorithm 1 (optionally with the swap refinement), and the
report builder.  Alternative algorithms (CoPhy, H1–H5) are available via
``algorithm=``; budgets can be given as a share of the all-singles
footprint (Eq. 10) or as absolute bytes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cophy.solver import CoPhyAlgorithm
from repro.core.evaluation import EvaluationConfig, WarmBenefitStore
from repro.core.extend import ExtendAlgorithm
from repro.core.localsearch import swap_local_search
from repro.core.frontier import Frontier
from repro.core.steps import STATUS_DEGRADED, SelectionResult
from repro.core.sweep import (
    SweepPoint,
    SweepResult,
    normalize_budget_shares,
    sweep_select,
)
from repro.cost.kernel import VectorizedCostSource
from repro.cost.model import CostModel
from repro.cost.shard import ShardedCostSource
from repro.cost.whatif import (
    AnalyticalCostSource,
    CostSource,
    WhatIfOptimizer,
)
from repro.exceptions import (
    BudgetError,
    ExperimentError,
    SolverError,
)
from repro.heuristics.performance import (
    BenefitPerSizeHeuristic,
    PerformanceHeuristic,
)
from repro.heuristics.rules import (
    FrequencyHeuristic,
    SelectivityFrequencyHeuristic,
    SelectivityHeuristic,
)
from repro.indexes.candidates import syntactically_relevant_candidates
from repro.indexes.memory import relative_budget
from repro.report import AdvisorReport, build_report
from repro.resilience import (
    Deadline,
    ResiliencePolicy,
    ResilientCostSource,
)
from repro.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    TelemetrySnapshot,
)
from repro.workload.compression import pricing_prepass
from repro.workload.query import Query, Workload
from repro.workload.schema import Schema
from repro.workload.sql import workload_from_sql

__all__ = [
    "ALGORITHMS",
    "COST_KERNELS",
    "IndexAdvisor",
    "KernelStacks",
    "Recommendation",
    "coerce_budget",
    "run_selection",
]

ALGORITHMS = (
    "extend",
    "extend+swap",
    "cophy",
    "h1",
    "h2",
    "h3",
    "h4",
    "h4+skyline",
    "h5",
)

COST_KERNELS = ("scalar", "vectorized", "sharded")

# Backwards-compatible aliases (pre-service private names).
_ALGORITHMS = ALGORITHMS
_COST_KERNELS = COST_KERNELS


def coerce_budget(
    schema: Schema,
    budget_share: float | None,
    budget_bytes: float | None,
) -> float:
    """Resolve the exactly-one-of budget spec into absolute bytes."""
    if (budget_share is None) == (budget_bytes is None):
        raise BudgetError(
            "specify exactly one of budget_share / budget_bytes"
        )
    if budget_bytes is not None:
        if budget_bytes < 0:
            raise BudgetError(
                f"budget_bytes must be >= 0, got {budget_bytes}"
            )
        return float(budget_bytes)
    return relative_budget(schema, budget_share)


class KernelStacks:
    """Per-cost-kernel (resilient source, what-if facade) stacks.

    One lazily built stack per kernel flavour over a fixed schema:
    per-kernel caches must never mix (a cached vectorized cost
    answering a scalar-kernel run would blur the 1e-9 equivalence
    contract into the differential tests).  Shared by
    :class:`IndexAdvisor` (one caller, many ``recommend`` calls) and
    ``repro.service.AdvisorService`` (many concurrent requests, many
    registered workloads on one schema).

    Parameters
    ----------
    schema:
        The schema all stacks price against.
    cost_source:
        The primary what-if backend; ``None`` means the per-kernel
        analytic source itself (infallible, no fallbacks needed).
    policy:
        Default retry/breaker policy for the resilient wrappers.
    shards:
        Worker-process count for the ``"sharded"`` kernel flavour
        (``None`` = machine default); ignored by the other flavours.
    facade_source_wrapper:
        Optional hook called as ``wrapper(resilient, kernel)`` when a
        stack is first built; whatever it returns becomes the source
        the kernel's :class:`WhatIfOptimizer` prices through.  The
        service uses this to slot its cross-request
        :class:`~repro.service.coalescer.PricingCoalescer` between the
        facade and the resilient source without the advisor layer
        importing the service package.  Returning ``resilient``
        unchanged (or passing ``None``) keeps the classic stack.
    whatif_cache_entries:
        Optional LRU bound forwarded to every kernel's
        :class:`WhatIfOptimizer` (``None`` = unbounded).
    """

    def __init__(
        self,
        schema: Schema,
        *,
        cost_source: CostSource | None = None,
        policy: ResiliencePolicy | None = None,
        shards: int | None = None,
        facade_source_wrapper=None,
        whatif_cache_entries: int | None = None,
    ) -> None:
        self._schema = schema
        self._cost_source = cost_source
        self._policy = policy
        self._shards = shards
        self._facade_source_wrapper = facade_source_wrapper
        self._whatif_cache_entries = whatif_cache_entries
        self._analytic: dict[str, CostSource] = {}
        self._stacks: dict[
            str, tuple[ResilientCostSource, WhatIfOptimizer]
        ] = {}

    @property
    def policy(self) -> ResiliencePolicy | None:
        """The current default retry/breaker policy."""
        return self._policy

    def analytic(self, kernel: str) -> CostSource:
        """The (infallible) analytic source of one kernel flavour."""
        source = self._analytic.get(kernel)
        if source is None:
            if kernel == "vectorized":
                source = VectorizedCostSource(self._schema)
            elif kernel == "sharded":
                source = ShardedCostSource(
                    self._schema, shards=self._shards
                )
            else:
                source = AnalyticalCostSource(CostModel(self._schema))
            self._analytic[kernel] = source
        return source

    def stack(
        self, kernel: str
    ) -> tuple[ResilientCostSource, WhatIfOptimizer]:
        """The resilient source and caching facade of one flavour."""
        if kernel not in COST_KERNELS:
            raise ExperimentError(
                f"unknown cost kernel {kernel!r}; pick one of "
                f"{', '.join(COST_KERNELS)}"
            )
        stack = self._stacks.get(kernel)
        if stack is None:
            analytical = self.analytic(kernel)
            primary = (
                self._cost_source
                if self._cost_source is not None
                else analytical
            )
            fallbacks = () if primary is analytical else (analytical,)
            resilient = ResilientCostSource(
                primary, policy=self._policy, fallbacks=fallbacks
            )
            facade_source: CostSource = resilient
            if self._facade_source_wrapper is not None:
                facade_source = self._facade_source_wrapper(
                    resilient, kernel
                )
            stack = (
                resilient,
                WhatIfOptimizer(
                    facade_source,
                    max_entries=self._whatif_cache_entries,
                ),
            )
            self._stacks[kernel] = stack
        return stack

    def built_kernels(self) -> tuple[str, ...]:
        """Kernels whose stacks (and therefore caches) exist already."""
        return tuple(self._stacks)

    def set_policy(self, policy: ResiliencePolicy) -> None:
        """Swap the policy on current and future stacks (breaker state
        survives the swap)."""
        self._policy = policy
        for resilient, _ in self._stacks.values():
            resilient.policy = policy

    def vectorized_statistics(self):
        """``KernelStatistics`` of the compiled kernel, if built yet.

        When only the sharded flavour is built, its in-process kernel's
        statistics are reported instead (same counter shape)."""
        source = self._analytic.get("vectorized")
        if source is not None:
            return source.statistics
        sharded = self._analytic.get("sharded")
        return None if sharded is None else sharded.kernel_statistics

    def shard_source(self) -> ShardedCostSource | None:
        """The sharded backend, if that flavour was built yet."""
        source = self._analytic.get("sharded")
        return source if isinstance(source, ShardedCostSource) else None

    def shard_statistics(self):
        """``ShardStatistics`` of the sharded backend, if built yet."""
        source = self.shard_source()
        return None if source is None else source.statistics

    def reset_shard_pool(self) -> None:
        """Drop the shard worker pool (watchdog hook); it rebuilds
        lazily on the next large batch."""
        source = self.shard_source()
        if source is not None:
            source.reset_pool()

    def close(self) -> None:
        """Release process-level resources (the shard worker pool).

        The stacks stay usable — a later call lazily rebuilds the
        pool — so this is safe to call from service drain/close."""
        source = self.shard_source()
        if source is not None:
            source.close()


def run_selection(
    workload: Workload,
    budget: float,
    *,
    algorithm: str,
    optimizer: WhatIfOptimizer,
    telemetry: Telemetry = NULL_TELEMETRY,
    candidate_width: int = 4,
    deadline: Deadline | None = None,
    solver_time_limit: float = 120.0,
    evaluation: EvaluationConfig | None = None,
    warm_store: WarmBenefitStore | None = None,
) -> SelectionResult:
    """Dispatch one selection run to the named algorithm.

    The shared engine behind :meth:`IndexAdvisor.recommend` and the
    service's request execution: Extend (optionally with the swap
    refinement and a cross-run ``warm_store``), CoPhy with the
    degrade-to-Extend fallback, and the H1–H5 heuristics, all under one
    ``deadline`` against one what-if facade.
    """
    if algorithm not in ALGORITHMS:
        raise ExperimentError(
            f"unknown algorithm {algorithm!r}; pick one of "
            f"{', '.join(ALGORITHMS)}"
        )
    deadline = deadline or Deadline.none()
    evaluation = evaluation or EvaluationConfig()
    parallelism = evaluation.effective_parallelism(optimizer)
    if algorithm in ("extend", "extend+swap"):
        result = ExtendAlgorithm(
            optimizer,
            telemetry=telemetry,
            evaluation=evaluation,
            warm_store=warm_store,
        ).select(workload, budget, deadline=deadline)
        if algorithm == "extend+swap":
            candidates = syntactically_relevant_candidates(
                workload, candidate_width
            )
            result = swap_local_search(
                workload,
                optimizer,
                result,
                budget,
                candidates,
                telemetry=telemetry,
                deadline=deadline,
                parallelism=parallelism,
            )
        return result

    candidates = syntactically_relevant_candidates(
        workload, candidate_width
    )
    if algorithm == "cophy":
        try:
            return CoPhyAlgorithm(
                optimizer,
                time_limit=solver_time_limit,
                telemetry=telemetry,
            ).select(workload, budget, candidates, deadline=deadline)
        except SolverError:
            # DNF (Table I) or solver failure: degrade to Extend —
            # a recommendation under the same budget and deadline
            # beats no recommendation at all.
            if telemetry.enabled:
                telemetry.metrics.counter(
                    "advisor.solver_fallbacks"
                ).increment()
            fallback = ExtendAlgorithm(
                optimizer,
                telemetry=telemetry,
                evaluation=evaluation,
                warm_store=warm_store,
            ).select(workload, budget, deadline=deadline)
            return dataclasses.replace(
                fallback, status=STATUS_DEGRADED
            )
    heuristics = {
        "h1": FrequencyHeuristic,
        "h2": SelectivityHeuristic,
        "h3": SelectivityFrequencyHeuristic,
        "h5": BenefitPerSizeHeuristic,
    }
    if algorithm in heuristics:
        return heuristics[algorithm](
            optimizer,
            telemetry=telemetry,
            parallelism=parallelism,
        ).select(workload, budget, candidates, deadline=deadline)
    if algorithm == "h4":
        return PerformanceHeuristic(
            optimizer,
            telemetry=telemetry,
            parallelism=parallelism,
        ).select(workload, budget, candidates, deadline=deadline)
    assert algorithm == "h4+skyline"
    return PerformanceHeuristic(
        optimizer,
        use_skyline=True,
        telemetry=telemetry,
        parallelism=parallelism,
    ).select(workload, budget, candidates, deadline=deadline)


@dataclass(frozen=True)
class Recommendation:
    """A selection plus everything needed to understand it."""

    workload: Workload
    result: SelectionResult
    report: AdvisorReport
    telemetry: TelemetrySnapshot = TelemetrySnapshot()
    """Metrics, spans, and step events of this run (empty when the
    advisor ran with disabled telemetry)."""

    @property
    def indexes(self) -> list[str]:
        """Human-readable labels of the recommended indexes."""
        schema = self.workload.schema
        return [
            index.label(schema)
            for index in sorted(
                self.result.configuration,
                key=lambda index: (index.table_name, index.attributes),
            )
        ]


@dataclass(frozen=True)
class SweepRecommendation:
    """A whole cost/memory frontier answered in one advisor call."""

    workload: Workload
    sweep: SweepResult
    telemetry: TelemetrySnapshot = TelemetrySnapshot()

    @property
    def frontier(self) -> Frontier:
        """The answered points as a cost vs. budget-share frontier."""
        return self.sweep.frontier

    @property
    def points(self) -> tuple[SweepPoint, ...]:
        """Per-budget points, in the caller's share order."""
        return self.sweep.points

    @property
    def results(self) -> tuple[SelectionResult, ...]:
        """Per-budget selection results, in the caller's share order."""
        return self.sweep.results

    @property
    def partial(self) -> bool:
        """True when the sweep was truncated by its deadline."""
        return self.sweep.partial

    def indexes_at(self, budget_share: float) -> list[str] | None:
        """Human-readable index labels of one answered budget point."""
        point = self.sweep.point_for(budget_share)
        if point is None:
            return None
        schema = self.workload.schema
        return [
            index.label(schema)
            for index in sorted(
                point.result.configuration,
                key=lambda index: (index.table_name, index.attributes),
            )
        ]


class IndexAdvisor:
    """Recommends index configurations for workloads on one schema.

    The advisor owns a shared what-if facade, so repeated calls (more
    budgets, different algorithms, drifted workloads) reuse all cached
    cost estimates.

    The cost backend is always wrapped in a
    :class:`~repro.resilience.ResilientCostSource` whose fallback chain
    ends at the Appendix B analytic model: a flaky ``cost_source``
    (e.g. a remote plan-costing service or the fault-injection harness)
    is retried, breaker-protected, and ultimately degraded to
    fallback-priced answers instead of crashing the recommendation.

    Parameters
    ----------
    schema:
        The schema recommendations are made for.
    telemetry:
        Observability session shared by all runs of this advisor.
    cost_source:
        The primary what-if backend; defaults to the (infallible)
        analytic model.
    resilience:
        Default retry/breaker policy; can be overridden per call via
        ``recommend(resilience=...)``.
    cost_kernel:
        Default analytic backend flavour: ``"vectorized"`` (the
        compiled batch kernel of :mod:`repro.cost.kernel`, default),
        ``"scalar"`` (the pure-Python :class:`CostModel`), or
        ``"sharded"`` (the process-pool backend of
        :mod:`repro.cost.shard` for whole-enterprise sweeps).  All
        flavours price every pair within 1e-9 relative tolerance of
        each other (sharded is bit-identical to vectorized);
        overridable per call via ``recommend(cost_kernel=...)``.
    shards:
        Worker-process count for the sharded kernel (``None`` =
        machine default, clamped to [2, 8]); ignored otherwise.
    """

    def __init__(
        self,
        schema: Schema,
        *,
        telemetry: Telemetry = NULL_TELEMETRY,
        cost_source: CostSource | None = None,
        resilience: ResiliencePolicy | None = None,
        cost_kernel: str = "vectorized",
        shards: int | None = None,
    ) -> None:
        if cost_kernel not in _COST_KERNELS:
            raise ExperimentError(
                f"unknown cost kernel {cost_kernel!r}; pick one of "
                f"{', '.join(_COST_KERNELS)}"
            )
        self._schema = schema
        self._default_kernel = cost_kernel
        self._kernel_stacks = KernelStacks(
            schema,
            cost_source=cost_source,
            policy=resilience,
            shards=shards,
        )
        self._resilient, self._optimizer = self._kernel_stacks.stack(
            cost_kernel
        )
        self._telemetry = telemetry

    @property
    def telemetry(self) -> Telemetry:
        """The advisor-wide observability session."""
        return self._telemetry

    @property
    def schema(self) -> Schema:
        """The schema recommendations are made for."""
        return self._schema

    @property
    def optimizer(self) -> WhatIfOptimizer:
        """The shared what-if facade (exposed for call accounting)."""
        return self._optimizer

    @property
    def resilience(self) -> ResilientCostSource:
        """The resilient cost backend (breaker, retry counters)."""
        return self._resilient

    @property
    def kernel_stacks(self) -> KernelStacks:
        """The per-kernel cost stacks (exposed for accounting)."""
        return self._kernel_stacks

    def close(self) -> None:
        """Release process-level resources (the shard worker pool, if
        the sharded kernel was used).  The advisor stays usable."""
        self._kernel_stacks.close()

    # ------------------------------------------------------------------
    # Input coercion
    # ------------------------------------------------------------------

    def _coerce_workload(
        self,
        workload: Workload
        | Sequence[str]
        | Sequence[tuple[str, float]]
        | Iterable[Query],
    ) -> Workload:
        if isinstance(workload, Workload):
            return workload
        items = list(workload)
        if not items:
            raise ExperimentError("empty workload")
        if isinstance(items[0], Query):
            return Workload(self._schema, items)  # type: ignore[arg-type]
        return workload_from_sql(self._schema, items)  # type: ignore[arg-type]

    def _coerce_budget(
        self, budget_share: float | None, budget_bytes: float | None
    ) -> float:
        return coerce_budget(self._schema, budget_share, budget_bytes)

    # ------------------------------------------------------------------
    # Recommendation
    # ------------------------------------------------------------------

    def recommend(
        self,
        workload: Workload
        | Sequence[str]
        | Sequence[tuple[str, float]]
        | Iterable[Query],
        *,
        budget_share: float | None = None,
        budget_bytes: float | None = None,
        algorithm: str = "extend+swap",
        candidate_width: int = 4,
        hot_spot_count: int = 5,
        deadline_s: float | None = None,
        resilience: ResiliencePolicy | None = None,
        solver_time_limit: float = 120.0,
        parallelism: int = 1,
        naive_evaluation: bool = False,
        cost_kernel: str | None = None,
        compression_share: float | None = None,
        merge_duplicates: bool = False,
    ) -> Recommendation:
        """Compute an index recommendation.

        Parameters
        ----------
        workload:
            A :class:`Workload`, a list of SQL template strings (or
            ``(sql, frequency)`` pairs), or an iterable of
            :class:`Query` objects.
        budget_share / budget_bytes:
            Exactly one of: the Eq. 10 share ``w``, or absolute bytes.
        algorithm:
            One of ``extend``, ``extend+swap`` (default), ``cophy``,
            ``h1`` … ``h5``, ``h4+skyline``.
        candidate_width:
            Maximum index width for the candidate set of the two-step
            algorithms (ignored by extend variants).
        hot_spot_count:
            How many residual hot spots the report lists.
        deadline_s:
            Wall-clock budget for the selection.  On expiry, algorithms
            return their feasible best-so-far configuration with
            ``result.status == "degraded"`` instead of running over.
        resilience:
            Retry/breaker policy applied to the cost backend for this
            and subsequent calls (breaker state survives the swap).
        solver_time_limit:
            Time limit in seconds for the CoPhy MIP solve (default
            120.0); a tighter ``deadline_s`` caps it further.  When the
            solver fails or times out without an incumbent, the advisor
            falls back to Extend and tags the result ``degraded``.
        parallelism:
            Worker threads for candidate evaluation and pricing
            (``1`` = serial, the default).  Recommendations are
            identical at any setting; the engine silently falls back to
            serial when the cost backend is not ``parallel_safe`` (e.g.
            under seeded fault injection).
        naive_evaluation:
            Differential-testing escape hatch: restore the pre-engine
            exhaustive candidate re-scan (eager pricing, full
            re-evaluation per round).  Selects the identical steps as
            the incremental engine, just with far more what-if calls.
        cost_kernel:
            Analytic backend flavour for this call (``"scalar"``,
            ``"vectorized"``, or ``"sharded"``); ``None`` (default)
            uses the advisor's constructor default.  Each flavour keeps
            its own what-if cache and call counters.
        compression_share / merge_duplicates:
            The :func:`~repro.workload.compression.pricing_prepass`
            knobs: merge content-duplicate templates (lossless for the
            total workload cost) and/or keep only the templates
            covering ``compression_share`` of estimated cost before
            pricing.  Both default off — compression trades fidelity
            (and step-trace stability) for selection time on very
            large workloads.
        """
        if algorithm not in _ALGORITHMS:
            raise ExperimentError(
                f"unknown algorithm {algorithm!r}; pick one of "
                f"{', '.join(_ALGORITHMS)}"
            )
        kernel = (
            cost_kernel if cost_kernel is not None else self._default_kernel
        )
        if kernel not in _COST_KERNELS:
            raise ExperimentError(
                f"unknown cost kernel {kernel!r}; pick one of "
                f"{', '.join(_COST_KERNELS)}"
            )
        resolved = self._coerce_workload(workload)
        budget = self._coerce_budget(budget_share, budget_bytes)
        resilient, optimizer = self._kernel_stacks.stack(kernel)
        if resilience is not None:
            self._kernel_stacks.set_policy(resilience)
        if merge_duplicates or compression_share is not None:
            resolved, _ = pricing_prepass(
                resolved,
                optimizer,
                merge_duplicates=merge_duplicates,
                share=compression_share,
            )
        deadline = Deadline(deadline_s)
        telemetry = self._telemetry

        evaluation = EvaluationConfig(
            naive=naive_evaluation, parallelism=parallelism
        )
        stats_before = optimizer.statistics.copy()
        with telemetry.tracer.span(
            "advisor.recommend", algorithm=algorithm
        ):
            result = run_selection(
                resolved,
                budget,
                algorithm=algorithm,
                optimizer=optimizer,
                telemetry=telemetry,
                candidate_width=candidate_width,
                deadline=deadline,
                solver_time_limit=solver_time_limit,
                evaluation=evaluation,
            )
            run_statistics = optimizer.statistics.since(
                stats_before
            )
            with telemetry.tracer.span("advisor.report"):
                report = build_report(
                    resolved,
                    optimizer,
                    result,
                    hot_spot_count=hot_spot_count,
                    whatif_statistics=run_statistics,
                )
        if telemetry.enabled:
            telemetry.record_whatif(optimizer.statistics)
            telemetry.record_resilience(resilient.statistics)
            kernel_statistics = (
                self._kernel_stacks.vectorized_statistics()
            )
            if kernel_statistics is not None:
                telemetry.record_kernel(kernel_statistics)
            shard_statistics = (
                self._kernel_stacks.shard_statistics()
            )
            if shard_statistics is not None:
                telemetry.record_kernel(shard_statistics)
        return Recommendation(
            workload=resolved,
            result=result,
            report=report,
            telemetry=telemetry.snapshot(),
        )

    def recommend_sweep(
        self,
        workload: Workload
        | Sequence[str]
        | Sequence[tuple[str, float]]
        | Iterable[Query],
        *,
        budget_shares: Sequence[float],
        deadline_s: float | None = None,
        parallelism: int = 1,
        naive_evaluation: bool = False,
        cost_kernel: str | None = None,
        warm_store: WarmBenefitStore | None = None,
    ) -> SweepRecommendation:
        """Answer every budget share with one shared pricing pass.

        The multi-budget companion of :meth:`recommend`: instead of one
        budget, take the whole grid and run Extend through the shared
        sweep engine (:func:`repro.core.sweep.sweep_select`) — shares
        execute descending over one warm cost-column store, so the full
        frontier costs roughly one recommendation's worth of backend
        calls while every point stays bit-identical to a standalone
        :meth:`recommend` with ``algorithm="extend"`` at that budget
        (the swap local search of the ``extend+swap`` default is a
        separate post-pass and is not swept).

        ``budget_shares`` are strict request inputs: each must lie in
        ``(0, 1]`` and duplicates are rejected
        (:func:`~repro.core.sweep.normalize_budget_shares`).  Under an
        expired ``deadline_s`` the sweep degrades to the points already
        answered (``result.partial``) rather than failing.  Extend is
        the only swept algorithm — it is the one whose construction is
        budget-independent.
        """
        shares = normalize_budget_shares(budget_shares)
        kernel = (
            cost_kernel if cost_kernel is not None else self._default_kernel
        )
        if kernel not in _COST_KERNELS:
            raise ExperimentError(
                f"unknown cost kernel {kernel!r}; pick one of "
                f"{', '.join(_COST_KERNELS)}"
            )
        resolved = self._coerce_workload(workload)
        resilient, optimizer = self._kernel_stacks.stack(kernel)
        telemetry = self._telemetry
        evaluation = EvaluationConfig(
            naive=naive_evaluation, parallelism=parallelism
        )
        with telemetry.tracer.span(
            "advisor.recommend_sweep", points=len(shares)
        ):
            sweep = sweep_select(
                resolved,
                optimizer,
                shares,
                telemetry=telemetry,
                warm_store=warm_store,
                evaluation=evaluation,
                deadline=Deadline(deadline_s),
            )
        if telemetry.enabled:
            telemetry.record_whatif(optimizer.statistics)
            telemetry.record_resilience(resilient.statistics)
            kernel_statistics = (
                self._kernel_stacks.vectorized_statistics()
            )
            if kernel_statistics is not None:
                telemetry.record_kernel(kernel_statistics)
            shard_statistics = (
                self._kernel_stacks.shard_statistics()
            )
            if shard_statistics is not None:
                telemetry.record_kernel(shard_statistics)
        return SweepRecommendation(
            workload=resolved,
            sweep=sweep,
            telemetry=telemetry.snapshot(),
        )
