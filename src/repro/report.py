"""Human-readable advisor reports.

Turns a :class:`~repro.core.steps.SelectionResult` into the kind of
report a DBA expects from an index advisor: per-index benefit
attribution, the queries each index serves, memory breakdown, and the
residual hot spots (expensive queries no selected index covers).  The
report is plain text (markdown-flavoured) so it can be logged, diffed,
or pasted into a ticket.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.steps import SelectionResult
from repro.cost.whatif import WhatIfOptimizer, WhatIfStatistics
from repro.exceptions import ExperimentError
from repro.indexes.index import Index
from repro.indexes.memory import index_memory
from repro.workload.query import Query, Workload

__all__ = ["IndexReport", "AdvisorReport", "build_report"]


@dataclass(frozen=True)
class IndexReport:
    """Attribution for one selected index."""

    index: Index
    memory: int
    marginal_benefit: float
    serves: tuple[int, ...]
    """Query ids whose best plan uses this index."""

    maintenance_load: float
    """Frequency-weighted maintenance the index costs write queries."""


@dataclass(frozen=True)
class AdvisorReport:
    """Full report for one selection."""

    result: SelectionResult
    baseline_cost: float
    indexes: tuple[IndexReport, ...]
    residual_queries: tuple[tuple[Query, float], ...]
    """The most expensive queries under the selection (query, cost)."""

    whatif_statistics: WhatIfStatistics | None = None
    """What-if facade counters (backend calls, cache hits) accumulated
    while computing this selection; ``None`` when the caller did not
    capture them."""

    @property
    def improvement_factor(self) -> float:
        """No-index cost divided by selected cost."""
        return self.baseline_cost / max(self.result.total_cost, 1e-12)

    def render(self, workload: Workload) -> str:
        """Render the report as markdown-flavoured text."""
        schema = workload.schema
        lines = [
            f"# Index advisor report — {self.result.algorithm}",
            "",
            f"* workload: {workload.query_count} query templates, "
            f"{schema.attribute_count} attributes, "
            f"{schema.table_count} tables",
            f"* cost without indexes: {self.baseline_cost:.6g}",
            f"* cost with selection:  {self.result.total_cost:.6g} "
            f"({self.improvement_factor:.1f}x better)",
            f"* memory: {self.result.memory:,} of "
            f"{self.result.budget:,.0f} budget bytes",
            f"* what-if calls: {self.result.whatif_calls}, solve time: "
            f"{self.result.runtime_seconds:.3f}s",
        ]
        if self.whatif_statistics is not None:
            statistics = self.whatif_statistics
            lines.append(
                f"* what-if cache: {statistics.cache_hits:,} hits / "
                f"{statistics.total_requests:,} requests "
                f"({statistics.hit_rate:.1%} hit rate, "
                f"{statistics.calls:,} backend calls)"
            )
        lines += [
            "",
            "## Selected indexes (by marginal benefit)",
            "",
        ]
        for entry in self.indexes:
            serves = (
                ", ".join(f"q{query_id}" for query_id in entry.serves)
                or "-"
            )
            lines.append(
                f"* `{entry.index.label(schema)}` — marginal benefit "
                f"{entry.marginal_benefit:.4g}, "
                f"{entry.memory:,} bytes, serves: {serves}"
                + (
                    f", write maintenance {entry.maintenance_load:.4g}"
                    if entry.maintenance_load
                    else ""
                )
            )
        if self.residual_queries:
            lines += ["", "## Remaining hot spots", ""]
            for query, cost in self.residual_queries:
                names = ", ".join(
                    sorted(
                        schema.attribute(attribute_id).name
                        for attribute_id in query.attributes
                    )
                )
                lines.append(
                    f"* q{query.query_id} {query.table_name}({names}) — "
                    f"weighted cost {cost:.4g}"
                )
        return "\n".join(lines)


def build_report(
    workload: Workload,
    optimizer: WhatIfOptimizer,
    result: SelectionResult,
    *,
    hot_spot_count: int = 5,
    whatif_statistics: WhatIfStatistics | None = None,
) -> AdvisorReport:
    """Compute the full attribution report for a selection.

    ``marginal_benefit`` of an index is the workload-cost increase if
    only that index were dropped — the in-context value that accounts
    for index interaction (an index fully shadowed by another one shows
    a marginal benefit near zero even if it looked great in isolation).

    ``whatif_statistics`` should be the counter *delta* of the selection
    run (see :meth:`~repro.cost.whatif.WhatIfStatistics.since`); it is
    surfaced verbatim in the rendered report's cache line.
    """
    if hot_spot_count < 0:
        raise ExperimentError(
            f"hot_spot_count must be >= 0, got {hot_spot_count}"
        )
    configuration = result.configuration
    baseline = optimizer.workload_cost(workload, ())
    total = optimizer.workload_cost(workload, configuration)

    serves: dict[Index, list[int]] = {index: [] for index in configuration}
    per_query_cost: dict[int, float] = {}
    for query in workload:
        best_cost = optimizer.sequential_cost(query)
        best_index: Index | None = None
        for index in configuration.applicable_to(query):
            cost = optimizer.index_cost(query, index)
            if cost < best_cost:
                best_cost = cost
                best_index = index
        per_query_cost[query.query_id] = (
            query.frequency
            * optimizer.configuration_cost(query, configuration)
        )
        if best_index is not None:
            serves[best_index].append(query.query_id)

    index_reports = []
    for index in sorted(
        configuration, key=lambda index: (index.table_name, index.attributes)
    ):
        without = optimizer.workload_cost(
            workload, configuration.without_index(index)
        )
        maintenance = sum(
            query.frequency * optimizer.maintenance_cost(query, index)
            for query in workload
            if not query.is_select
        )
        index_reports.append(
            IndexReport(
                index=index,
                memory=index_memory(workload.schema, index),
                marginal_benefit=without - total,
                serves=tuple(serves[index]),
                maintenance_load=maintenance,
            )
        )
    index_reports.sort(key=lambda entry: -entry.marginal_benefit)

    residual = sorted(
        (
            (workload.query(query_id), cost)
            for query_id, cost in per_query_cost.items()
        ),
        key=lambda entry: -entry[1],
    )[:hot_spot_count]

    return AdvisorReport(
        result=result,
        baseline_cost=baseline,
        indexes=tuple(index_reports),
        residual_queries=tuple(residual),
        whatif_statistics=whatif_statistics,
    )
