"""Fig. 6 — LP size: variables and constraints vs candidate-set share.

Reproduces the paper's Fig. 6 (Appendix D): for the end-to-end instance
(``N = 100``, ``Q = 100``, exhaustive candidate set), count the variables
and constraints of CoPhy's BIP when the candidate set is restricted to
10 %, 20 %, ..., 100 % of ``I_max`` (selected by H1-M).  The reproduced
claim: both counts grow linearly in the candidate share, reaching tens of
thousands at 100 % — the structural reason solver-based selection stops
scaling.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.cophy.model import LPSize, lp_size
from repro.experiments.reporting import render_table
from repro.indexes.candidates import (
    candidates_h1m,
    syntactically_relevant_candidates,
)
from repro.workload.generator import GeneratorConfig, generate_workload
from repro.workload.stats import WorkloadStatistics

__all__ = ["Fig6Config", "run", "main"]


@dataclass(frozen=True)
class Fig6Config:
    """Parameters of the Fig. 6 reproduction."""

    queries_per_table: int = 10
    attributes_per_table: int = 10
    shares: tuple[float, ...] = (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
    )
    seed: int = 1909


def run(config: Fig6Config | None = None) -> list[tuple[float, LPSize]]:
    """Compute LP sizes per candidate share."""
    if config is None:
        config = Fig6Config()
    workload = generate_workload(
        GeneratorConfig(
            attributes_per_table=config.attributes_per_table,
            queries_per_table=config.queries_per_table,
            seed=config.seed,
        )
    )
    statistics = WorkloadStatistics(workload)
    exhaustive = syntactically_relevant_candidates(workload)
    results: list[tuple[float, LPSize]] = []
    for share in config.shares:
        if share >= 1.0:
            candidates = list(exhaustive)
        else:
            size = max(int(len(exhaustive) * share), 4)
            candidates = candidates_h1m(statistics, size, 4)
        results.append((share, lp_size(workload, candidates)))
    return results


def render(results: list[tuple[float, LPSize]]) -> str:
    """Render shares vs LP sizes as a table."""
    return render_table(
        ["Share of I_max", "|I|", "Variables", "Constraints"],
        [
            (f"{share:.0%}", size.candidates, size.variables,
             size.constraints)
            for share, size in results
        ],
        title="Fig. 6 — CoPhy LP size vs relative candidate-set size",
    )


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: ``python -m repro.experiments.fig6``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.parse_args(argv)
    print(render(run()))


if __name__ == "__main__":
    main()
