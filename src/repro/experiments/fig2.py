"""Fig. 2 — frontier comparison: H6 vs CoPhy with candidate heuristics.

Reproduces the paper's Fig. 2: scan performance (total workload cost)
against relative memory budget ``A(w)``, ``w ∈ [0, 0.4]``, for

* our strategy **H6** (one Extend run per budget),
* **CoPhy** with candidate sets of ``|I| = 500`` chosen by H1-M, H2-M,
  and H3-M,
* **CoPhy** with the exhaustive candidate set ``I_max`` (the optimal
  reference — may DNF at large scale, recorded as ``inf``).

Workload: Appendix C with ``N = 500`` attributes and ``Q = 1 000``
queries (``T = 10`` tables, ``N_t = 50``, ``Q_t = 100``).  The reproduced
claims: H6 tracks CoPhy-``I_max`` closely at *every* budget, while
CoPhy's quality with reduced candidate sets depends strongly on the
heuristic (H1-M best, H2-M/H3-M markedly worse).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments.common import (
    BudgetSweepSeries,
    analytic_optimizer,
    budget_grid,
    sweep_cophy,
    sweep_extend,
)
from repro.experiments.reporting import render_series
from repro.indexes.candidates import (
    CANDIDATE_HEURISTICS,
    syntactically_relevant_candidates,
)
from repro.workload.generator import GeneratorConfig, generate_workload
from repro.workload.stats import WorkloadStatistics

__all__ = ["Fig2Config", "run", "main"]


@dataclass(frozen=True)
class Fig2Config:
    """Parameters of the Fig. 2 reproduction."""

    queries_per_table: int = 100
    attributes_per_table: int = 50
    candidate_set_size: int = 500
    budget_low: float = 0.0
    budget_high: float = 0.4
    budget_steps: int = 9
    mip_gap: float = 0.05
    time_limit: float = 120.0
    include_imax: bool = True
    seed: int = 1909
    sweep_engine: str = "shared"


def run(
    config: Fig2Config | None = None, *, verbose: bool = False
) -> list[BudgetSweepSeries]:
    """Execute the Fig. 2 sweep and return all series."""
    if config is None:
        config = Fig2Config()
    workload = generate_workload(
        GeneratorConfig(
            attributes_per_table=config.attributes_per_table,
            queries_per_table=config.queries_per_table,
            seed=config.seed,
        )
    )
    statistics = WorkloadStatistics(workload)
    optimizer = analytic_optimizer(workload)
    budgets = budget_grid(
        config.budget_low, config.budget_high, config.budget_steps
    )

    series = [
        sweep_extend(
            workload,
            optimizer,
            budgets,
            verbose=verbose,
            engine=config.sweep_engine,
        )
    ]
    for heuristic_name, heuristic in CANDIDATE_HEURISTICS.items():
        candidates = heuristic(statistics, config.candidate_set_size, 4)
        series.append(
            sweep_cophy(
                workload,
                optimizer,
                budgets,
                candidates,
                name=f"CoPhy/{heuristic_name}({config.candidate_set_size})",
                mip_gap=config.mip_gap,
                time_limit=config.time_limit,
                verbose=verbose,
            )
        )
    if config.include_imax:
        exhaustive = syntactically_relevant_candidates(workload)
        series.append(
            sweep_cophy(
                workload,
                optimizer,
                budgets,
                exhaustive,
                name=f"CoPhy/I_max({len(exhaustive)})",
                mip_gap=config.mip_gap,
                time_limit=config.time_limit,
                verbose=verbose,
            )
        )
    return series


def render(series: list[BudgetSweepSeries]) -> str:
    """Render all series in figure order."""
    blocks = [
        "Fig. 2 — workload cost vs relative memory budget A(w)",
    ]
    for entry in series:
        blocks.append(render_series(entry.name, entry.points))
        if entry.notes:
            blocks.extend(f"  note: {note}" for note in entry.notes)
    return "\n".join(blocks)


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: ``python -m repro.experiments.fig2``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--queries-per-table",
        type=int,
        default=100,
        help="Q_t per table (paper: 100 → Q = 1 000)",
    )
    parser.add_argument(
        "--no-imax",
        action="store_true",
        help="skip the exhaustive-candidate CoPhy reference",
    )
    parser.add_argument("--time-limit", type=float, default=120.0)
    parser.add_argument(
        "--sweep-engine",
        choices=("shared", "naive"),
        default="shared",
        help="Extend sweep engine: 'shared' reuses one warm "
        "cost-column store across budgets (default), 'naive' is the "
        "historical per-budget loop (bit-identical, slower)",
    )
    arguments = parser.parse_args(argv)
    config = Fig2Config(
        queries_per_table=arguments.queries_per_table,
        include_imax=not arguments.no_imax,
        time_limit=arguments.time_limit,
        sweep_engine=arguments.sweep_engine,
    )
    print(render(run(config, verbose=True)))


if __name__ == "__main__":
    main()
