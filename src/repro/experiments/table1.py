"""Table I — runtime scaling: H6 vs CoPhy across problem sizes.

Reproduces the paper's Table I: for growing workloads (``Σ_t Q_t`` from
500 to 50 000 over ``T = 10`` tables with ``Σ_t N_t = 500`` attributes),
compare the *solve* time of Algorithm 1 (H6) against CoPhy with candidate
sets of different sizes (paper: 100 / 1 000 / 10 000 via H1-M), at budget
``w = 0.2`` and 5 % MIP gap.  What-if time is excluded for CoPhy (the
cost table is built before the timer starts); H6's solve time includes
its interleaved cost arithmetic but its what-if calls are reported
separately.

A per-solve time limit stands in for the paper's eight-hour DNF cutoff.
Absolute numbers differ from the paper (Python + HiGHS vs C++ + CPLEX);
the reproduced claim is the *scaling shape*: H6 stays in seconds and
grows roughly linearly with Q, CoPhy grows super-linearly in both Q and
|I| and starts DNF-ing.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.cophy.solver import CoPhyAlgorithm
from repro.core.extend import ExtendAlgorithm
from repro.exceptions import SolverTimeoutError
from repro.experiments.common import analytic_optimizer
from repro.experiments.reporting import render_table
from repro.indexes.candidates import (
    candidates_h1m,
    syntactically_relevant_candidates,
)
from repro.indexes.memory import relative_budget
from repro.workload.generator import GeneratorConfig, generate_workload
from repro.workload.stats import WorkloadStatistics

__all__ = ["Table1Config", "Table1Row", "run", "main"]

PAPER_QUERY_COUNTS = (500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000)
DEFAULT_QUERY_COUNTS = (500, 1_000, 2_000)
DEFAULT_CANDIDATE_SIZES = (100, 1_000, 10_000)


@dataclass(frozen=True)
class Table1Config:
    """Parameters of the Table I reproduction."""

    total_queries: tuple[int, ...] = DEFAULT_QUERY_COUNTS
    candidate_sizes: tuple[int, ...] = DEFAULT_CANDIDATE_SIZES
    budget_share: float = 0.2
    mip_gap: float = 0.05
    time_limit: float = 60.0
    seed: int = 1909


@dataclass
class Table1Row:
    """One table row: a problem size with all measured runtimes."""

    total_queries: int
    ic_max: int
    candidate_sizes: tuple[int, ...]
    cophy_runtimes: list[float | None] = field(default_factory=list)
    h6_runtime: float = 0.0
    h6_whatif_calls: int = 0

    def cells(self) -> list[object]:
        """Row cells for the rendered table."""
        cophy = ", ".join(
            "DNF" if runtime is None else f"{runtime:.2f}s"
            for runtime in self.cophy_runtimes
        )
        return [
            self.total_queries,
            self.ic_max,
            str(self.candidate_sizes),
            f"({cophy})",
            f"{self.h6_runtime:.3f}s",
            self.h6_whatif_calls,
        ]


def run(
    config: Table1Config | None = None, *, verbose: bool = False
) -> list[Table1Row]:
    """Execute the Table I sweep and return its rows.

    With ``verbose=True``, each row is printed as soon as it is measured
    (the large configurations can take minutes per row).
    """
    if config is None:
        config = Table1Config()
    rows: list[Table1Row] = []
    for total in config.total_queries:
        workload = generate_workload(
            GeneratorConfig(
                queries_per_table=max(total // 10, 1), seed=config.seed
            )
        )
        statistics = WorkloadStatistics(workload)
        exhaustive = syntactically_relevant_candidates(workload)
        budget = relative_budget(workload.schema, config.budget_share)
        row = Table1Row(
            total_queries=workload.query_count,
            ic_max=len(exhaustive),
            candidate_sizes=config.candidate_sizes,
        )

        optimizer = analytic_optimizer(workload)
        cophy = CoPhyAlgorithm(
            optimizer,
            mip_gap=config.mip_gap,
            time_limit=config.time_limit,
        )
        for size in config.candidate_sizes:
            if size >= len(exhaustive):
                candidates = list(exhaustive)
            else:
                candidates = candidates_h1m(statistics, size)
            try:
                result = cophy.select(workload, budget, candidates)
            except SolverTimeoutError:
                row.cophy_runtimes.append(None)
                continue
            row.cophy_runtimes.append(
                None if result.timed_out else result.runtime_seconds
            )

        h6 = ExtendAlgorithm(optimizer).select(workload, budget)
        row.h6_runtime = h6.runtime_seconds
        row.h6_whatif_calls = h6.whatif_calls
        rows.append(row)
        if verbose:
            print(
                f"Q={row.total_queries}: CoPhy="
                + ", ".join(
                    "DNF" if runtime is None else f"{runtime:.2f}s"
                    for runtime in row.cophy_runtimes
                )
                + f"; H6={row.h6_runtime:.3f}s "
                f"({row.h6_whatif_calls} what-if calls)",
                flush=True,
            )
    return rows


def render(rows: list[Table1Row]) -> str:
    """Render the rows in the paper's Table I layout."""
    return render_table(
        [
            "# Queries",
            "|IC_max|",
            "# Candidates |I|",
            "Runtime CoPhy",
            "Runtime (H6)",
            "H6 what-if calls",
        ],
        [row.cells() for row in rows],
        title=(
            "Table I — solving time of H6 vs CoPhy "
            "(DNF = time limit exceeded)"
        ),
    )


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: ``python -m repro.experiments.table1``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper's full query-count range (up to 50 000)",
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=60.0,
        help="per-solve DNF cutoff in seconds (default 60)",
    )
    arguments = parser.parse_args(argv)
    config = Table1Config(
        total_queries=(
            PAPER_QUERY_COUNTS if arguments.full else DEFAULT_QUERY_COUNTS
        ),
        time_limit=arguments.time_limit,
    )
    print(render(run(config, verbose=True)))


if __name__ == "__main__":
    main()
