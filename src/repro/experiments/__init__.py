"""Experiment harnesses reproducing every table and figure of the paper.

Each module is runnable directly (``python -m repro.experiments.<id>``)
and exposes ``run(config) -> results`` plus ``render(results) -> str``
for programmatic use; the ``benchmarks/`` directory wraps the same
functions with pytest-benchmark at CI-friendly scales.

=========  =========================================================
module     paper artifact
=========  =========================================================
table1     Table I — solve-time scaling H6 vs CoPhy
fig1       Fig. 1 — TPC-C worked example (illustration)
fig2       Fig. 2 — frontiers: candidate heuristics (H1-M/H2-M/H3-M)
fig3       Fig. 3 — frontiers: candidate-set sizes (H1-M)
fig4       Fig. 4 — enterprise (ERP) workload frontiers
fig5       Fig. 5 — end-to-end with measured execution costs
fig6       Fig. 6 — CoPhy LP size vs candidate share
whatif     what-if call accounting (Section III-A formulas)
ablations  Remark 1 variant comparison + swap local search
=========  =========================================================
"""

from repro.experiments.common import (
    BudgetSweepSeries,
    analytic_optimizer,
    budget_grid,
    sweep_cophy,
    sweep_extend,
    sweep_heuristic,
)
from repro.experiments.reporting import (
    format_bytes,
    format_number,
    render_series,
    render_table,
)

__all__ = [
    "BudgetSweepSeries",
    "analytic_optimizer",
    "budget_grid",
    "format_bytes",
    "format_number",
    "render_series",
    "render_table",
    "sweep_cophy",
    "sweep_extend",
    "sweep_heuristic",
]
