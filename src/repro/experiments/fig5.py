"""Fig. 5 — end-to-end evaluation with measured execution costs.

Reproduces the paper's Fig. 5 methodology on the in-memory column-store
engine (the substitute for the commercial DBMS, see DESIGN.md §4):

1. Materialize the Example-1-style workload (``N = 100``, ``Q = 100``)
   as real data.
2. Measure ``f_j(k)`` by *executing* every query under every candidate
   index (and with none) — no analytic model, no what-if estimates.
3. Feed the measured costs to every selection algorithm: H6,
   frequency-based H1, H4 with and without the skyline method, H5, CoPhy
   with 10 % of the candidates (via H1-M), and CoPhy with all candidates
   (the optimal reference).
4. Evaluate each resulting configuration by executing the whole workload
   under it and reporting the aggregate measured cost, sweeping
   ``w ∈ [0, 1]``.

Reproduced claims: H6 stays within a few percent of CoPhy-all across the
budget range without depending on a candidate set; H1 and H4 (± skyline)
fall well short; H5 with all candidates is competitive; CoPhy restricted
to 10 % of the candidates loses noticeably.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.cost.whatif import WhatIfOptimizer
from repro.core.steps import SelectionResult
from repro.engine.columnstore import ColumnStoreDatabase
from repro.engine.measured import MeasuredCostSource, evaluate_configuration
from repro.experiments.common import (
    BudgetSweepSeries,
    budget_grid,
    sweep_cophy,
    sweep_extend,
    sweep_heuristic,
)
from repro.experiments.reporting import render_series
from repro.heuristics.performance import (
    BenefitPerSizeHeuristic,
    PerformanceHeuristic,
)
from repro.heuristics.rules import FrequencyHeuristic
from repro.indexes.candidates import (
    candidates_h1m,
    syntactically_relevant_candidates,
)
from repro.telemetry import Telemetry
from repro.workload.generator import GeneratorConfig, generate_workload
from repro.workload.stats import WorkloadStatistics

__all__ = ["Fig5Config", "run", "main"]


@dataclass(frozen=True)
class Fig5Config:
    """Parameters of the Fig. 5 reproduction."""

    queries_per_table: int = 10
    attributes_per_table: int = 10
    row_cap: int = 100_000
    budget_low: float = 0.0
    budget_high: float = 1.0
    budget_steps: int = 11
    cophy_share: float = 0.10
    mip_gap: float = 0.05
    time_limit: float = 120.0
    seed: int = 1909
    data_seed: int = 7


def run(
    config: Fig5Config | None = None,
    *,
    telemetry: Telemetry | None = None,
) -> list[BudgetSweepSeries]:
    """Execute the Fig. 5 end-to-end sweep and return all series.

    Every series reuses the shared sweep helpers with a ``cost_fn``
    that *executes* the recommended configuration on the column store —
    the plotted value is measured cost, not the model estimate the
    algorithms optimized.
    """
    if config is None:
        config = Fig5Config()
    telemetry = telemetry or Telemetry()
    workload = generate_workload(
        GeneratorConfig(
            attributes_per_table=config.attributes_per_table,
            queries_per_table=config.queries_per_table,
            seed=config.seed,
        )
    )
    statistics = WorkloadStatistics(workload)
    database = ColumnStoreDatabase(
        workload.schema, seed=config.data_seed, row_cap=config.row_cap
    )
    source = MeasuredCostSource(database)
    optimizer = WhatIfOptimizer(source)

    exhaustive = syntactically_relevant_candidates(workload)
    reduced = candidates_h1m(
        statistics, max(int(len(exhaustive) * config.cophy_share), 4), 4
    )
    budgets = budget_grid(
        config.budget_low, config.budget_high, config.budget_steps
    )

    def end_to_end(result: SelectionResult) -> float:
        return evaluate_configuration(
            source, workload, result.configuration
        ).total_cost

    series = [
        sweep_extend(
            workload,
            optimizer,
            budgets,
            cost_fn=end_to_end,
            telemetry=telemetry,
        )
    ]
    heuristics = [
        FrequencyHeuristic(optimizer, telemetry=telemetry),
        PerformanceHeuristic(optimizer, telemetry=telemetry),
        PerformanceHeuristic(
            optimizer, use_skyline=True, telemetry=telemetry
        ),
        BenefitPerSizeHeuristic(optimizer, telemetry=telemetry),
    ]
    for heuristic in heuristics:
        series.append(
            sweep_heuristic(
                workload,
                budgets,
                exhaustive,
                heuristic,
                cost_fn=end_to_end,
                telemetry=telemetry,
            )
        )
    for name, candidates in (
        (
            f"CoPhy/{int(config.cophy_share * 100)}%({len(reduced)})",
            reduced,
        ),
        (f"CoPhy/all({len(exhaustive)})", exhaustive),
    ):
        series.append(
            sweep_cophy(
                workload,
                optimizer,
                budgets,
                candidates,
                name=name,
                mip_gap=config.mip_gap,
                time_limit=config.time_limit,
                cost_fn=end_to_end,
                telemetry=telemetry,
            )
        )
    return series


def render(series: list[BudgetSweepSeries]) -> str:
    """Render all series in figure order."""
    blocks = [
        "Fig. 5 — end-to-end measured workload cost vs A(w), w in [0, 1]",
    ]
    for entry in series:
        blocks.append(render_series(entry.name, entry.points))
        if entry.notes:
            blocks.extend(f"  note: {note}" for note in entry.notes)
    return "\n".join(blocks)


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: ``python -m repro.experiments.fig5``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--row-cap",
        type=int,
        default=100_000,
        help="materialized rows per table (default 100 000)",
    )
    parser.add_argument("--budget-steps", type=int, default=11)
    arguments = parser.parse_args(argv)
    config = Fig5Config(
        row_cap=arguments.row_cap, budget_steps=arguments.budget_steps
    )
    print(render(run(config)))


if __name__ == "__main__":
    main()
