"""Fig. 1 — the TPC-C worked example of Algorithm 1.

Reproduces the structure of the paper's Fig. 1: the aggregated TPC-C
query templates, the construction steps Algorithm 1 takes (new
single-attribute indexes first, then morphing), which index each step
created or extended, and which queries every final index can fully
cover.  This is an *illustration* rather than a measurement; the test
suite asserts its structural properties (first step is a single, morphs
occur, multi-attribute indexes emerge).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.core.extend import ExtendAlgorithm
from repro.core.steps import StepKind
from repro.experiments.common import analytic_optimizer
from repro.experiments.reporting import render_table
from repro.indexes.memory import relative_budget
from repro.workload.tpcc import tpcc_workload

__all__ = ["Fig1Config", "Fig1Output", "run", "main"]


@dataclass(frozen=True)
class Fig1Config:
    """Parameters of the Fig. 1 illustration."""

    warehouses: int = 10
    transactions: int = 100_000
    budget_share: float = 0.6


@dataclass(frozen=True)
class Fig1Output:
    """Everything the rendered figure needs."""

    templates: list[tuple[str, str, float]]
    steps: list[tuple[int, str, str, float]]
    coverage: list[tuple[str, str]]
    morph_count: int
    improvement_factor: float


def run(config: Fig1Config | None = None) -> Fig1Output:
    """Run the construction on TPC-C and collect the figure data."""
    if config is None:
        config = Fig1Config()
    workload = tpcc_workload(
        warehouses=config.warehouses, transactions=config.transactions
    )
    schema = workload.schema
    optimizer = analytic_optimizer(workload)
    budget = relative_budget(schema, config.budget_share)
    result = ExtendAlgorithm(optimizer).select(workload, budget)

    templates = [
        (
            f"q{query.query_id + 1}",
            f"{query.table_name}("
            + ", ".join(
                sorted(
                    schema.attribute(a).name for a in query.attributes
                )
            )
            + ")",
            query.frequency,
        )
        for query in workload
    ]
    steps = [
        (
            step.step_number,
            step.kind.value,
            (step.index_after or step.index_before).label(schema),
            step.ratio,
        )
        for step in result.steps
    ]
    coverage = []
    for index in sorted(
        result.configuration,
        key=lambda index: (index.table_name, index.attributes),
    ):
        covered = [
            f"q{query.query_id + 1}"
            for query in workload
            if index.usable_prefix_length(query) == index.width
        ]
        coverage.append(
            (index.label(schema), ", ".join(covered) or "-")
        )
    baseline = optimizer.workload_cost(workload, ())
    return Fig1Output(
        templates=templates,
        steps=steps,
        coverage=coverage,
        morph_count=sum(
            1
            for step in result.steps
            if step.kind is StepKind.EXTEND
        ),
        improvement_factor=baseline / max(result.total_cost, 1e-12),
    )


def render(output: Fig1Output) -> str:
    """Render the three panels of the figure as text tables."""
    blocks = [
        render_table(
            ["template", "attributes", "frequency"],
            output.templates,
            title="Fig. 1 (left) — aggregated TPC-C query templates",
        ),
        "",
        render_table(
            ["step", "kind", "index", "ratio"],
            [
                (number, kind, label, f"{ratio:.4g}")
                for number, kind, label, ratio in output.steps
            ],
            title="Fig. 1 (middle) — construction steps",
        ),
        "",
        render_table(
            ["index", "fully coverable queries"],
            output.coverage,
            title="Fig. 1 (right) — final indexes and coverage",
        ),
        "",
        f"{output.morph_count} morphing steps; workload improved "
        f"{output.improvement_factor:,.0f}x.",
    ]
    return "\n".join(blocks)


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: ``python -m repro.experiments.fig1``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--warehouses", type=int, default=10)
    parser.add_argument("--budget", type=float, default=0.6)
    arguments = parser.parse_args(argv)
    print(
        render(
            run(
                Fig1Config(
                    warehouses=arguments.warehouses,
                    budget_share=arguments.budget,
                )
            )
        )
    )


if __name__ == "__main__":
    main()
