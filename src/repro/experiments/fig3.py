"""Fig. 3 — frontier comparison: effect of the candidate-set *size*.

Reproduces the paper's Fig. 3: the same workload and budget range as
Fig. 2 (``N = 500``, ``Q = 1 000``, ``w ∈ [0, 0.4]``), but CoPhy's
candidate sets all come from H1-M with different sizes:
``|I| ∈ {100, 1 000, |I_max|}``.  The reproduced claim: the smaller the
candidate set, the likelier important indexes are missing and the worse
CoPhy's frontier, while H6 needs no candidate set at all and tracks the
exhaustive reference.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments.common import (
    BudgetSweepSeries,
    analytic_optimizer,
    budget_grid,
    sweep_cophy,
    sweep_extend,
)
from repro.experiments.reporting import render_series
from repro.indexes.candidates import (
    candidates_h1m,
    syntactically_relevant_candidates,
)
from repro.workload.generator import GeneratorConfig, generate_workload
from repro.workload.stats import WorkloadStatistics

__all__ = ["Fig3Config", "run", "main"]


@dataclass(frozen=True)
class Fig3Config:
    """Parameters of the Fig. 3 reproduction."""

    queries_per_table: int = 100
    attributes_per_table: int = 50
    candidate_set_sizes: tuple[int, ...] = (100, 1_000)
    budget_low: float = 0.0
    budget_high: float = 0.4
    budget_steps: int = 9
    mip_gap: float = 0.05
    time_limit: float = 120.0
    include_imax: bool = True
    seed: int = 1909
    sweep_engine: str = "shared"


def run(
    config: Fig3Config | None = None, *, verbose: bool = False
) -> list[BudgetSweepSeries]:
    """Execute the Fig. 3 sweep and return all series."""
    if config is None:
        config = Fig3Config()
    workload = generate_workload(
        GeneratorConfig(
            attributes_per_table=config.attributes_per_table,
            queries_per_table=config.queries_per_table,
            seed=config.seed,
        )
    )
    statistics = WorkloadStatistics(workload)
    optimizer = analytic_optimizer(workload)
    budgets = budget_grid(
        config.budget_low, config.budget_high, config.budget_steps
    )

    series = [
        sweep_extend(
            workload,
            optimizer,
            budgets,
            verbose=verbose,
            engine=config.sweep_engine,
        )
    ]
    for size in config.candidate_set_sizes:
        candidates = candidates_h1m(statistics, size, 4)
        series.append(
            sweep_cophy(
                workload,
                optimizer,
                budgets,
                candidates,
                name=f"CoPhy/H1-M({size})",
                mip_gap=config.mip_gap,
                time_limit=config.time_limit,
                verbose=verbose,
            )
        )
    if config.include_imax:
        exhaustive = syntactically_relevant_candidates(workload)
        series.append(
            sweep_cophy(
                workload,
                optimizer,
                budgets,
                exhaustive,
                name=f"CoPhy/I_max({len(exhaustive)})",
                mip_gap=config.mip_gap,
                time_limit=config.time_limit,
                verbose=verbose,
            )
        )
    return series


def render(series: list[BudgetSweepSeries]) -> str:
    """Render all series in figure order."""
    blocks = [
        "Fig. 3 — workload cost vs A(w) for different candidate-set sizes",
    ]
    for entry in series:
        blocks.append(render_series(entry.name, entry.points))
        if entry.notes:
            blocks.extend(f"  note: {note}" for note in entry.notes)
    return "\n".join(blocks)


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: ``python -m repro.experiments.fig3``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries-per-table", type=int, default=100)
    parser.add_argument("--no-imax", action="store_true")
    parser.add_argument("--time-limit", type=float, default=120.0)
    parser.add_argument(
        "--sweep-engine",
        choices=("shared", "naive"),
        default="shared",
        help="Extend sweep engine: 'shared' reuses one warm "
        "cost-column store across budgets (default), 'naive' is the "
        "historical per-budget loop (bit-identical, slower)",
    )
    arguments = parser.parse_args(argv)
    config = Fig3Config(
        queries_per_table=arguments.queries_per_table,
        include_imax=not arguments.no_imax,
        time_limit=arguments.time_limit,
        sweep_engine=arguments.sweep_engine,
    )
    print(render(run(config, verbose=True)))


if __name__ == "__main__":
    main()
