"""Shared plumbing of the experiment harnesses.

Every experiment follows the same pattern: build a workload, wire a cost
source and what-if facade, sweep budgets for a set of selection
algorithms, and print the series/rows the corresponding paper artifact
reports.  This module holds the pieces they share.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cophy.solver import CoPhyAlgorithm
from repro.core.evaluation import WarmBenefitStore
from repro.core.extend import ExtendAlgorithm
from repro.core.frontier import Frontier, FrontierPoint
from repro.core.steps import SelectionResult
from repro.core.sweep import sweep_points_parallel, sweep_select
from repro.cost.kernel import VectorizedCostSource
from repro.cost.model import CostModel
from repro.cost.whatif import AnalyticalCostSource, WhatIfOptimizer
from repro.exceptions import ExperimentError, SolverTimeoutError
from repro.indexes.index import Index
from repro.indexes.memory import relative_budget
from repro.telemetry import Telemetry
from repro.workload.query import Workload

__all__ = [
    "BudgetSweepSeries",
    "analytic_optimizer",
    "sweep_extend",
    "sweep_cophy",
    "sweep_heuristic",
    "budget_grid",
]


@dataclass
class BudgetSweepSeries:
    """One plotted series: algorithm performance across budget shares."""

    name: str
    points: list[tuple[float, float]] = field(default_factory=list)
    runtimes: list[float] = field(default_factory=list)
    whatif_calls: int = 0
    point_whatif_calls: list[int] = field(default_factory=list)
    """Backend what-if calls attributed to each point, parallel to
    ``points``.  Under the shared sweep engine the first *executed*
    (largest-budget) point carries nearly all of them; under thread
    fan-out the attribution is approximate (concurrent points share one
    facade) while ``whatif_calls`` stays exact for the whole loop."""
    notes: list[str] = field(default_factory=list)

    def add(
        self,
        w: float,
        cost: float,
        runtime: float,
        whatif_calls: int = 0,
    ) -> None:
        """Record one (budget share, cost) sample."""
        self.points.append((w, cost))
        self.runtimes.append(runtime)
        self.point_whatif_calls.append(whatif_calls)

    @property
    def frontier(self) -> Frontier:
        """The series as a frontier over budget shares."""
        return Frontier(
            FrontierPoint(memory=w, cost=cost) for w, cost in self.points
        )

    @property
    def total_runtime(self) -> float:
        """Summed solve time across the sweep."""
        return sum(self.runtimes)


def analytic_optimizer(
    workload: Workload, *, kernel: str = "vectorized"
) -> WhatIfOptimizer:
    """A what-if facade over the Appendix B cost model.

    ``kernel`` selects the backend flavour: ``"vectorized"`` (default)
    uses the compiled batch kernel of :mod:`repro.cost.kernel`,
    ``"scalar"`` the pure-Python :class:`CostModel`, ``"sharded"`` the
    process-pool backend of :mod:`repro.cost.shard`.  All agree within
    1e-9 relative tolerance on every pair (vectorized and sharded are
    bit-identical); the experiment sweeps (and the golden step traces)
    are invariant to the choice.
    """
    if kernel == "vectorized":
        return WhatIfOptimizer(VectorizedCostSource(workload.schema))
    if kernel == "sharded":
        from repro.cost.shard import ShardedCostSource

        return WhatIfOptimizer(ShardedCostSource(workload.schema))
    if kernel == "scalar":
        return WhatIfOptimizer(
            AnalyticalCostSource(CostModel(workload.schema))
        )
    raise ExperimentError(
        f"unknown cost kernel {kernel!r}; pick 'scalar', 'vectorized' "
        "or 'sharded'"
    )


def budget_grid(
    low: float, high: float, steps: int
) -> list[float]:
    """Evenly spaced budget shares in ``[low, high]`` (inclusive).

    Budget shares are relative to the all-singles footprint (Eq. 10),
    so the grid must stay inside ``0 <= low < high <= 1``; the figure
    harnesses anchor at ``low = 0`` (the no-index point).  Strictly
    positive user-supplied sweep inputs go through
    :func:`repro.core.sweep.normalize_budget_shares` instead.
    """
    if steps < 2:
        raise ExperimentError(f"need >= 2 budget steps, got {steps}")
    if not 0 <= low < high <= 1:
        raise ExperimentError(
            f"invalid budget range [{low}, {high}]; shares are "
            "relative to the all-singles footprint and must satisfy "
            "0 <= low < high <= 1"
        )
    width = (high - low) / (steps - 1)
    return [low + width * step for step in range(steps)]


def _progress(verbose: bool, message: str) -> None:
    if verbose:
        print(f"  [{message}]", flush=True)


def _series_cost(
    result: SelectionResult,
    cost_fn: Callable[[SelectionResult], float] | None,
) -> float:
    """The cost a sweep records: model cost, or a caller-supplied
    evaluation (e.g. Fig. 5's measured end-to-end execution)."""
    if cost_fn is None:
        return result.total_cost
    return cost_fn(result)


def sweep_extend(
    workload: Workload,
    optimizer: WhatIfOptimizer,
    budget_shares: Sequence[float],
    *,
    name: str = "H6",
    algorithm_factory: Callable[[WhatIfOptimizer], ExtendAlgorithm]
    | None = None,
    cost_fn: Callable[[SelectionResult], float] | None = None,
    telemetry: Telemetry | None = None,
    verbose: bool = False,
    engine: str = "shared",
    warm_store: WarmBenefitStore | None = None,
) -> BudgetSweepSeries:
    """Run Extend once per budget share.

    ``engine`` picks how the per-budget runs share work:

    * ``"shared"`` (default) routes through the multi-budget engine of
      :mod:`repro.core.sweep` — shares run **descending** over one warm
      cost-column store, so the frontier costs roughly one run's worth
      of backend calls.  Every point stays bit-identical to its
      standalone run; the series still reports points in the caller's
      share order.
    * ``"naive"`` is the historical loop: a fresh
      :class:`ExtendAlgorithm` per budget, ascending, re-pricing
      through the facade cache each time.

    All timing flows through the shared telemetry tracer; pass an
    enabled session via ``telemetry`` to keep the spans (and the
    per-step event log), otherwise a throwaway session is used.
    """
    telemetry = telemetry or Telemetry()
    if engine not in ("shared", "naive"):
        raise ExperimentError(
            f"unknown sweep engine {engine!r}; pick 'shared' or 'naive'"
        )
    series = BudgetSweepSeries(name=name)
    calls_before = optimizer.calls
    with telemetry.tracer.span("sweep.extend", series=name, engine=engine):
        if engine == "shared":

            def on_point(point):
                _progress(
                    verbose,
                    f"{name} w={point.budget_share:g}: "
                    f"cost={point.result.total_cost:.4g} "
                    f"in {point.result.runtime_seconds:.2f}s "
                    f"(+{point.whatif_calls} calls)",
                )

            sweep = sweep_select(
                workload,
                optimizer,
                budget_shares,
                algorithm_factory=algorithm_factory,
                telemetry=telemetry,
                warm_store=warm_store,
                point_callback=on_point,
            )
            for point in sweep.points:
                series.add(
                    point.budget_share,
                    _series_cost(point.result, cost_fn),
                    point.result.runtime_seconds,
                    whatif_calls=point.whatif_calls,
                )
        else:
            for w in budget_shares:
                budget = relative_budget(workload.schema, w)
                algorithm = (
                    algorithm_factory(optimizer)
                    if algorithm_factory
                    else ExtendAlgorithm(optimizer, telemetry=telemetry)
                )
                point_calls = optimizer.calls
                with telemetry.tracer.span("sweep.point", w=w):
                    result = algorithm.select(workload, budget)
                    cost = _series_cost(result, cost_fn)
                series.add(
                    w,
                    cost,
                    result.runtime_seconds,
                    whatif_calls=optimizer.calls - point_calls,
                )
                _progress(
                    verbose,
                    f"{name} w={w:g}: cost={cost:.4g} "
                    f"in {result.runtime_seconds:.2f}s",
                )
    series.whatif_calls = optimizer.calls - calls_before
    return series


def sweep_cophy(
    workload: Workload,
    optimizer: WhatIfOptimizer,
    budget_shares: Sequence[float],
    candidates: list[Index],
    *,
    name: str,
    mip_gap: float = 0.05,
    time_limit: float | None = 60.0,
    cost_fn: Callable[[SelectionResult], float] | None = None,
    telemetry: Telemetry | None = None,
    verbose: bool = False,
    point_parallelism: int = 1,
) -> BudgetSweepSeries:
    """Run CoPhy once per budget share over a fixed candidate set.

    Budgets where the solver DNFs are recorded as ``inf`` cost with a
    note, mirroring Table I's DNF entries; the DNF runtime is read from
    the tracer span that wrapped the attempt.

    CoPhy points share nothing across budgets (one LP per budget over a
    fixed candidate set), so ``point_parallelism > 1`` fans them out
    over threads — each point gets a fresh solver instance against the
    shared (thread-safe) what-if facade, the threads drive the resident
    process pool when the sharded kernel is active, and the assembled
    series is bit-identical to the serial loop.  ``cost_fn`` is applied
    serially during assembly either way (Fig. 5's measured executions
    must not overlap).
    """
    telemetry = telemetry or Telemetry()
    series = BudgetSweepSeries(name=name)

    def build_algorithm() -> CoPhyAlgorithm:
        return CoPhyAlgorithm(
            optimizer,
            mip_gap=mip_gap,
            time_limit=time_limit,
            telemetry=telemetry,
        )

    def record(w, result, runtime, point_calls) -> None:
        if result is None:
            series.add(
                w, float("inf"), runtime, whatif_calls=point_calls
            )
            series.notes.append(f"w={w:g}: DNF (time limit)")
            _progress(verbose, f"{name} w={w:g}: DNF")
            return
        cost = _series_cost(result, cost_fn)
        series.add(w, cost, runtime, whatif_calls=point_calls)
        if result.timed_out:
            series.notes.append(
                f"w={w:g}: time limit hit, incumbent returned"
            )
        _progress(
            verbose,
            f"{name} w={w:g}: cost={cost:.4g} "
            f"solve={result.runtime_seconds:.1f}s"
            + (" (timed out)" if result.timed_out else ""),
        )

    calls_before = optimizer.calls
    with telemetry.tracer.span("sweep.cophy", series=name):
        if point_parallelism > 1:

            def run_point(w):
                algorithm = build_algorithm()
                budget = relative_budget(workload.schema, w)
                started = time.perf_counter()
                try:
                    result = algorithm.select(workload, budget, candidates)
                except SolverTimeoutError:
                    return None, time.perf_counter() - started, 0
                return result, result.runtime_seconds, result.whatif_calls

            outcomes = sweep_points_parallel(
                budget_shares, run_point, parallelism=point_parallelism
            )
            for w, (result, runtime, point_calls) in zip(
                budget_shares, outcomes
            ):
                record(w, result, runtime, point_calls)
        else:
            algorithm = build_algorithm()
            for w in budget_shares:
                budget = relative_budget(workload.schema, w)
                point_calls = optimizer.calls
                with telemetry.tracer.span(
                    "sweep.point", w=w
                ) as point_span:
                    try:
                        result = algorithm.select(
                            workload, budget, candidates
                        )
                    except SolverTimeoutError:
                        result = None
                record(
                    w,
                    result,
                    (
                        point_span.duration_seconds
                        if result is None
                        else result.runtime_seconds
                    ),
                    optimizer.calls - point_calls,
                )
    series.whatif_calls = optimizer.calls - calls_before
    return series


def sweep_heuristic(
    workload: Workload,
    budget_shares: Sequence[float],
    candidates: list[Index],
    heuristic,
    *,
    cost_fn: Callable[[SelectionResult], float] | None = None,
    telemetry: Telemetry | None = None,
    point_parallelism: int = 1,
    heuristic_factory: Callable[[], object] | None = None,
) -> BudgetSweepSeries:
    """Run a :class:`RankingHeuristic` once per budget share.

    Heuristic points are independent (one ranked greedy pass per
    budget), so ``point_parallelism > 1`` fans them out over threads
    when ``heuristic_factory`` builds a fresh heuristic per point
    (instances are not assumed thread-safe; the shared what-if facade
    is).  Without a factory the sweep stays serial.  The assembled
    series is bit-identical to the serial loop either way.
    """
    telemetry = telemetry or Telemetry()
    series = BudgetSweepSeries(name=heuristic.name)
    calls_before = heuristic.optimizer.calls
    with telemetry.tracer.span("sweep.heuristic", series=heuristic.name):
        if point_parallelism > 1 and heuristic_factory is not None:

            def run_point(w):
                runner = heuristic_factory()
                budget = relative_budget(workload.schema, w)
                return runner.select(workload, budget, candidates)

            results = sweep_points_parallel(
                budget_shares, run_point, parallelism=point_parallelism
            )
            for w, result in zip(budget_shares, results):
                series.add(
                    w,
                    _series_cost(result, cost_fn),
                    result.runtime_seconds,
                    whatif_calls=result.whatif_calls,
                )
        else:
            for w in budget_shares:
                budget = relative_budget(workload.schema, w)
                point_calls = heuristic.optimizer.calls
                with telemetry.tracer.span("sweep.point", w=w):
                    result = heuristic.select(workload, budget, candidates)
                    cost = _series_cost(result, cost_fn)
                series.add(
                    w,
                    cost,
                    result.runtime_seconds,
                    whatif_calls=heuristic.optimizer.calls - point_calls,
                )
    series.whatif_calls = heuristic.optimizer.calls - calls_before
    return series
