"""Shared plumbing of the experiment harnesses.

Every experiment follows the same pattern: build a workload, wire a cost
source and what-if facade, sweep budgets for a set of selection
algorithms, and print the series/rows the corresponding paper artifact
reports.  This module holds the pieces they share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cophy.solver import CoPhyAlgorithm
from repro.core.extend import ExtendAlgorithm
from repro.core.frontier import Frontier, FrontierPoint
from repro.core.steps import SelectionResult
from repro.cost.kernel import VectorizedCostSource
from repro.cost.model import CostModel
from repro.cost.whatif import AnalyticalCostSource, WhatIfOptimizer
from repro.exceptions import ExperimentError, SolverTimeoutError
from repro.indexes.index import Index
from repro.indexes.memory import relative_budget
from repro.telemetry import Telemetry
from repro.workload.query import Workload

__all__ = [
    "BudgetSweepSeries",
    "analytic_optimizer",
    "sweep_extend",
    "sweep_cophy",
    "sweep_heuristic",
    "budget_grid",
]


@dataclass
class BudgetSweepSeries:
    """One plotted series: algorithm performance across budget shares."""

    name: str
    points: list[tuple[float, float]] = field(default_factory=list)
    runtimes: list[float] = field(default_factory=list)
    whatif_calls: int = 0
    notes: list[str] = field(default_factory=list)

    def add(self, w: float, cost: float, runtime: float) -> None:
        """Record one (budget share, cost) sample."""
        self.points.append((w, cost))
        self.runtimes.append(runtime)

    @property
    def frontier(self) -> Frontier:
        """The series as a frontier over budget shares."""
        return Frontier(
            FrontierPoint(memory=w, cost=cost) for w, cost in self.points
        )

    @property
    def total_runtime(self) -> float:
        """Summed solve time across the sweep."""
        return sum(self.runtimes)


def analytic_optimizer(
    workload: Workload, *, kernel: str = "vectorized"
) -> WhatIfOptimizer:
    """A what-if facade over the Appendix B cost model.

    ``kernel`` selects the backend flavour: ``"vectorized"`` (default)
    uses the compiled batch kernel of :mod:`repro.cost.kernel`,
    ``"scalar"`` the pure-Python :class:`CostModel`, ``"sharded"`` the
    process-pool backend of :mod:`repro.cost.shard`.  All agree within
    1e-9 relative tolerance on every pair (vectorized and sharded are
    bit-identical); the experiment sweeps (and the golden step traces)
    are invariant to the choice.
    """
    if kernel == "vectorized":
        return WhatIfOptimizer(VectorizedCostSource(workload.schema))
    if kernel == "sharded":
        from repro.cost.shard import ShardedCostSource

        return WhatIfOptimizer(ShardedCostSource(workload.schema))
    if kernel == "scalar":
        return WhatIfOptimizer(
            AnalyticalCostSource(CostModel(workload.schema))
        )
    raise ExperimentError(
        f"unknown cost kernel {kernel!r}; pick 'scalar', 'vectorized' "
        "or 'sharded'"
    )


def budget_grid(
    low: float, high: float, steps: int
) -> list[float]:
    """Evenly spaced budget shares in ``[low, high]`` (inclusive)."""
    if steps < 2:
        raise ExperimentError(f"need >= 2 budget steps, got {steps}")
    if not 0 <= low < high:
        raise ExperimentError(
            f"invalid budget range [{low}, {high}]"
        )
    width = (high - low) / (steps - 1)
    return [low + width * step for step in range(steps)]


def _progress(verbose: bool, message: str) -> None:
    if verbose:
        print(f"  [{message}]", flush=True)


def _series_cost(
    result: SelectionResult,
    cost_fn: Callable[[SelectionResult], float] | None,
) -> float:
    """The cost a sweep records: model cost, or a caller-supplied
    evaluation (e.g. Fig. 5's measured end-to-end execution)."""
    if cost_fn is None:
        return result.total_cost
    return cost_fn(result)


def sweep_extend(
    workload: Workload,
    optimizer: WhatIfOptimizer,
    budget_shares: Sequence[float],
    *,
    name: str = "H6",
    algorithm_factory: Callable[[WhatIfOptimizer], ExtendAlgorithm]
    | None = None,
    cost_fn: Callable[[SelectionResult], float] | None = None,
    telemetry: Telemetry | None = None,
    verbose: bool = False,
) -> BudgetSweepSeries:
    """Run Extend once per budget share.

    All timing flows through the shared telemetry tracer; pass an
    enabled session via ``telemetry`` to keep the spans (and the
    per-step event log), otherwise a throwaway session is used.
    """
    telemetry = telemetry or Telemetry()
    series = BudgetSweepSeries(name=name)
    calls_before = optimizer.calls
    with telemetry.tracer.span("sweep.extend", series=name):
        for w in budget_shares:
            budget = relative_budget(workload.schema, w)
            algorithm = (
                algorithm_factory(optimizer)
                if algorithm_factory
                else ExtendAlgorithm(optimizer, telemetry=telemetry)
            )
            with telemetry.tracer.span("sweep.point", w=w):
                result = algorithm.select(workload, budget)
                cost = _series_cost(result, cost_fn)
            series.add(w, cost, result.runtime_seconds)
            _progress(
                verbose,
                f"{name} w={w:g}: cost={cost:.4g} "
                f"in {result.runtime_seconds:.2f}s",
            )
    series.whatif_calls = optimizer.calls - calls_before
    return series


def sweep_cophy(
    workload: Workload,
    optimizer: WhatIfOptimizer,
    budget_shares: Sequence[float],
    candidates: list[Index],
    *,
    name: str,
    mip_gap: float = 0.05,
    time_limit: float | None = 60.0,
    cost_fn: Callable[[SelectionResult], float] | None = None,
    telemetry: Telemetry | None = None,
    verbose: bool = False,
) -> BudgetSweepSeries:
    """Run CoPhy once per budget share over a fixed candidate set.

    Budgets where the solver DNFs are recorded as ``inf`` cost with a
    note, mirroring Table I's DNF entries; the DNF runtime is read from
    the tracer span that wrapped the attempt.
    """
    telemetry = telemetry or Telemetry()
    series = BudgetSweepSeries(name=name)
    algorithm = CoPhyAlgorithm(
        optimizer,
        mip_gap=mip_gap,
        time_limit=time_limit,
        telemetry=telemetry,
    )
    calls_before = optimizer.calls
    with telemetry.tracer.span("sweep.cophy", series=name):
        for w in budget_shares:
            budget = relative_budget(workload.schema, w)
            with telemetry.tracer.span("sweep.point", w=w) as point_span:
                try:
                    result = algorithm.select(workload, budget, candidates)
                    cost = _series_cost(result, cost_fn)
                except SolverTimeoutError:
                    result = None
            if result is None:
                series.add(w, float("inf"), point_span.duration_seconds)
                series.notes.append(f"w={w:g}: DNF (time limit)")
                _progress(verbose, f"{name} w={w:g}: DNF")
                continue
            series.add(w, cost, result.runtime_seconds)
            if result.timed_out:
                series.notes.append(
                    f"w={w:g}: time limit hit, incumbent returned"
                )
            _progress(
                verbose,
                f"{name} w={w:g}: cost={cost:.4g} "
                f"solve={result.runtime_seconds:.1f}s"
                + (" (timed out)" if result.timed_out else ""),
            )
    series.whatif_calls = optimizer.calls - calls_before
    return series


def sweep_heuristic(
    workload: Workload,
    budget_shares: Sequence[float],
    candidates: list[Index],
    heuristic,
    *,
    cost_fn: Callable[[SelectionResult], float] | None = None,
    telemetry: Telemetry | None = None,
) -> BudgetSweepSeries:
    """Run a :class:`RankingHeuristic` once per budget share."""
    telemetry = telemetry or Telemetry()
    series = BudgetSweepSeries(name=heuristic.name)
    calls_before = heuristic.optimizer.calls
    with telemetry.tracer.span("sweep.heuristic", series=heuristic.name):
        for w in budget_shares:
            budget = relative_budget(workload.schema, w)
            with telemetry.tracer.span("sweep.point", w=w):
                result = heuristic.select(workload, budget, candidates)
                cost = _series_cost(result, cost_fn)
            series.add(w, cost, result.runtime_seconds)
    series.whatif_calls = heuristic.optimizer.calls - calls_before
    return series
