"""Ablation experiment: Algorithm 1's design choices (Remark 1).

Compares the Extend variants and the swap local search on one workload
across budgets, reporting quality (workload cost), what-if calls, and
solve time — the numbers behind the trade-offs Remark 1 sketches:

* n-best single seeding: fewer calls, equal-or-worse quality,
* pruning unused indexes: frees budget, equal-or-better quality,
* pair seeding: more calls, can escape single-attribute blind spots,
* missed-opportunity branching: recovers sibling indexes (AB + AC),
* swap local search: closes tight-budget knapsack gaps.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.core.extend import ExtendAlgorithm
from repro.core.localsearch import swap_local_search
from repro.core.variants import (
    extend_with_missed_opportunities,
    extend_with_n_best_singles,
    extend_with_pair_seeds,
    extend_with_pruning,
)
from repro.experiments.common import analytic_optimizer
from repro.experiments.reporting import render_table
from repro.indexes.candidates import syntactically_relevant_candidates
from repro.indexes.memory import relative_budget
from repro.workload.generator import GeneratorConfig, generate_workload

__all__ = ["AblationConfig", "AblationRow", "run", "main"]


@dataclass(frozen=True)
class AblationConfig:
    """Parameters of the ablation sweep."""

    tables: int = 4
    attributes_per_table: int = 10
    queries_per_table: int = 15
    budget_shares: tuple[float, ...] = (0.1, 0.25, 0.5)
    n_best: int = 5
    missed: int = 3
    seed: int = 1909


@dataclass(frozen=True)
class AblationRow:
    """One (variant, budget) measurement."""

    variant: str
    budget_share: float
    cost: float
    relative_to_plain: float
    whatif_calls: int
    runtime_seconds: float


def run(config: AblationConfig | None = None) -> list[AblationRow]:
    """Execute the ablation sweep."""
    if config is None:
        config = AblationConfig()
    workload = generate_workload(
        GeneratorConfig(
            tables=config.tables,
            attributes_per_table=config.attributes_per_table,
            queries_per_table=config.queries_per_table,
            seed=config.seed,
        )
    )
    candidates = syntactically_relevant_candidates(workload)
    rows: list[AblationRow] = []
    for share in config.budget_shares:
        budget = relative_budget(workload.schema, share)

        plain_optimizer = analytic_optimizer(workload)
        plain = ExtendAlgorithm(plain_optimizer).select(workload, budget)
        rows.append(
            AblationRow(
                variant="plain",
                budget_share=share,
                cost=plain.total_cost,
                relative_to_plain=1.0,
                whatif_calls=plain.whatif_calls,
                runtime_seconds=plain.runtime_seconds,
            )
        )

        variants = [
            (
                "n-best",
                lambda optimizer: extend_with_n_best_singles(
                    optimizer, config.n_best
                ),
            ),
            ("prune", extend_with_pruning),
            ("pairs", extend_with_pair_seeds),
            (
                "missed",
                lambda optimizer: extend_with_missed_opportunities(
                    optimizer, config.missed
                ),
            ),
        ]
        for variant_name, factory in variants:
            optimizer = analytic_optimizer(workload)
            result = factory(optimizer).select(workload, budget)
            rows.append(
                AblationRow(
                    variant=variant_name,
                    budget_share=share,
                    cost=result.total_cost,
                    relative_to_plain=result.total_cost
                    / plain.total_cost,
                    whatif_calls=result.whatif_calls,
                    runtime_seconds=result.runtime_seconds,
                )
            )

        swap_optimizer = analytic_optimizer(workload)
        swap_base = ExtendAlgorithm(swap_optimizer).select(
            workload, budget
        )
        swapped = swap_local_search(
            workload, swap_optimizer, swap_base, budget, candidates
        )
        rows.append(
            AblationRow(
                variant="plain+swap",
                budget_share=share,
                cost=swapped.total_cost,
                relative_to_plain=swapped.total_cost / plain.total_cost,
                whatif_calls=swapped.whatif_calls,
                runtime_seconds=swapped.runtime_seconds,
            )
        )
    return rows


def render(rows: list[AblationRow]) -> str:
    """Render the ablation table."""
    return render_table(
        [
            "variant",
            "w",
            "cost",
            "vs plain",
            "what-if calls",
            "runtime",
        ],
        [
            (
                row.variant,
                row.budget_share,
                row.cost,
                f"{row.relative_to_plain:.4f}",
                row.whatif_calls,
                f"{row.runtime_seconds:.3f}s",
            )
            for row in rows
        ],
        title="Ablations — Algorithm 1 variants (Remark 1) and swap pass",
    )


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: ``python -m repro.experiments.ablations``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.parse_args(argv)
    print(render(run()))


if __name__ == "__main__":
    main()
