"""Plain-text rendering of experiment outputs.

Experiments print the same rows/series the paper's tables and figures
report; this module renders them as aligned text tables so results can be
compared against the paper by eye (and diffed across runs).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_series", "format_bytes", "format_number"]


def format_number(value: object) -> str:
    """Human-friendly numeric formatting for table cells."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.4g}"
        return f"{value:,.3f}"
    return str(value)


def format_bytes(value: float) -> str:
    """Render a byte count with a binary unit suffix."""
    magnitude = float(value)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if magnitude < 1024 or unit == "TiB":
            return f"{magnitude:,.1f} {unit}"
        magnitude /= 1024
    raise AssertionError("unreachable")


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned text table."""
    rendered_rows = [
        [format_number(cell) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(
            header.ljust(widths[column])
            for column, header in enumerate(headers)
        )
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(
                cell.rjust(widths[column])
                for column, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def render_series(
    name: str, points: Sequence[tuple[float, float]]
) -> str:
    """Render one figure series as ``name: (x, y) ...`` lines."""
    body = "\n".join(
        f"  w={x:g}: {format_number(y)}" for x, y in points
    )
    return f"{name}:\n{body}"
