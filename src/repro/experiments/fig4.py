"""Fig. 4 — enterprise (ERP) workload: H6 vs CoPhy with H1-M candidates.

Reproduces the paper's Fig. 4: workload cost (calculated memory traffic)
against relative budgets ``w ∈ [0, 0.1]`` on the enterprise workload
(paper: 500 tables, ``N = 4 204`` attributes, ``Q = 2 271`` templates
from a productive Fortune-500 ERP system; here: the synthetic stand-in of
:mod:`repro.workload.enterprise` reproducing its published aggregate
statistics — see DESIGN.md §4).  CoPhy runs with H1-M candidate sets of
100 and 1 000 candidates and with the exhaustive set.

The reproduced claims: H6 clearly dominates CoPhy with limited candidate
sets across the budget range, and H6's solve time stays around a second
while CoPhy with all candidates takes far longer.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments.common import (
    BudgetSweepSeries,
    analytic_optimizer,
    budget_grid,
    sweep_cophy,
    sweep_extend,
)
from repro.experiments.reporting import render_series
from repro.indexes.candidates import (
    candidates_h1m,
    syntactically_relevant_candidates,
)
from repro.telemetry import Telemetry
from repro.workload.enterprise import (
    EnterpriseConfig,
    generate_enterprise_workload,
)
from repro.workload.stats import WorkloadStatistics

__all__ = ["Fig4Config", "run", "main"]


@dataclass(frozen=True)
class Fig4Config:
    """Parameters of the Fig. 4 reproduction."""

    workload_scale: float = 1.0
    candidate_set_sizes: tuple[int, ...] = (100, 1_000)
    budget_low: float = 0.0
    budget_high: float = 0.1
    budget_steps: int = 6
    mip_gap: float = 0.05
    time_limit: float = 300.0
    include_imax: bool = True
    seed: int = 500
    sweep_engine: str = "shared"


def run(
    config: Fig4Config | None = None,
    *,
    telemetry: Telemetry | None = None,
    verbose: bool = False,
) -> list[BudgetSweepSeries]:
    """Execute the Fig. 4 sweep and return all series.

    One telemetry session spans the whole experiment so every sweep's
    spans and metrics land in the same place; pass your own session to
    attach sinks (e.g. a JSON-lines trace of the full run).
    """
    if config is None:
        config = Fig4Config()
    telemetry = telemetry or Telemetry()
    workload = generate_enterprise_workload(
        EnterpriseConfig(scale=config.workload_scale, seed=config.seed)
    )
    statistics = WorkloadStatistics(workload)
    optimizer = analytic_optimizer(workload)
    budgets = budget_grid(
        config.budget_low, config.budget_high, config.budget_steps
    )

    series = [
        sweep_extend(
            workload,
            optimizer,
            budgets,
            telemetry=telemetry,
            verbose=verbose,
            engine=config.sweep_engine,
        )
    ]
    for size in config.candidate_set_sizes:
        candidates = candidates_h1m(statistics, size, 4)
        series.append(
            sweep_cophy(
                workload,
                optimizer,
                budgets,
                candidates,
                name=f"CoPhy/H1-M({size})",
                mip_gap=config.mip_gap,
                time_limit=config.time_limit,
                telemetry=telemetry,
                verbose=verbose,
            )
        )
    if config.include_imax:
        exhaustive = syntactically_relevant_candidates(workload)
        series.append(
            sweep_cophy(
                workload,
                optimizer,
                budgets,
                exhaustive,
                name=f"CoPhy/I_max({len(exhaustive)})",
                mip_gap=config.mip_gap,
                time_limit=config.time_limit,
                telemetry=telemetry,
                verbose=verbose,
            )
        )
    return series


def render(series: list[BudgetSweepSeries]) -> str:
    """Render all series in figure order, plus runtime notes."""
    blocks = [
        "Fig. 4 — ERP workload: cost vs A(w), w in [0, 0.1]",
    ]
    for entry in series:
        blocks.append(render_series(entry.name, entry.points))
        blocks.append(
            f"  total solve time: {entry.total_runtime:.2f}s, "
            f"what-if calls: {entry.whatif_calls}"
        )
        if entry.notes:
            blocks.extend(f"  note: {note}" for note in entry.notes)
    return "\n".join(blocks)


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: ``python -m repro.experiments.fig4``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale in (0, 1]; 1.0 = paper scale "
        "(500 tables / 4 204 attributes / 2 271 templates)",
    )
    parser.add_argument("--no-imax", action="store_true")
    parser.add_argument("--time-limit", type=float, default=300.0)
    parser.add_argument(
        "--sweep-engine",
        choices=("shared", "naive"),
        default="shared",
        help="Extend sweep engine: 'shared' reuses one warm "
        "cost-column store across budgets (default), 'naive' is the "
        "historical per-budget loop (bit-identical, slower)",
    )
    arguments = parser.parse_args(argv)
    config = Fig4Config(
        workload_scale=arguments.scale,
        include_imax=not arguments.no_imax,
        time_limit=arguments.time_limit,
        sweep_engine=arguments.sweep_engine,
    )
    print(render(run(config, verbose=True)))


if __name__ == "__main__":
    main()
