"""What-if call accounting: H6 vs CoPhy (Section III-A's analysis).

The paper argues that H6 needs roughly ``2 · Q · q̄`` what-if optimizer
calls — more than half of them in the very first construction step — while
CoPhy must price its whole cost table up front, roughly
``Q · q̄ · |I| / N`` calls, growing linearly in the candidate-set size.
This experiment measures both through the shared caching facade across
workload sizes and candidate-set sizes and reports the measured counts
next to the paper's formulas.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.core.extend import ExtendAlgorithm
from repro.experiments.common import analytic_optimizer
from repro.experiments.reporting import render_table
from repro.indexes.candidates import candidates_h1m
from repro.indexes.memory import relative_budget
from repro.workload.generator import GeneratorConfig, generate_workload
from repro.workload.stats import WorkloadStatistics

__all__ = ["WhatIfCallsConfig", "run", "main"]


@dataclass(frozen=True)
class WhatIfCallsConfig:
    """Parameters of the call-accounting experiment."""

    queries_per_table_values: tuple[int, ...] = (50, 100, 200, 500)
    candidate_set_size: int = 1_000
    budget_share: float = 0.2
    seed: int = 1909


@dataclass(frozen=True)
class WhatIfCallsRow:
    """Measured and predicted call counts for one problem size."""

    queries: int
    q_bar: float
    h6_calls: int
    h6_predicted: float
    cophy_calls: int
    cophy_predicted: float


def run(config: WhatIfCallsConfig | None = None) -> list[WhatIfCallsRow]:
    """Measure call counts across problem sizes."""
    if config is None:
        config = WhatIfCallsConfig()
    rows: list[WhatIfCallsRow] = []
    for queries_per_table in config.queries_per_table_values:
        workload = generate_workload(
            GeneratorConfig(
                queries_per_table=queries_per_table, seed=config.seed
            )
        )
        statistics = WorkloadStatistics(workload)
        q_bar = statistics.average_attributes_per_query
        budget = relative_budget(workload.schema, config.budget_share)

        h6_optimizer = analytic_optimizer(workload)
        ExtendAlgorithm(h6_optimizer).select(workload, budget)
        h6_calls = h6_optimizer.calls

        cophy_optimizer = analytic_optimizer(workload)
        candidates = candidates_h1m(
            statistics, config.candidate_set_size, 4
        )
        cophy_optimizer.cost_table(workload, candidates)
        cophy_calls = cophy_optimizer.calls

        n = workload.schema.attribute_count
        rows.append(
            WhatIfCallsRow(
                queries=workload.query_count,
                q_bar=q_bar,
                h6_calls=h6_calls,
                h6_predicted=2 * workload.query_count * q_bar,
                cophy_calls=cophy_calls,
                cophy_predicted=(
                    workload.query_count * q_bar * len(candidates) / n
                ),
            )
        )
    return rows


def render(rows: list[WhatIfCallsRow]) -> str:
    """Render measured vs predicted call counts."""
    return render_table(
        [
            "Q",
            "q̄",
            "H6 calls",
            "≈2·Q·q̄",
            "CoPhy calls",
            "≈Q·q̄·|I|/N",
        ],
        [
            (
                row.queries,
                round(row.q_bar, 2),
                row.h6_calls,
                round(row.h6_predicted),
                row.cophy_calls,
                round(row.cophy_predicted),
            )
            for row in rows
        ],
        title="What-if optimizer calls: measured vs paper formulas",
    )


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: ``python -m repro.experiments.whatif_calls``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.parse_args(argv)
    print(render(run()))


if __name__ == "__main__":
    main()
