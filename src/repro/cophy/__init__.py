"""CoPhy re-implementation: BIP formulation, HiGHS solver, LP statistics."""

from repro.cophy.exhaustive import exhaustive_best_selection
from repro.cophy.model import CoPhyProblem, LPSize, build_problem, lp_size
from repro.cophy.solver import CoPhyAlgorithm, CoPhyResult

__all__ = [
    "CoPhyAlgorithm",
    "CoPhyProblem",
    "CoPhyResult",
    "LPSize",
    "build_problem",
    "exhaustive_best_selection",
    "lp_size",
]
