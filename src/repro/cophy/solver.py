"""CoPhy selection algorithm: BIP solved with HiGHS.

The paper's authors solved the program with CPLEX 12.7 (mipgap 0.05, four
threads, via NEOS); we use SciPy's ``milp`` wrapper around the HiGHS
branch-and-bound solver with the same optimality-gap semantics and a
configurable time limit standing in for Table I's eight-hour DNF cutoff.

For a *given candidate set*, CoPhy's selection is optimal (up to the MIP
gap); its quality in the paper's experiments therefore isolates the effect
of candidate-set choice, which is exactly what Figs. 2–5 study.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.steps import (
    STATUS_COMPLETED,
    STATUS_DEGRADED,
    SelectionResult,
)
from repro.cophy.model import CoPhyProblem, build_problem
from repro.cost.whatif import WhatIfOptimizer
from repro.exceptions import SolverError, SolverTimeoutError
from repro.indexes.configuration import IndexConfiguration
from repro.indexes.index import Index
from repro.indexes.memory import configuration_memory
from repro.resilience.deadline import Deadline
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.workload.query import Workload

__all__ = ["CoPhyAlgorithm", "CoPhyResult"]


class CoPhyResult(SelectionResult):
    """Selection result with LP metadata."""

    def __init__(
        self,
        *,
        variables: int,
        constraints: int,
        mip_gap: float,
        timed_out: bool,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        object.__setattr__(self, "variables", variables)
        object.__setattr__(self, "constraints", constraints)
        object.__setattr__(self, "mip_gap", mip_gap)
        object.__setattr__(self, "timed_out", timed_out)


class CoPhyAlgorithm:
    """Solver-based index selection over a fixed candidate set.

    Parameters
    ----------
    optimizer:
        What-if facade supplying the cost coefficients ``f_j(k)``.
    mip_gap:
        Relative optimality gap passed to the solver (paper: 0.05).
    time_limit:
        Solve-time limit in seconds; exceeding it without any feasible
        incumbent raises :class:`SolverTimeoutError` (a "DNF"), exceeding
        it *with* an incumbent returns the incumbent flagged
        ``timed_out=True``.  ``None`` means no limit.
    telemetry:
        Observability session (see :mod:`repro.telemetry`): traces
        ``cophy.build_problem`` and ``cophy.solve`` spans and publishes
        problem-size gauges when enabled.
    """

    name = "CoPhy"

    def __init__(
        self,
        optimizer: WhatIfOptimizer,
        *,
        mip_gap: float = 0.05,
        time_limit: float | None = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        if mip_gap < 0:
            raise SolverError(f"mip_gap must be >= 0, got {mip_gap}")
        if time_limit is not None and time_limit <= 0:
            raise SolverError(
                f"time_limit must be > 0, got {time_limit}"
            )
        self._optimizer = optimizer
        self._mip_gap = mip_gap
        self._time_limit = time_limit
        self._telemetry = telemetry

    def select(
        self,
        workload: Workload,
        budget: float,
        candidates: list[Index],
        *,
        deadline: Deadline | None = None,
    ) -> CoPhyResult:
        """Solve (5)–(8) and return the selected configuration.

        ``runtime_seconds`` covers the solver only; the what-if calls
        needed to build the cost table are counted in ``whatif_calls``
        (the paper reports the two contributions separately).

        A ``deadline`` caps the effective solver time limit at its
        remaining budget (the MIP solve itself cannot be interrupted
        from outside, so the deadline must be applied up front).  A
        solve that hits the limit *with* a feasible incumbent returns
        it flagged ``timed_out=True`` and ``status="degraded"``; one
        without any incumbent raises :class:`SolverTimeoutError`.
        """
        telemetry = self._telemetry
        tracer = telemetry.tracer
        deadline = deadline or Deadline.none()
        calls_before = self._optimizer.calls
        with tracer.span(
            "cophy.build_problem", candidates=len(candidates)
        ):
            problem = build_problem(
                workload, candidates, budget, self._optimizer
            )
        whatif_calls = self._optimizer.calls - calls_before

        time_limit = self._time_limit
        if not deadline.unlimited:
            remaining = deadline.remaining()
            if remaining <= 0:
                raise SolverTimeoutError(
                    "deadline expired before the CoPhy solve started"
                )
            time_limit = (
                remaining
                if time_limit is None
                else min(time_limit, remaining)
            )

        started = time.perf_counter()
        with tracer.span("cophy.solve") as solve_span:
            solution, timed_out = self._solve(problem, time_limit)
            solve_span.annotate("timed_out", timed_out)
        runtime = time.perf_counter() - started

        if telemetry.enabled:
            telemetry.metrics.gauge("cophy.variables").set(
                problem.size.variables
            )
            telemetry.metrics.gauge("cophy.constraints").set(
                problem.size.constraints
            )
            telemetry.metrics.counter(
                "cophy.whatif_calls"
            ).increment(whatif_calls)
            telemetry.record_whatif(self._optimizer.statistics)

        selected = problem.selection_from(solution)
        configuration = IndexConfiguration(selected)
        total_cost = self._optimizer.workload_cost(workload, configuration)
        return CoPhyResult(
            algorithm=self.name,
            configuration=configuration,
            total_cost=total_cost,
            memory=configuration_memory(workload.schema, selected),
            budget=budget,
            runtime_seconds=runtime,
            whatif_calls=whatif_calls,
            variables=problem.size.variables,
            constraints=problem.size.constraints,
            mip_gap=self._mip_gap,
            timed_out=timed_out,
            status=STATUS_DEGRADED if timed_out else STATUS_COMPLETED,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _solve(
        self, problem: CoPhyProblem, time_limit: float | None
    ) -> tuple[np.ndarray, bool]:
        variable_count = problem.constraint_matrix.shape[1]
        options: dict[str, float] = {"mip_rel_gap": self._mip_gap}
        if time_limit is not None:
            options["time_limit"] = time_limit
        result = milp(
            c=problem.objective,
            constraints=LinearConstraint(
                problem.constraint_matrix,
                problem.lower_bounds,
                problem.upper_bounds,
            ),
            integrality=np.ones(variable_count),
            bounds=Bounds(0.0, 1.0),
            options=options,
        )
        timed_out = result.status == 1  # iteration/time limit reached
        if result.x is None:
            if timed_out:
                raise SolverTimeoutError(
                    "CoPhy solve hit the time limit "
                    f"({time_limit}s) without a feasible incumbent "
                    "(DNF)"
                )
            raise SolverError(
                f"CoPhy solve failed: status={result.status} "
                f"message={result.message!r}"
            )
        return np.asarray(result.x), timed_out
