"""Exhaustive (brute-force) index selection for tiny instances.

Enumerates every subset of the candidate set, keeps those within the
memory budget, and returns the cheapest under the one-index-per-query cost
semantics.  Exponential — usable only for verification: tests compare the
CoPhy solver and (for small budgets) Extend against this ground truth.
"""

from __future__ import annotations

import time
from itertools import combinations

from repro.core.steps import SelectionResult
from repro.cost.whatif import WhatIfOptimizer
from repro.exceptions import SolverError
from repro.indexes.configuration import IndexConfiguration
from repro.indexes.index import Index
from repro.indexes.memory import configuration_memory
from repro.workload.query import Workload

__all__ = ["exhaustive_best_selection"]

_MAX_CANDIDATES = 20


def exhaustive_best_selection(
    workload: Workload,
    budget: float,
    candidates: list[Index],
    optimizer: WhatIfOptimizer,
    *,
    max_candidates: int = _MAX_CANDIDATES,
) -> SelectionResult:
    """The optimal selection by full enumeration.

    Raises :class:`SolverError` for candidate sets larger than
    ``max_candidates`` (the default cap of 20 already means up to ~1 M
    subsets).
    """
    if len(candidates) > max_candidates:
        raise SolverError(
            f"exhaustive search capped at {max_candidates} candidates, "
            f"got {len(candidates)}"
        )
    calls_before = optimizer.calls
    started = time.perf_counter()
    schema = workload.schema

    best_cost = optimizer.workload_cost(workload, ())
    best_selection: tuple[Index, ...] = ()
    best_memory = 0
    for subset_size in range(1, len(candidates) + 1):
        for subset in combinations(candidates, subset_size):
            memory = configuration_memory(schema, subset)
            if memory > budget:
                continue
            cost = optimizer.workload_cost(workload, subset)
            if cost < best_cost or (
                cost == best_cost and memory < best_memory
            ):
                best_cost = cost
                best_selection = subset
                best_memory = memory
    return SelectionResult(
        algorithm="exhaustive",
        configuration=IndexConfiguration(best_selection),
        total_cost=best_cost,
        memory=best_memory,
        budget=budget,
        runtime_seconds=time.perf_counter() - started,
        whatif_calls=optimizer.calls - calls_before,
    )
