"""CoPhy's binary integer program (paper Section II-B, Eqs. 5–8).

Given a candidate set ``I`` and per-(query, index) costs ``f_j(k)``, the
program selects indexes ``x_k`` and per-query index assignments ``z_jk``::

    minimize    Σ_j Σ_{k ∈ I_j ∪ 0}  b_j · f_j(k) · z_jk          (5)
    subject to  Σ_{k ∈ I_j ∪ 0} z_jk  = 1        ∀ j              (6)
                z_jk ≤ x_k                       ∀ j, k ∈ I_j     (7)
                Σ_{i ∈ I} p_i · x_i  ≤ A                          (8)

``I_j ⊆ I`` holds the candidates applicable to query ``j`` (their leading
attribute occurs in ``q_j``).  As in the paper's complexity analysis, the
variable/constraint counts are ``|I| + Σ_j (|I_j|+1)`` and
``Q + Σ_j |I_j| + 1``; :func:`lp_size` reports them without building the
matrices (used for Fig. 6).

The builder additionally drops candidates that help no query (their
``f_j(k)`` never beats ``f_j(0)``) — a pure presolve step that cannot
change the optimum but keeps the matrices small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.cost.whatif import WhatIfOptimizer
from repro.exceptions import SolverError
from repro.indexes.index import Index
from repro.indexes.memory import index_memory
from repro.workload.query import Workload

__all__ = ["CoPhyProblem", "LPSize", "build_problem", "lp_size"]


@dataclass(frozen=True)
class LPSize:
    """Variable and constraint counts of the CoPhy BIP."""

    variables: int
    constraints: int
    candidates: int
    queries: int


@dataclass
class CoPhyProblem:
    """A fully materialized CoPhy BIP ready for the solver.

    The variable vector is ``[x_0..x_{|I|-1}, z_0..z_{nz-1}]`` where each
    ``z`` column corresponds to one ``(query, option)`` pair and option
    ``None`` denotes "no index" (``f_j(0)``).
    """

    workload: Workload
    candidates: tuple[Index, ...]
    objective: np.ndarray
    constraint_matrix: sparse.csr_matrix
    lower_bounds: np.ndarray
    upper_bounds: np.ndarray
    z_options: list[tuple[int, Index | None]]
    budget: float

    @property
    def size(self) -> LPSize:
        """Variable/constraint counts of this instance."""
        return LPSize(
            variables=self.constraint_matrix.shape[1],
            constraints=self.constraint_matrix.shape[0],
            candidates=len(self.candidates),
            queries=self.workload.query_count,
        )

    def selection_from(self, solution: np.ndarray) -> list[Index]:
        """Extract the selected indexes from a solver variable vector."""
        return [
            index
            for position, index in enumerate(self.candidates)
            if solution[position] > 0.5
        ]

    def assignment_cost(self, solution: np.ndarray) -> float:
        """Objective value of a solver variable vector."""
        return float(np.dot(self.objective, solution))


def build_problem(
    workload: Workload,
    candidates: list[Index],
    budget: float,
    optimizer: WhatIfOptimizer,
) -> CoPhyProblem:
    """Materialize the BIP (5)–(8) for a candidate set and budget.

    Fetches all required cost coefficients ``f_j(k)`` through the what-if
    facade — this is the up-front evaluation of the full cost table that
    makes two-step approaches expensive (Section III-A).
    """
    if budget < 0:
        raise SolverError(f"budget must be >= 0, got {budget}")
    if not candidates:
        raise SolverError("CoPhy needs a non-empty candidate set")
    schema = workload.schema
    queries = workload.queries

    # Cost table and applicability (with the helps-nobody presolve).
    # Candidates are bucketed by (table, leading attribute) so each query
    # only inspects candidates that could apply to it (I_j), not all of I.
    by_leading: dict[tuple[str, int], list[Index]] = {}
    for index in candidates:
        by_leading.setdefault(
            (index.table_name, index.leading_attribute), []
        ).append(index)

    if getattr(optimizer, "supports_batch", False):
        # Warm the facade one candidate column at a time (the bucketed
        # loop below prices exactly the applicable pairs, so it then
        # runs on pure cache hits with identical accounting).
        sequential = [
            float(cost)
            for cost in optimizer.sequential_costs(queries)
        ]
        for index in candidates:
            column = [
                query
                for query in queries
                if index.is_applicable_to(query)
            ]
            if column:
                optimizer.index_costs(column, index)
    else:
        sequential = [
            optimizer.sequential_cost(query) for query in queries
        ]
    applicable: dict[int, list[tuple[Index, float]]] = {
        position: [] for position in range(len(queries))
    }
    useful: set[Index] = set()
    for position, query in enumerate(queries):
        for attribute_id in query.attributes:
            for index in by_leading.get(
                (query.table_name, attribute_id), ()
            ):
                cost = optimizer.index_cost(query, index)
                if cost < sequential[position]:
                    applicable[position].append((index, cost))
                    useful.add(index)
    kept = [index for index in candidates if index in useful]
    candidate_position = {index: i for i, index in enumerate(kept)}
    x_count = len(kept)

    # Write queries charge maintenance on every selected index they
    # touch: a linear ``Σ_j b_j · m_jk · x_k`` objective contribution.
    write_queries = [query for query in queries if not query.is_select]
    objective_x = [0.0] * x_count
    for index, position in candidate_position.items():
        objective_x[position] = sum(
            query.frequency * optimizer.maintenance_cost(query, index)
            for query in write_queries
            if query.table_name == index.table_name
        )

    # z variables: one per (query, option); option None = no index.
    z_options: list[tuple[int, Index | None]] = []
    objective_z: list[float] = []
    for position, query in enumerate(queries):
        z_options.append((position, None))
        objective_z.append(query.frequency * sequential[position])
        for index, cost in applicable[position]:
            z_options.append((position, index))
            objective_z.append(query.frequency * cost)
    z_count = len(z_options)

    objective = np.concatenate(
        [
            np.array(objective_x, dtype=np.float64),
            np.array(objective_z, dtype=np.float64),
        ]
    )

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    lower: list[float] = []
    upper: list[float] = []
    constraint_index = 0

    # (6): Σ_k z_jk = 1 per query.
    for position in range(len(queries)):
        lower.append(1.0)
        upper.append(1.0)
    for z_index, (position, _) in enumerate(z_options):
        rows.append(position)
        cols.append(x_count + z_index)
        data.append(1.0)
    constraint_index = len(queries)

    # (7): z_jk - x_k <= 0 per applicable (query, index).
    for z_index, (position, index) in enumerate(z_options):
        if index is None:
            continue
        rows.append(constraint_index)
        cols.append(x_count + z_index)
        data.append(1.0)
        rows.append(constraint_index)
        cols.append(candidate_position[index])
        data.append(-1.0)
        lower.append(-np.inf)
        upper.append(0.0)
        constraint_index += 1

    # (8): Σ p_i x_i <= A.
    for index, position in candidate_position.items():
        rows.append(constraint_index)
        cols.append(position)
        data.append(float(index_memory(schema, index)))
    lower.append(0.0)
    upper.append(float(budget))
    constraint_index += 1

    matrix = sparse.csr_matrix(
        (data, (rows, cols)),
        shape=(constraint_index, x_count + z_count),
    )
    return CoPhyProblem(
        workload=workload,
        candidates=tuple(kept),
        objective=objective,
        constraint_matrix=matrix,
        lower_bounds=np.array(lower, dtype=np.float64),
        upper_bounds=np.array(upper, dtype=np.float64),
        z_options=z_options,
        budget=budget,
    )


def lp_size(workload: Workload, candidates: list[Index]) -> LPSize:
    """Variable/constraint counts without building the problem (Fig. 6).

    Uses the paper's applicability rule (leading attribute occurs in the
    query) and counts ``|I| + Σ_j (|I_j|+1)`` variables and
    ``Q + Σ_j |I_j| + 1`` constraints — no costs are fetched, so this is
    cheap even for large candidate sets.
    """
    by_leading: dict[tuple[str, int], int] = {}
    for index in candidates:
        key = (index.table_name, index.leading_attribute)
        by_leading[key] = by_leading.get(key, 0) + 1
    applicable_total = 0
    for query in workload:
        for attribute_id in query.attributes:
            applicable_total += by_leading.get(
                (query.table_name, attribute_id), 0
            )
    variables = len(candidates) + workload.query_count + applicable_total
    constraints = workload.query_count + applicable_total + 1
    return LPSize(
        variables=variables,
        constraints=constraints,
        candidates=len(candidates),
        queries=workload.query_count,
    )
