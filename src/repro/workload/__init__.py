"""Workload substrate: schemas, queries, statistics, and generators.

This package models the inputs of the index selection problem (paper
Section II-A): database schemas with per-attribute statistics, conjunctive
query templates with frequencies, and the three workload sources used by
the paper's evaluation — the reproducible synthetic generator of
Appendix C, the TPC-C templates of Fig. 1, and a synthetic stand-in for the
Fortune-500 ERP trace of Section IV-A.
"""

from repro.workload.compression import (
    frequency_share,
    merge_duplicate_templates,
    top_k_expensive,
)
from repro.workload.drift import DriftConfig, drifting_workloads
from repro.workload.enterprise import (
    EnterpriseConfig,
    generate_enterprise_workload,
)
from repro.workload.generator import GeneratorConfig, generate_workload
from repro.workload.query import Query, QueryKind, Workload
from repro.workload.schema import Attribute, Schema, Table
from repro.workload.sql import parse_template, workload_from_sql
from repro.workload.stats import WorkloadStatistics
from repro.workload.tpcc import tpcc_schema, tpcc_workload

__all__ = [
    "Attribute",
    "DriftConfig",
    "EnterpriseConfig",
    "GeneratorConfig",
    "Query",
    "QueryKind",
    "Schema",
    "Table",
    "Workload",
    "WorkloadStatistics",
    "drifting_workloads",
    "frequency_share",
    "generate_enterprise_workload",
    "generate_workload",
    "merge_duplicate_templates",
    "parse_template",
    "top_k_expensive",
    "tpcc_schema",
    "tpcc_workload",
    "workload_from_sql",
]
