"""SQL template ingestion.

Real workloads arrive as SQL statements, not attribute sets.  This module
parses the conjunctive template dialect the paper's model covers into
:class:`~repro.workload.query.Query` objects:

* ``SELECT ... FROM <table> WHERE a = ? AND b = ?``
* ``UPDATE <table> SET a = ?, b = ? WHERE c = ?``
* ``INSERT INTO <table> (a, b, c) VALUES (...)``

The parser is deliberately small: one table per statement, equality
predicates combined with ``AND``, attribute references resolved against
the schema.  Anything outside the dialect raises
:class:`~repro.exceptions.WorkloadError` with a message naming the
offending construct — silent misparses would corrupt selection inputs.

Columns mentioned in the SELECT projection list are *not* counted as
accessed attributes: the paper's ``q_j`` models the attributes a query
*filters* on, which is what indexes accelerate.  For UPDATEs, both the
``SET`` columns and the ``WHERE`` columns enter the attribute set
(matching the cost model's combined locate/maintain semantics).
"""

from __future__ import annotations

import re

from repro.exceptions import WorkloadError
from repro.workload.query import Query, QueryKind, Workload
from repro.workload.schema import Schema

__all__ = ["parse_template", "workload_from_sql"]

_SELECT = re.compile(
    r"^\s*SELECT\s+(?P<projection>.+?)\s+FROM\s+(?P<table>\w+)"
    r"(?:\s+WHERE\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_UPDATE = re.compile(
    r"^\s*UPDATE\s+(?P<table>\w+)\s+SET\s+(?P<assignments>.+?)"
    r"(?:\s+WHERE\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_INSERT = re.compile(
    r"^\s*INSERT\s+INTO\s+(?P<table>\w+)\s*"
    r"\(\s*(?P<columns>[\w\s,]+?)\s*\)\s*VALUES\s*\(.+?\)\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_PREDICATE = re.compile(
    r"^\s*(?P<column>\w+)\s*=\s*(?:\?|:\w+|%s|'[^']*'|[\w.]+)\s*$"
)
_ASSIGNMENT = re.compile(
    r"^\s*(?P<column>\w+)\s*=\s*(?:\?|:\w+|%s|'[^']*'|[\w.]+)\s*$"
)


def _resolve(schema: Schema, table_name: str, column: str, sql: str) -> int:
    table = (
        schema.table(table_name)
        if schema.has_table(table_name)
        else None
    )
    if table is None:
        raise WorkloadError(
            f"unknown table {table_name!r} in template: {sql!r}"
        )
    for attribute in table.attributes:
        if attribute.name.upper() == column.upper():
            return attribute.id
    raise WorkloadError(
        f"unknown column {column!r} on table {table_name!r} in "
        f"template: {sql!r}"
    )


def _parse_where(
    schema: Schema, table_name: str, where: str, sql: str
) -> set[int]:
    attribute_ids: set[int] = set()
    for predicate in re.split(r"\s+AND\s+", where, flags=re.IGNORECASE):
        match = _PREDICATE.match(predicate)
        if match is None:
            raise WorkloadError(
                f"unsupported predicate {predicate.strip()!r} in "
                f"template: {sql!r} (only equality predicates combined "
                "with AND are supported)"
            )
        attribute_ids.add(
            _resolve(schema, table_name, match.group("column"), sql)
        )
    return attribute_ids


def parse_template(
    schema: Schema, sql: str, *, query_id: int = 0, frequency: float = 1.0
) -> Query:
    """Parse one SQL template into a :class:`Query`.

    Raises
    ------
    WorkloadError
        For statements outside the supported dialect, unknown tables or
        columns, or SELECT/UPDATE statements without any predicate.
    """
    select = _SELECT.match(sql)
    if select is not None:
        table_name = select.group("table")
        where = select.group("where")
        if not where:
            raise WorkloadError(
                f"SELECT without WHERE accesses no indexed attributes: "
                f"{sql!r}"
            )
        attributes = _parse_where(schema, table_name, where, sql)
        return Query(
            query_id, table_name, frozenset(attributes), frequency
        )

    update = _UPDATE.match(sql)
    if update is not None:
        table_name = update.group("table")
        attributes: set[int] = set()
        for assignment in update.group("assignments").split(","):
            match = _ASSIGNMENT.match(assignment)
            if match is None:
                raise WorkloadError(
                    f"unsupported assignment {assignment.strip()!r} in "
                    f"template: {sql!r}"
                )
            attributes.add(
                _resolve(
                    schema, table_name, match.group("column"), sql
                )
            )
        where = update.group("where")
        if where:
            attributes |= _parse_where(schema, table_name, where, sql)
        return Query(
            query_id,
            table_name,
            frozenset(attributes),
            frequency,
            kind=QueryKind.UPDATE,
        )

    insert = _INSERT.match(sql)
    if insert is not None:
        table_name = insert.group("table")
        attributes = {
            _resolve(schema, table_name, column.strip(), sql)
            for column in insert.group("columns").split(",")
        }
        return Query(
            query_id,
            table_name,
            frozenset(attributes),
            frequency,
            kind=QueryKind.INSERT,
        )

    raise WorkloadError(
        f"unsupported statement (expected SELECT/UPDATE/INSERT in the "
        f"conjunctive-template dialect): {sql!r}"
    )


def workload_from_sql(
    schema: Schema,
    templates: list[tuple[str, float]] | list[str],
) -> Workload:
    """Build a workload from SQL templates.

    ``templates`` is either a list of SQL strings (frequency 1 each) or
    ``(sql, frequency)`` pairs.  Query ids are assigned sequentially.
    """
    queries: list[Query] = []
    for position, entry in enumerate(templates):
        if isinstance(entry, str):
            sql, frequency = entry, 1.0
        else:
            sql, frequency = entry
        queries.append(
            parse_template(
                schema, sql, query_id=position, frequency=frequency
            )
        )
    return Workload(schema, queries)
