"""Workload drift: sequences of gradually changing workloads.

Section VII of the paper names stochastic, time-changing workloads as the
key future-work scenario: "to react to changing workloads, the model has
to adapt the index selection successively", with reconfiguration costs
deciding whether reorganizing pays off.  This module generates such
scenarios deterministically:

* **frequency drift** — query frequencies random-walk multiplicatively
  (hot templates cool down, cold ones heat up),
* **template churn** — a fraction of templates is replaced by fresh
  templates on the same table each epoch (new application features,
  changed reports).

The schema is held fixed; only the workload moves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import WorkloadError
from repro.workload.query import Query, Workload

__all__ = ["DriftConfig", "drifting_workloads"]


@dataclass(frozen=True)
class DriftConfig:
    """Parameters of the drift process.

    Attributes
    ----------
    epochs:
        Number of workload snapshots to produce (including the base
        workload as epoch 0).
    frequency_volatility:
        Standard deviation of the per-epoch log-normal factor applied to
        each query frequency (0 = frequencies never change).
    churn_rate:
        Fraction of query templates replaced per epoch (0 = the template
        set never changes).
    seed:
        Seed for the drift process.
    """

    epochs: int = 10
    frequency_volatility: float = 0.3
    churn_rate: float = 0.1
    seed: int = 2019

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise WorkloadError(f"need >= 1 epoch, got {self.epochs}")
        if self.frequency_volatility < 0:
            raise WorkloadError(
                "frequency_volatility must be >= 0, got "
                f"{self.frequency_volatility}"
            )
        if not 0 <= self.churn_rate <= 1:
            raise WorkloadError(
                f"churn_rate must be within [0, 1], got {self.churn_rate}"
            )


def _churned_query(
    rng: np.random.Generator, workload: Workload, old: Query
) -> Query:
    """A fresh template on the same table as ``old``."""
    table = workload.schema.table(old.table_name)
    width = int(rng.integers(1, min(len(table.attributes), 4) + 1))
    positions = rng.choice(
        len(table.attributes), size=width, replace=False
    )
    attributes = frozenset(
        table.attributes[int(position)].id for position in positions
    )
    frequency = float(rng.integers(1, 10_000))
    return Query(old.query_id, old.table_name, attributes, frequency)


def drifting_workloads(
    base: Workload, config: DriftConfig | None = None
) -> list[Workload]:
    """Generate an epoch sequence starting from ``base``.

    Epoch 0 is ``base`` itself; each following epoch applies frequency
    drift and template churn to its predecessor.  Deterministic for a
    fixed config.
    """
    if config is None:
        config = DriftConfig()
    rng = np.random.default_rng(config.seed)
    snapshots = [base]
    current = list(base.queries)
    for _ in range(1, config.epochs):
        drifted: list[Query] = []
        for query in current:
            if rng.uniform() < config.churn_rate:
                drifted.append(_churned_query(rng, base, query))
                continue
            factor = float(
                np.exp(rng.normal(0.0, config.frequency_volatility))
            )
            drifted.append(
                Query(
                    query.query_id,
                    query.table_name,
                    query.attributes,
                    max(query.frequency * factor, 1.0),
                )
            )
        current = drifted
        snapshots.append(Workload(base.schema, drifted))
    return snapshots
