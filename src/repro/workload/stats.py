"""Workload statistics used throughout the paper.

Collects the aggregate quantities of Appendix A's notation table:

* ``g_i`` — number of (frequency-weighted) occurrences of attribute ``i``,
* ``q̄``  — average number of attributes accessed per query,
* co-access counts of attribute *combinations*, which drive the candidate
  heuristics H1-M/H2-M/H3-M of Example 1 (iv).

All statistics are computed once and cached; workloads are immutable.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from typing import Iterable, Mapping

from repro.workload.query import Workload

__all__ = ["WorkloadStatistics"]


class WorkloadStatistics:
    """Aggregate statistics of a workload.

    Parameters
    ----------
    workload:
        The workload to summarize.
    max_combination_width:
        Largest attribute-combination size for which co-access frequencies
        are tabulated (the paper's candidate heuristics use ``m = 1..4``).
    """

    def __init__(
        self, workload: Workload, max_combination_width: int = 4
    ) -> None:
        if max_combination_width < 1:
            raise ValueError(
                "max_combination_width must be >= 1, got "
                f"{max_combination_width}"
            )
        self._workload = workload
        self._max_width = max_combination_width
        self._occurrences: Counter[int] = Counter()
        self._combination_occurrences: dict[int, Counter[frozenset[int]]] = {
            width: Counter() for width in range(1, max_combination_width + 1)
        }
        for query in workload:
            for attribute_id in query.attributes:
                self._occurrences[attribute_id] += query.frequency
            sorted_attributes = sorted(query.attributes)
            for width in range(
                1, min(max_combination_width, len(sorted_attributes)) + 1
            ):
                for combo in combinations(sorted_attributes, width):
                    self._combination_occurrences[width][
                        frozenset(combo)
                    ] += query.frequency

    # ------------------------------------------------------------------
    # Scalar aggregates
    # ------------------------------------------------------------------

    @property
    def workload(self) -> Workload:
        """The workload these statistics describe."""
        return self._workload

    @property
    def max_combination_width(self) -> int:
        """Largest tabulated combination width."""
        return self._max_width

    @property
    def average_attributes_per_query(self) -> float:
        """``q̄``: mean number of attributes accessed per query template."""
        total = sum(
            query.attribute_count for query in self._workload
        )
        return total / self._workload.query_count

    @property
    def accessed_attribute_ids(self) -> frozenset[int]:
        """All attributes accessed by at least one query."""
        return frozenset(self._occurrences)

    # ------------------------------------------------------------------
    # Per-attribute quantities
    # ------------------------------------------------------------------

    def occurrences(self, attribute_id: int) -> float:
        """``g_i``: frequency-weighted occurrence count of attribute ``i``.

        Attributes never accessed have ``g_i = 0``.
        """
        return float(self._occurrences.get(attribute_id, 0))

    def occurrence_ranking(self) -> list[int]:
        """Attribute ids sorted by descending ``g_i`` (ties by id)."""
        return sorted(
            self._occurrences,
            key=lambda attribute_id: (
                -self._occurrences[attribute_id],
                attribute_id,
            ),
        )

    # ------------------------------------------------------------------
    # Attribute combinations (for H1-M/H2-M/H3-M candidate heuristics)
    # ------------------------------------------------------------------

    def combination_occurrences(
        self, width: int
    ) -> Mapping[frozenset[int], float]:
        """Frequency-weighted co-access counts of ``width``-combinations.

        A combination counts for a query if all of its attributes appear in
        the query's attribute set (``{i_1,...,i_m} ⊆ q_j``), weighted by
        ``b_j`` — exactly the ranking quantity of heuristic H1-M.
        """
        if width < 1 or width > self._max_width:
            raise ValueError(
                f"width must be in [1, {self._max_width}], got {width}"
            )
        return dict(self._combination_occurrences[width])

    def accessed_combinations(
        self, width: int
    ) -> frozenset[frozenset[int]]:
        """All attribute combinations of ``width`` co-accessed somewhere."""
        if width < 1 or width > self._max_width:
            raise ValueError(
                f"width must be in [1, {self._max_width}], got {width}"
            )
        return frozenset(self._combination_occurrences[width])

    def combined_selectivity(self, attribute_ids: Iterable[int]) -> float:
        """Product of selectivities ``Π s_i`` of the given attributes."""
        product = 1.0
        for attribute_id in attribute_ids:
            product *= self._workload.schema.selectivity(attribute_id)
        return product

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkloadStatistics(queries={self._workload.query_count}, "
            f"q_bar={self.average_attributes_per_query:.2f})"
        )
