"""Synthetic enterprise (ERP) workload — substitute for Section IV-A.

The paper evaluates against the proprietary workload of a productive
Fortune Global 500 ERP system: the largest 500 tables with 4 204 relevant
attributes, between ~350 000 and ~1.5 billion rows per table, 2 271 query
templates with more than 50 million executions, "mostly transactional with
a majority of point-access queries but also ... few analytical queries".

That trace is not publicly available, so this module generates a seeded
synthetic workload that reproduces the published aggregate statistics:

* exact table / attribute / template counts (configurable),
* log-uniform table sizes spanning the published row-count range,
* long-tail attributes-per-table distribution (ERP tables are wide but
  most relevant attributes concentrate on a few hot tables),
* Zipf-skewed table and attribute popularity — some attributes are
  co-accessed very often, which is exactly the index-interaction structure
  Section IV-A highlights,
* a point-access-dominated template mix (~80 % of templates touch 1–3
  attributes) with a small analytical tail (up to 12 attributes),
* heavy-tailed template frequencies scaled to the published ~50 million
  total executions.

Because Fig. 4 consumes the workload only through the analytic cost model,
matching these distributional characteristics exercises the same code
paths as the original trace (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import WorkloadError
from repro.workload.query import Query, Workload
from repro.workload.schema import Schema

__all__ = ["EnterpriseConfig", "generate_enterprise_workload"]


@dataclass(frozen=True)
class EnterpriseConfig:
    """Parameters of the synthetic ERP workload.

    Defaults reproduce the aggregate numbers published in Section IV-A.
    ``scale`` shrinks tables / attributes / templates proportionally for
    tests and CI benchmarks (1.0 = paper scale).
    """

    tables: int = 500
    total_attributes: int = 4_204
    query_templates: int = 2_271
    total_executions: float = 50_000_000.0
    min_rows: int = 350_000
    max_rows: int = 1_500_000_000
    point_access_share: float = 0.80
    medium_share: float = 0.15
    table_popularity_skew: float = 1.2
    attribute_popularity_skew: float = 1.1
    seed: int = 500  # Fortune Global 500
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.scale > 1:
            raise WorkloadError(f"scale must be in (0, 1], got {self.scale}")
        if self.tables < 1 or self.total_attributes < self.tables:
            raise WorkloadError(
                "need at least one attribute per table: "
                f"tables={self.tables}, attributes={self.total_attributes}"
            )
        if self.query_templates < 1:
            raise WorkloadError(
                f"need >= 1 query template, got {self.query_templates}"
            )
        if self.min_rows < 1 or self.max_rows < self.min_rows:
            raise WorkloadError(
                f"invalid row range [{self.min_rows}, {self.max_rows}]"
            )
        if not 0 <= self.point_access_share <= 1:
            raise WorkloadError("point_access_share must be within [0, 1]")
        if not 0 <= self.medium_share <= 1 - self.point_access_share:
            raise WorkloadError(
                "medium_share must leave room for the analytical tail"
            )

    @property
    def scaled_tables(self) -> int:
        """Number of tables after applying ``scale``."""
        return max(int(round(self.tables * self.scale)), 1)

    @property
    def scaled_attributes(self) -> int:
        """Total attributes after applying ``scale``."""
        return max(
            int(round(self.total_attributes * self.scale)),
            self.scaled_tables,
        )

    @property
    def scaled_templates(self) -> int:
        """Query templates after applying ``scale``."""
        return max(int(round(self.query_templates * self.scale)), 1)


def _attributes_per_table(
    rng: np.random.Generator, tables: int, total_attributes: int
) -> list[int]:
    """Long-tail split of ``total_attributes`` over ``tables`` tables.

    Draws lognormal weights (a few wide "document header/item" style
    tables, many narrow ones), then distributes the exact total by largest
    remainder so the published attribute count is matched precisely.
    """
    weights = rng.lognormal(mean=0.0, sigma=0.9, size=tables)
    weights /= weights.sum()
    raw = weights * (total_attributes - tables)
    base = np.floor(raw).astype(int)
    remainder = total_attributes - tables - int(base.sum())
    order = np.argsort(-(raw - base))
    for position in range(remainder):
        base[order[position % tables]] += 1
    return [int(count) + 1 for count in base]  # >= 1 attribute each


def _zipf_weights(count: int, skew: float) -> np.ndarray:
    """Normalized Zipf weights ``rank^-skew`` for ``count`` items."""
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def generate_enterprise_workload(
    config: EnterpriseConfig | None = None,
) -> Workload:
    """Generate the synthetic ERP schema and workload.

    Deterministic for a fixed :class:`EnterpriseConfig`.  At the default
    (paper) scale the result has 500 tables, 4 204 attributes, and 2 271
    query templates whose frequencies sum to roughly 50 million.
    """
    if config is None:
        config = EnterpriseConfig()
    rng = np.random.default_rng(config.seed)
    tables = config.scaled_tables
    total_attributes = config.scaled_attributes
    templates = config.scaled_templates

    attribute_counts = _attributes_per_table(rng, tables, total_attributes)

    # Log-uniform row counts spanning the published range; ERP "largest 500
    # tables by memory" skews big, so sort descending to make table 1 hot
    # *and* large, as in the original system.
    log_low = np.log10(config.min_rows)
    log_high = np.log10(config.max_rows)
    rows = np.sort(
        10 ** rng.uniform(log_low, log_high, size=tables)
    )[::-1].astype(np.int64)

    table_specs: dict[str, tuple[int, list[tuple[str, int, int]]]] = {}
    for table_index in range(tables):
        row_count = int(rows[table_index])
        columns: list[tuple[str, int, int]] = []
        for position in range(attribute_counts[table_index]):
            # Leading attributes (client, document number, ...) have high
            # cardinality; the tail holds low-cardinality flags and types.
            exponent = rng.uniform(0.05, 1.0) * (
                1.0 - 0.6 * position / max(attribute_counts[table_index], 1)
            )
            distinct = int(min(max(row_count**exponent, 1.0), row_count))
            value_size = int(rng.choice([2, 4, 4, 8, 8, 16, 32]))
            columns.append((f"A{position:03d}", distinct, value_size))
        table_specs[f"ERP{table_index:03d}"] = (row_count, columns)
    schema = Schema.build(table_specs)

    table_weights = _zipf_weights(tables, config.table_popularity_skew)
    template_tables = rng.choice(tables, size=templates, p=table_weights)

    # Heavy-tailed frequencies: a few templates dominate executions.
    raw_frequencies = rng.pareto(1.3, size=templates) + 1.0
    frequencies = raw_frequencies / raw_frequencies.sum()
    frequencies = frequencies * config.total_executions * config.scale

    queries: list[Query] = []
    for template_index in range(templates):
        table_index = int(template_tables[template_index])
        table_name = f"ERP{table_index:03d}"
        attributes = schema.attributes_of_table(table_name)
        width = len(attributes)

        shape_draw = rng.uniform()
        if shape_draw < config.point_access_share:
            accessed = rng.integers(1, min(3, width) + 1)
        elif shape_draw < config.point_access_share + config.medium_share:
            accessed = rng.integers(min(3, width), min(6, width) + 1)
        else:
            accessed = rng.integers(min(6, width), min(12, width) + 1)
        accessed = int(min(max(accessed, 1), width))

        attribute_weights = _zipf_weights(
            width, config.attribute_popularity_skew
        )
        chosen_positions = rng.choice(
            width, size=accessed, replace=False, p=attribute_weights
        )
        attribute_ids = frozenset(
            attributes[int(position)].id for position in chosen_positions
        )
        queries.append(
            Query(
                query_id=template_index,
                table_name=table_name,
                attributes=attribute_ids,
                frequency=float(max(frequencies[template_index], 1.0)),
            )
        )
    return Workload(schema, queries)
