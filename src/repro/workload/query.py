"""Queries and workloads.

Following Section II-A of the paper, a query ``q_j`` is characterized by
the set of attributes it accesses (a subset of the global attribute ids)
plus a frequency ``b_j``; queries operate on a single table (the paper's
"w.l.o.g." assumption, which holds for the conjunctive selection templates
used in all of its experiments).  A workload is a schema together with a
sequence of queries.

The paper notes that "a query ``q_j`` can be of various type, such as a
selection, join, insert, update" — :class:`QueryKind` models the types
with distinct cost behaviour: SELECTs benefit from indexes, UPDATEs pay
maintenance on every index covering a written attribute, INSERTs pay
maintenance on every index of the table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.exceptions import WorkloadError
from repro.workload.schema import Schema

__all__ = ["Query", "QueryKind", "Workload"]


class QueryKind(enum.Enum):
    """How a query interacts with indexes."""

    # Members are singletons and compare by identity, so the identity
    # hash is consistent with equality — and C-speed.  Cost-model cache
    # keys embed the kind, making its hash a hot operation.
    __hash__ = object.__hash__

    SELECT = "select"
    """Reads rows; indexes can only help."""

    UPDATE = "update"
    """Locates rows by its attributes (indexes help) and rewrites those
    attributes (every index containing one of them pays maintenance)."""

    INSERT = "insert"
    """Appends rows; every index of the table pays maintenance and no
    index helps."""


@dataclass(frozen=True)
class Query:
    """A conjunctive query template.

    Attributes
    ----------
    query_id:
        Identifier, unique within a workload (0-based).
    table_name:
        The table the query reads.
    attributes:
        Global ids of the attributes accessed by the query (``q_j``).
        For UPDATEs these are both the locating predicate and the
        written attributes (a deliberate simplification — see
        DESIGN.md §3).
    frequency:
        Number of occurrences ``b_j`` (a positive weight).
    kind:
        The query type; defaults to SELECT.
    """

    query_id: int
    table_name: str
    attributes: frozenset[int]
    frequency: float
    kind: QueryKind = field(default=QueryKind.SELECT)

    def __post_init__(self) -> None:
        if not self.attributes:
            raise WorkloadError(
                f"query {self.query_id} accesses no attributes"
            )
        if self.frequency <= 0:
            raise WorkloadError(
                f"query {self.query_id} needs a positive frequency, got "
                f"{self.frequency}"
            )
        # Content identity for cost caching: costs depend on the table,
        # the attribute set, and the kind — never on query_id or
        # frequency.  Precomputed once so the what-if facade's per-pair
        # key construction is a plain attribute read.
        object.__setattr__(
            self,
            "cache_key",
            (self.table_name, self.attributes, self.kind),
        )

    def __hash__(self) -> int:
        # Same field tuple the generated dataclass hash would use, but
        # cached: queries are hashed once per (query, index) pair in the
        # batched pricing paths, where recomputation dominates.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((
                self.query_id,
                self.table_name,
                self.attributes,
                self.frequency,
                self.kind,
            ))
            object.__setattr__(self, "_hash", value)
            return value

    @property
    def attribute_count(self) -> int:
        """Number of distinct attributes accessed, ``|q_j|``."""
        return len(self.attributes)

    @property
    def is_select(self) -> bool:
        """Whether this is a read-only query."""
        return self.kind is QueryKind.SELECT

    def accesses(self, attribute_id: int) -> bool:
        """Whether this query accesses the given attribute."""
        return attribute_id in self.attributes


class Workload:
    """A schema plus the queries executed against it.

    The workload validates on construction that every query references
    attributes of exactly its own table, so downstream code (cost models,
    candidate generators, solvers) can rely on this invariant.
    """

    def __init__(self, schema: Schema, queries: Iterable[Query]) -> None:
        self._schema = schema
        self._queries = tuple(queries)
        if not self._queries:
            raise WorkloadError("a workload needs at least one query")
        seen_ids: set[int] = set()
        for query in self._queries:
            if query.query_id in seen_ids:
                raise WorkloadError(
                    f"duplicate query id {query.query_id}"
                )
            seen_ids.add(query.query_id)
            if not schema.has_table(query.table_name):
                raise WorkloadError(
                    f"query {query.query_id} references unknown table "
                    f"{query.table_name!r}"
                )
            table_attribute_ids = {
                attribute.id
                for attribute in schema.attributes_of_table(query.table_name)
            }
            foreign = query.attributes - table_attribute_ids
            if foreign:
                raise WorkloadError(
                    f"query {query.query_id} on table "
                    f"{query.table_name!r} references attributes "
                    f"{sorted(foreign)} outside that table"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_attribute_sets(
        cls,
        schema: Schema,
        query_specs: Sequence[tuple[str, Iterable[int], float]],
    ) -> "Workload":
        """Build a workload from ``(table, attribute_ids, frequency)``.

        Query ids are assigned sequentially in the given order.
        """
        queries = [
            Query(
                query_id=query_id,
                table_name=table_name,
                attributes=frozenset(attribute_ids),
                frequency=frequency,
            )
            for query_id, (table_name, attribute_ids, frequency) in enumerate(
                query_specs
            )
        ]
        return cls(schema, queries)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The schema the workload runs against."""
        return self._schema

    @property
    def queries(self) -> tuple[Query, ...]:
        """All queries, in definition order."""
        return self._queries

    @property
    def query_count(self) -> int:
        """Number of query templates ``Q``."""
        return len(self._queries)

    def query(self, query_id: int) -> Query:
        """Return the query with the given id."""
        for candidate in self._queries:
            if candidate.query_id == query_id:
                return candidate
        raise WorkloadError(f"unknown query id {query_id}")

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def __len__(self) -> int:
        return len(self._queries)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def queries_of_table(self, table_name: str) -> tuple[Query, ...]:
        """All queries that read the named table."""
        return tuple(
            query for query in self._queries
            if query.table_name == table_name
        )

    def queries_accessing(self, attribute_id: int) -> tuple[Query, ...]:
        """All queries whose attribute set contains ``attribute_id``."""
        return tuple(
            query for query in self._queries
            if attribute_id in query.attributes
        )

    def total_frequency(self) -> float:
        """Sum of all query frequencies (total executions)."""
        return sum(query.frequency for query in self._queries)

    def filter(self, predicate: Callable[[Query], bool]) -> "Workload":
        """A new workload containing only queries matching ``predicate``."""
        kept = [query for query in self._queries if predicate(query)]
        if not kept:
            raise WorkloadError("filter removed every query")
        return Workload(self._schema, kept)

    def scaled(self, factor: float) -> "Workload":
        """A new workload with all frequencies multiplied by ``factor``."""
        if factor <= 0:
            raise WorkloadError(f"scale factor must be > 0, got {factor}")
        scaled_queries = [
            Query(
                query_id=query.query_id,
                table_name=query.table_name,
                attributes=query.attributes,
                frequency=query.frequency * factor,
                kind=query.kind,
            )
            for query in self._queries
        ]
        return Workload(self._schema, scaled_queries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workload(queries={self.query_count}, "
            f"tables={self._schema.table_count}, "
            f"attributes={self._schema.attribute_count})"
        )
