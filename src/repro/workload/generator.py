"""Reproducible synthetic workload generator (paper Appendix C).

Implements the randomized workload of Example 1 exactly as specified:

.. code-block:: text

    T        = 10
    N_t      = 50                                   t = 1..T
    Q_t      = N_t                                  t = 1..T
    n_t      = t * 1_000_000                        t = 1..T
    d_{t,i}  = round(U(0.5, n_t * ((N_t - i + 1) / (N_t + 1))^0.2))
    Z_{t,j}  = round(U(0.5, 10.5))                  j = 1..Q_t
    q_{t,j}  = ∪_{k=1..Z_{t,j}} { round(U(1, N_t^(1/0.3))^0.3) }
    b_{t,j}  = round(U(1, 10_000))                  j = 1..Q_t

Attribute positions drawn through the ``(·)^0.3`` transform are skewed
toward *high* positions (most of ``U(1, N^{1/0.3})``'s mass maps near
``N``), while the distinct-count bound decays with the position: the
hottest attributes are also the least selective.  This tension between
access frequency and selectivity is what separates the candidate
heuristics (H1-M vs H2-M/H3-M) in the paper's Fig. 2.

The paper leaves the value sizes ``a_i`` unspecified (they appear only in
the cost model); we draw them uniformly from a configurable byte range
using the same seeded stream, defaulting to 1–8 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import WorkloadError
from repro.workload.query import Query, Workload
from repro.workload.schema import Schema

__all__ = ["GeneratorConfig", "generate_workload", "round_half_up"]

_ROWS_PER_TABLE_STEP = 1_000_000


def round_half_up(value: float) -> int:
    """Round to the nearest integer with halves going up.

    Python's built-in ``round`` uses banker's rounding, which would turn
    the specification's ``round(U(0.5, ...))`` lower edge into 0; the paper
    clearly intends the conventional rounding where 0.5 maps to 1.
    """
    return int(np.floor(value + 0.5))


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the Appendix C workload generator.

    The defaults reproduce the paper's setting.  ``queries_per_table``
    defaults to ``attributes_per_table`` (the paper's ``Q_t = N_t``); the
    scalability experiments of Table I vary it between 50 and 5 000.
    """

    tables: int = 10
    attributes_per_table: int = 50
    queries_per_table: int | None = None
    rows_step: int = _ROWS_PER_TABLE_STEP
    max_query_attributes: int = 10
    max_frequency: int = 10_000
    value_size_range: tuple[int, int] = (1, 8)
    seed: int = 1909  # ICDE 2019 :-)

    def __post_init__(self) -> None:
        if self.tables < 1:
            raise WorkloadError(f"need >= 1 table, got {self.tables}")
        if self.attributes_per_table < 1:
            raise WorkloadError(
                f"need >= 1 attribute per table, got "
                f"{self.attributes_per_table}"
            )
        if self.queries_per_table is not None and self.queries_per_table < 1:
            raise WorkloadError(
                f"need >= 1 query per table, got {self.queries_per_table}"
            )
        if self.rows_step < 1:
            raise WorkloadError(f"rows_step must be >= 1, got {self.rows_step}")
        if self.max_query_attributes < 1:
            raise WorkloadError(
                "max_query_attributes must be >= 1, got "
                f"{self.max_query_attributes}"
            )
        if self.max_frequency < 1:
            raise WorkloadError(
                f"max_frequency must be >= 1, got {self.max_frequency}"
            )
        low, high = self.value_size_range
        if low < 1 or high < low:
            raise WorkloadError(
                f"invalid value_size_range {self.value_size_range}"
            )

    @property
    def effective_queries_per_table(self) -> int:
        """``Q_t``, defaulting to ``N_t`` per the paper."""
        if self.queries_per_table is None:
            return self.attributes_per_table
        return self.queries_per_table

    @property
    def total_queries(self) -> int:
        """``Σ_t Q_t`` across all tables."""
        return self.tables * self.effective_queries_per_table

    @property
    def total_attributes(self) -> int:
        """``Σ_t N_t`` across all tables."""
        return self.tables * self.attributes_per_table


def _draw_distinct_counts(
    rng: np.random.Generator, rows: int, attribute_count: int
) -> list[int]:
    """Distinct counts ``d_{t,i}`` per Appendix C, clipped to ``[1, n]``."""
    counts: list[int] = []
    for position in range(1, attribute_count + 1):
        upper = rows * (
            (attribute_count - position + 1) / (attribute_count + 1)
        ) ** 0.2
        drawn = round_half_up(rng.uniform(0.5, max(upper, 0.5)))
        counts.append(int(min(max(drawn, 1), rows)))
    return counts


def _draw_query_attributes(
    rng: np.random.Generator,
    attribute_count: int,
    max_query_attributes: int,
) -> frozenset[int]:
    """One query's attribute positions (1-based) per Appendix C.

    Draws ``Z`` positions with the skewed ``U(1, N^(1/0.3))^0.3`` transform
    and returns their union, so the effective number of distinct attributes
    is usually below ``Z``.
    """
    z = round_half_up(rng.uniform(0.5, max_query_attributes + 0.5))
    z = min(max(z, 1), max_query_attributes)
    upper = attribute_count ** (1.0 / 0.3)
    positions: set[int] = set()
    for _ in range(z):
        position = round_half_up(rng.uniform(1.0, upper) ** 0.3)
        positions.add(int(min(max(position, 1), attribute_count)))
    return frozenset(positions)


def generate_workload(config: GeneratorConfig | None = None) -> Workload:
    """Generate the reproducible synthetic workload of Example 1.

    The result is deterministic for a fixed :class:`GeneratorConfig`
    (including its seed): the same schema, queries, and frequencies are
    produced on every call, which is what makes the paper's scalability
    experiments reproducible.

    Returns
    -------
    Workload
        ``config.tables`` tables of ``config.attributes_per_table``
        attributes each, with ``config.effective_queries_per_table``
        queries per table.
    """
    if config is None:
        config = GeneratorConfig()
    rng = np.random.default_rng(config.seed)
    size_low, size_high = config.value_size_range

    table_specs: dict[str, tuple[int, list[tuple[str, int, int]]]] = {}
    for table_number in range(1, config.tables + 1):
        rows = table_number * config.rows_step
        distinct_counts = _draw_distinct_counts(
            rng, rows, config.attributes_per_table
        )
        columns = [
            (
                f"C{position:03d}",
                distinct_counts[position - 1],
                int(rng.integers(size_low, size_high + 1)),
            )
            for position in range(1, config.attributes_per_table + 1)
        ]
        table_specs[f"T{table_number:02d}"] = (rows, columns)
    schema = Schema.build(table_specs)

    queries: list[Query] = []
    query_id = 0
    for table_number in range(1, config.tables + 1):
        table_name = f"T{table_number:02d}"
        table_attributes = schema.attributes_of_table(table_name)
        for _ in range(config.effective_queries_per_table):
            positions = _draw_query_attributes(
                rng,
                config.attributes_per_table,
                config.max_query_attributes,
            )
            attribute_ids = frozenset(
                table_attributes[position - 1].id for position in positions
            )
            frequency = round_half_up(
                rng.uniform(1.0, float(config.max_frequency))
            )
            queries.append(
                Query(
                    query_id=query_id,
                    table_name=table_name,
                    attributes=attribute_ids,
                    frequency=float(max(frequency, 1)),
                )
            )
            query_id += 1
    return Workload(schema, queries)
