"""TPC-C workload used by the paper's worked example (Fig. 1).

The paper aggregates the distinct conjunctive selections of all TPC-C
transactions into roughly ten query templates over the TPC-C tables and
uses them to illustrate Algorithm 1's construction steps.  This module
reconstructs that workload from the TPC-C specification: the schema with
its standard cardinalities (parameterized by the warehouse count) and the
conjunctive attribute-access templates of the five transactions, weighted
by the standard transaction mix (45 % New-Order, 43 % Payment, 4 % each
Order-Status, Delivery, Stock-Level).
"""

from __future__ import annotations

from repro.exceptions import WorkloadError
from repro.workload.query import Workload
from repro.workload.schema import Schema

__all__ = ["tpcc_schema", "tpcc_workload"]

_ITEMS = 100_000
_CUSTOMERS_PER_DISTRICT = 3_000
_DISTRICTS_PER_WAREHOUSE = 10


def tpcc_schema(warehouses: int = 10) -> Schema:
    """The TPC-C schema restricted to the attributes the workload touches.

    Cardinalities follow the TPC-C specification for ``warehouses``
    warehouses.  Value sizes: 4 bytes for numeric ids and quantities,
    16 bytes for the ``C_LAST`` string column.
    """
    if warehouses < 1:
        raise WorkloadError(f"need >= 1 warehouse, got {warehouses}")
    w = warehouses
    districts = _DISTRICTS_PER_WAREHOUSE * w
    customers = _CUSTOMERS_PER_DISTRICT * districts
    orders = customers  # one initial order per customer
    new_orders = max(orders * 9 // 30, 1)
    order_lines = orders * 10  # ~10 lines per order
    stock = _ITEMS * w
    return Schema.build(
        {
            "WAREHOUSE": (w, [("W_ID", w, 4)]),
            "DISTRICT": (
                districts,
                [("D_W_ID", w, 4), ("D_ID", _DISTRICTS_PER_WAREHOUSE, 4)],
            ),
            "CUSTOMER": (
                customers,
                [
                    ("C_W_ID", w, 4),
                    ("C_D_ID", _DISTRICTS_PER_WAREHOUSE, 4),
                    ("C_ID", _CUSTOMERS_PER_DISTRICT, 4),
                    ("C_LAST", 1_000, 16),
                ],
            ),
            "ITEM": (_ITEMS, [("I_ID", _ITEMS, 4)]),
            "STOCK": (
                stock,
                [
                    ("S_W_ID", w, 4),
                    ("S_I_ID", _ITEMS, 4),
                    ("S_QUANTITY", 91, 4),
                ],
            ),
            "ORDERS": (
                orders,
                [
                    ("O_W_ID", w, 4),
                    ("O_D_ID", _DISTRICTS_PER_WAREHOUSE, 4),
                    ("O_ID", _CUSTOMERS_PER_DISTRICT, 4),
                    ("O_C_ID", _CUSTOMERS_PER_DISTRICT, 4),
                ],
            ),
            "NEW_ORDER": (
                new_orders,
                [
                    ("NO_W_ID", w, 4),
                    ("NO_D_ID", _DISTRICTS_PER_WAREHOUSE, 4),
                    ("NO_O_ID", min(900, new_orders), 4),
                ],
            ),
            "ORDER_LINE": (
                order_lines,
                [
                    ("OL_W_ID", w, 4),
                    ("OL_D_ID", _DISTRICTS_PER_WAREHOUSE, 4),
                    ("OL_O_ID", _CUSTOMERS_PER_DISTRICT, 4),
                ],
            ),
        }
    )


def tpcc_workload(
    warehouses: int = 10, transactions: int = 100_000
) -> Workload:
    """The aggregated conjunctive-selection templates of TPC-C (Fig. 1).

    Frequencies are the expected number of template evaluations when
    executing ``transactions`` transactions under the standard mix,
    accounting for per-transaction loop counts (e.g. New-Order probes
    ``ITEM`` and ``STOCK`` about ten times per transaction, Stock-Level
    examines the last 20 orders' lines).
    """
    if transactions < 1:
        raise WorkloadError(
            f"need >= 1 transaction, got {transactions}"
        )
    schema = tpcc_schema(warehouses)

    def attrs(table: str, *names: str) -> tuple[str, list[int], float]:
        table_object = schema.table(table)
        return (
            table,
            [table_object.attribute_by_name(name).id for name in names],
            0.0,  # frequency filled below
        )

    new_order = 0.45 * transactions
    payment = 0.43 * transactions
    order_status = 0.04 * transactions
    delivery = 0.04 * transactions
    stock_level = 0.04 * transactions

    templates: list[tuple[tuple[str, list[int], float], float]] = [
        # q1: Stock-Level low-stock probe.
        (
            attrs("STOCK", "S_W_ID", "S_I_ID", "S_QUANTITY"),
            stock_level * 20,
        ),
        # q2: Delivery reads the order by (W, D, O_ID).
        (attrs("ORDERS", "O_W_ID", "O_D_ID", "O_ID"), delivery * 10),
        # q3: Payment / New-Order customer lookup by id.
        (
            attrs("CUSTOMER", "C_W_ID", "C_D_ID", "C_ID"),
            new_order + 0.6 * payment + 0.6 * order_status + delivery * 10,
        ),
        # q4: Delivery pops the oldest new order per district.
        (
            attrs("NEW_ORDER", "NO_W_ID", "NO_D_ID", "NO_O_ID"),
            delivery * 10,
        ),
        # q5: New-Order stock probe.
        (attrs("STOCK", "S_W_ID", "S_I_ID"), new_order * 10),
        # q6: Order-Status / Delivery / Stock-Level order-line scans.
        (
            attrs("ORDER_LINE", "OL_W_ID", "OL_D_ID", "OL_O_ID"),
            order_status + delivery * 10 + stock_level * 20,
        ),
        # q7: New-Order item lookups.
        (attrs("ITEM", "I_ID"), new_order * 10),
        # q8: New-Order / Payment warehouse lookup.
        (attrs("WAREHOUSE", "W_ID"), new_order + payment),
        # q9: Order-Status finds the customer's latest order.
        (attrs("ORDERS", "O_W_ID", "O_D_ID", "O_C_ID"), order_status),
        # q10: New-Order / Payment / Stock-Level district lookup.
        (
            attrs("DISTRICT", "D_W_ID", "D_ID"),
            new_order + payment + stock_level,
        ),
        # q11: Payment / Order-Status customer lookup by last name.
        (
            attrs("CUSTOMER", "C_W_ID", "C_D_ID", "C_LAST"),
            0.4 * payment + 0.4 * order_status,
        ),
    ]
    query_specs = [
        (table, attribute_ids, max(frequency, 1.0))
        for (table, attribute_ids, _), frequency in templates
    ]
    return Workload.from_attribute_sets(schema, query_specs)
