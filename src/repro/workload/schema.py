"""Schema model: attributes, tables, and whole-database schemas.

The paper (Section II-A and Appendix A) characterizes a database by

* ``N`` attributes, globally numbered,
* per attribute ``i``: the number of distinct values ``d_i``, the value
  size ``a_i`` in bytes, and the selectivity ``s_i = 1 / d_i``,
* per table: the row count ``n`` shared by all attributes of the table.

This module provides immutable value objects for these concepts.  Attribute
identifiers are global (unique across the whole schema), matching the
paper's notation where queries are subsets of ``{1, ..., N}``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.exceptions import SchemaError

__all__ = ["Attribute", "Table", "Schema"]


@dataclass(frozen=True)
class Attribute:
    """A single table attribute (column) with its statistics.

    Attributes
    ----------
    id:
        Global identifier, unique across the schema (0-based).
    name:
        Column name, unique within its table.
    table_name:
        Name of the owning table.
    position:
        0-based position of the column within its table.
    distinct_values:
        Number of distinct values ``d_i`` (at least 1).
    value_size:
        Size of one value in bytes, ``a_i`` (at least 1).
    """

    id: int
    name: str
    table_name: str
    position: int
    distinct_values: int
    value_size: int

    def __post_init__(self) -> None:
        if self.id < 0:
            raise SchemaError(f"attribute id must be >= 0, got {self.id}")
        if self.distinct_values < 1:
            raise SchemaError(
                f"attribute {self.qualified_name} needs >= 1 distinct "
                f"values, got {self.distinct_values}"
            )
        if self.value_size < 1:
            raise SchemaError(
                f"attribute {self.qualified_name} needs a positive value "
                f"size, got {self.value_size}"
            )

    @property
    def qualified_name(self) -> str:
        """``table.column`` notation, e.g. ``"STOCK.W_ID"``."""
        return f"{self.table_name}.{self.name}"

    @property
    def selectivity(self) -> float:
        """Selectivity ``s_i = 1 / d_i`` of an equality predicate."""
        return 1.0 / self.distinct_values


@dataclass(frozen=True)
class Table:
    """A table: a name, a row count, and an ordered tuple of attributes."""

    name: str
    row_count: int
    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        if self.row_count < 1:
            raise SchemaError(
                f"table {self.name!r} needs >= 1 row, got {self.row_count}"
            )
        if not self.attributes:
            raise SchemaError(f"table {self.name!r} has no attributes")
        seen_names: set[str] = set()
        for position, attribute in enumerate(self.attributes):
            if attribute.table_name != self.name:
                raise SchemaError(
                    f"attribute {attribute.qualified_name} does not belong "
                    f"to table {self.name!r}"
                )
            if attribute.position != position:
                raise SchemaError(
                    f"attribute {attribute.qualified_name} has position "
                    f"{attribute.position}, expected {position}"
                )
            if attribute.name in seen_names:
                raise SchemaError(
                    f"duplicate attribute name {attribute.name!r} in table "
                    f"{self.name!r}"
                )
            seen_names.add(attribute.name)
            if attribute.distinct_values > self.row_count:
                raise SchemaError(
                    f"attribute {attribute.qualified_name} has more "
                    f"distinct values ({attribute.distinct_values}) than "
                    f"the table has rows ({self.row_count})"
                )

    @property
    def attribute_count(self) -> int:
        """Number of attributes ``N_t`` of this table."""
        return len(self.attributes)

    @property
    def width_bytes(self) -> int:
        """Total bytes per row across all attributes."""
        return sum(attribute.value_size for attribute in self.attributes)

    def attribute_by_name(self, name: str) -> Attribute:
        """Return the attribute called ``name`` or raise ``SchemaError``."""
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise SchemaError(f"table {self.name!r} has no attribute {name!r}")


class Schema:
    """An immutable collection of tables with global attribute numbering.

    The schema is the single source of truth for attribute statistics: cost
    models, candidate generators, and the execution engine all resolve
    attribute identifiers through it.

    Parameters
    ----------
    tables:
        The tables of the database.  Attribute ids must be globally unique
        and are usually assigned by :meth:`Schema.build`.
    """

    def __init__(self, tables: Iterable[Table]) -> None:
        self._tables: dict[str, Table] = {}
        self._attributes: dict[int, Attribute] = {}
        for table in tables:
            if table.name in self._tables:
                raise SchemaError(f"duplicate table name {table.name!r}")
            self._tables[table.name] = table
            for attribute in table.attributes:
                if attribute.id in self._attributes:
                    raise SchemaError(
                        f"duplicate attribute id {attribute.id} "
                        f"({attribute.qualified_name} clashes with "
                        f"{self._attributes[attribute.id].qualified_name})"
                    )
                self._attributes[attribute.id] = attribute
        if not self._tables:
            raise SchemaError("a schema needs at least one table")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        table_specs: Mapping[str, tuple[int, Iterable[tuple[str, int, int]]]],
    ) -> "Schema":
        """Build a schema from a declarative specification.

        Parameters
        ----------
        table_specs:
            Maps table name to ``(row_count, columns)`` where ``columns``
            is an iterable of ``(column_name, distinct_values, value_size)``
            triples.  Global attribute ids are assigned in iteration order.

        Examples
        --------
        >>> schema = Schema.build({
        ...     "T": (1000, [("A", 100, 4), ("B", 10, 8)]),
        ... })
        >>> schema.attribute_count
        2
        """
        tables: list[Table] = []
        next_id = 0
        for table_name, (row_count, columns) in table_specs.items():
            attributes: list[Attribute] = []
            for position, (name, distinct_values, value_size) in enumerate(
                columns
            ):
                attributes.append(
                    Attribute(
                        id=next_id,
                        name=name,
                        table_name=table_name,
                        position=position,
                        distinct_values=distinct_values,
                        value_size=value_size,
                    )
                )
                next_id += 1
            tables.append(
                Table(
                    name=table_name,
                    row_count=row_count,
                    attributes=tuple(attributes),
                )
            )
        return cls(tables)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    @property
    def tables(self) -> tuple[Table, ...]:
        """All tables, in definition order."""
        return tuple(self._tables.values())

    @property
    def table_count(self) -> int:
        """Number of tables ``T``."""
        return len(self._tables)

    @property
    def attribute_count(self) -> int:
        """Total number of attributes ``N`` across all tables."""
        return len(self._attributes)

    @property
    def attribute_ids(self) -> tuple[int, ...]:
        """All global attribute ids, ascending."""
        return tuple(sorted(self._attributes))

    def table(self, name: str) -> Table:
        """Return the table called ``name`` or raise ``SchemaError``."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether a table called ``name`` exists."""
        return name in self._tables

    def attribute(self, attribute_id: int) -> Attribute:
        """Return the attribute with the given global id."""
        try:
            return self._attributes[attribute_id]
        except KeyError:
            raise SchemaError(
                f"unknown attribute id {attribute_id}"
            ) from None

    def table_of(self, attribute_id: int) -> Table:
        """Return the table owning the given attribute."""
        return self._tables[self.attribute(attribute_id).table_name]

    def row_count(self, attribute_id: int) -> int:
        """Row count ``n`` of the table owning the given attribute."""
        return self.table_of(attribute_id).row_count

    def selectivity(self, attribute_id: int) -> float:
        """Selectivity ``s_i`` of the given attribute."""
        return self.attribute(attribute_id).selectivity

    def distinct_values(self, attribute_id: int) -> int:
        """Distinct count ``d_i`` of the given attribute."""
        return self.attribute(attribute_id).distinct_values

    def value_size(self, attribute_id: int) -> int:
        """Value size ``a_i`` in bytes of the given attribute."""
        return self.attribute(attribute_id).value_size

    def iter_attributes(self) -> Iterator[Attribute]:
        """Iterate over all attributes in ascending id order."""
        for attribute_id in sorted(self._attributes):
            yield self._attributes[attribute_id]

    def attributes_of_table(self, table_name: str) -> tuple[Attribute, ...]:
        """All attributes of the named table."""
        return self.table(table_name).attributes

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    def single_attribute_index_memory_total(self) -> int:
        """Memory needed to index every attribute individually.

        This is the denominator of the paper's relative budget definition
        (Eq. 10): ``A(w) = w * sum over all single-attribute indexes p_k``.
        The per-index memory follows Appendix B(ii); see
        :mod:`repro.indexes.memory` for the authoritative implementation —
        this convenience mirrors it to avoid an import cycle.
        """
        total = 0
        for attribute in self.iter_attributes():
            n = self._tables[attribute.table_name].row_count
            position_list = math.ceil(math.ceil(math.log2(n)) * n / 8)
            total += position_list + attribute.value_size * n
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schema(tables={self.table_count}, "
            f"attributes={self.attribute_count})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.tables == other.tables

    def __hash__(self) -> int:
        return hash(self.tables)
