"""Workload compression (paper Section VI, related work).

Large workloads can be preprocessed to cut selection time.  The paper
discusses two approaches: Chaudhuri et al.'s similarity-based compression
(found "too slow" by the DB2 team because it needs optimizer calls) and
DB2's simple alternative of keeping the top-k most expensive queries.
This module implements the optimizer-free techniques:

* :func:`merge_duplicate_templates` — queries with identical table,
  attribute set, and kind are merged, summing frequencies (lossless
  under the per-template cost models used here),
* :func:`top_k_expensive` — keep the k most expensive templates by
  estimated no-index cost × frequency (the DB2 approach; needs one
  sequential-cost estimate per template, no per-index calls),
* :func:`frequency_share` — keep the fewest templates that cover a
  target share of total estimated cost.

Compression trades selection time for fidelity; the benchmarks measure
both sides of that trade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import WorkloadError
from repro.workload.query import Query, Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cost.whatif import WhatIfOptimizer

__all__ = [
    "CompressionReport",
    "merge_duplicate_templates",
    "pricing_prepass",
    "top_k_expensive",
    "frequency_share",
]


def merge_duplicate_templates(workload: Workload) -> Workload:
    """Merge templates with identical (table, attributes, kind).

    Lossless for every cost model in this repository: the workload cost
    is linear in frequencies with per-template coefficients.  Query ids
    are renumbered sequentially.
    """
    merged: dict[tuple, float] = {}
    for query in workload:
        key = (query.table_name, query.attributes, query.kind)
        merged[key] = merged.get(key, 0.0) + query.frequency
    queries = [
        Query(
            query_id=position,
            table_name=table_name,
            attributes=attributes,
            frequency=frequency,
            kind=kind,
        )
        for position, ((table_name, attributes, kind), frequency) in (
            enumerate(merged.items())
        )
    ]
    return Workload(workload.schema, queries)


@dataclass(frozen=True)
class CompressionReport:
    """What one :func:`pricing_prepass` did to a workload."""

    templates_before: int
    """Template count entering the pre-pass."""
    templates_after: int
    """Template count leaving it."""
    merged: int
    """Templates removed by duplicate merging (frequencies summed)."""
    dropped: int
    """Templates removed by the frequency-share cutoff."""

    @property
    def compression_ratio(self) -> float:
        """``templates_before / templates_after`` (1.0 = untouched)."""
        if not self.templates_after:
            return 1.0
        return self.templates_before / self.templates_after


def pricing_prepass(
    workload: Workload,
    optimizer: WhatIfOptimizer | None = None,
    *,
    merge_duplicates: bool = True,
    share: float | None = None,
) -> tuple[Workload, CompressionReport]:
    """The compression pre-pass of the enterprise pricing path.

    Shrinks the template axis before a cost-table sweep or a selection
    run: first :func:`merge_duplicate_templates` (lossless — workload
    cost is linear in frequencies), then optionally
    :func:`frequency_share` with cutoff ``share`` (lossy; needs
    ``optimizer`` for the one-sequential-estimate-per-template
    weights).  Returns the compressed workload plus a
    :class:`CompressionReport` of what happened; with both knobs off
    the workload passes through untouched.
    """
    before = workload.query_count
    merged = 0
    if merge_duplicates:
        compressed = merge_duplicate_templates(workload)
        merged = before - compressed.query_count
        workload = compressed
    dropped = 0
    if share is not None:
        if optimizer is None:
            raise WorkloadError(
                "frequency-share compression needs an optimizer for "
                "the per-template cost weights"
            )
        kept = frequency_share(workload, optimizer, share)
        dropped = workload.query_count - kept.query_count
        workload = kept
    return workload, CompressionReport(
        templates_before=before,
        templates_after=workload.query_count,
        merged=merged,
        dropped=dropped,
    )


def _estimated_weights(
    workload: Workload, optimizer: WhatIfOptimizer
) -> list[tuple[float, Query]]:
    """(estimated total cost, query) pairs, most expensive first."""
    weighted = [
        (query.frequency * optimizer.sequential_cost(query), query)
        for query in workload
    ]
    weighted.sort(key=lambda entry: (-entry[0], entry[1].query_id))
    return weighted


def top_k_expensive(
    workload: Workload, optimizer: WhatIfOptimizer, k: int
) -> Workload:
    """Keep the ``k`` most expensive templates (the DB2 approach).

    Expense is the frequency-weighted *no-index* cost — one sequential
    estimate per template, so compression itself stays cheap.
    """
    if k < 1:
        raise WorkloadError(f"k must be >= 1, got {k}")
    kept = [
        query
        for _, query in _estimated_weights(workload, optimizer)[:k]
    ]
    kept.sort(key=lambda query: query.query_id)
    return Workload(workload.schema, kept)


def frequency_share(
    workload: Workload, optimizer: WhatIfOptimizer, share: float
) -> Workload:
    """Keep the fewest templates covering ``share`` of estimated cost.

    ``share`` is within (0, 1]; 1.0 keeps everything.
    """
    if not 0 < share <= 1:
        raise WorkloadError(
            f"share must be within (0, 1], got {share}"
        )
    weighted = _estimated_weights(workload, optimizer)
    total = sum(weight for weight, _ in weighted)
    kept: list[Query] = []
    covered = 0.0
    for weight, query in weighted:
        kept.append(query)
        covered += weight
        if covered >= share * total:
            break
    kept.sort(key=lambda query: query.query_id)
    return Workload(workload.schema, kept)
