"""Error hierarchy for the ``repro`` package.

Every exception raised on purpose by this library derives from
:class:`ReproError` so that callers can catch library errors with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A schema definition is inconsistent.

    Raised for duplicate table or attribute names, non-positive row counts,
    attributes that reference unknown tables, and similar structural
    problems.
    """


class WorkloadError(ReproError):
    """A workload definition is inconsistent.

    Raised when a query references attributes that do not exist or span
    multiple tables, or when a query frequency is not positive.
    """


class IndexDefinitionError(ReproError):
    """An index definition is invalid.

    Raised for empty indexes, duplicate attributes within an index, and
    indexes whose attributes span multiple tables.
    """


class ConfigurationError(ReproError):
    """An index configuration (a set of selected indexes) is invalid."""


class BudgetError(ReproError):
    """A memory budget is invalid (e.g. negative) or cannot be satisfied."""


class CostModelError(ReproError):
    """The cost model was asked to evaluate an impossible situation.

    For example: estimating the cost of a query with an index that is not
    applicable to it, or evaluating a query against the wrong table.
    """


class CostSourceError(ReproError):
    """A what-if cost backend misbehaved.

    Base class of the resilience-layer failures; see
    :mod:`repro.resilience`.
    """


class TransientCostSourceError(CostSourceError):
    """A cost backend failed in a way that is worth retrying.

    Flaky plan-costing services raise this (or have it raised on their
    behalf by timeout detection); :class:`~repro.resilience.ResilientCostSource`
    retries such calls with exponential backoff before falling back.
    """


class CostSourceUnavailableError(CostSourceError):
    """A cost backend is down and no fallback could price the call.

    Raised when retries are exhausted (or the circuit breaker is open)
    and every stage of the fallback chain failed as well.
    """


class DeadlineExceededError(ReproError):
    """A wall-clock deadline expired.

    Algorithms normally *poll* their :class:`~repro.resilience.Deadline`
    and degrade gracefully instead of raising; this error is for callers
    that explicitly ask a deadline to :meth:`~repro.resilience.Deadline.check`.
    """


class SolverError(ReproError):
    """The LP/BIP solver backend failed or returned an unusable status."""


class SolverTimeoutError(SolverError):
    """The solver hit its time limit before reaching the requested gap.

    This models the "DNF" (did not finish) entries of Table I in the paper.
    """


class EngineError(ReproError):
    """The in-memory column-store engine was used incorrectly.

    Raised for queries against unknown tables, indexes over unknown
    columns, or executing a query whose predicate literals are missing.
    """


class ExperimentError(ReproError):
    """An experiment harness received invalid parameters."""


class ServiceError(ReproError):
    """The advisor service was used incorrectly.

    Base class of the ``repro.service`` failures: registering a workload
    whose schema differs from the service's, submitting to a closed
    service, subscribing to an unknown request, and similar misuse.
    """


class ServiceOverloadedError(ServiceError):
    """The service's admission queue is full.

    Raised *synchronously* by ``AdvisorService.submit`` when accepting
    another request would exceed ``max_concurrency + queue_depth``
    in-flight requests.  Fail-fast by design: under overload, clients
    should back off (or retry elsewhere) instead of queueing unboundedly
    behind requests whose deadlines they will inherit.

    ``retry_after_s`` is the service's backoff hint: the estimated
    seconds until an admission slot frees up, derived from the current
    queue depth and the mean recent request latency.  ``None`` when the
    raising side has no estimate.
    """

    def __init__(
        self, message: str, *, retry_after_s: float | None = None
    ) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceDrainingError(ServiceError):
    """The service is draining (graceful shutdown) and admits nothing.

    Unlike :class:`ServiceOverloadedError` this is not a transient
    backpressure signal — the daemon is going away; clients should
    reconnect elsewhere rather than retry here.
    """


class UnknownWorkloadError(ServiceError):
    """A request referenced a workload name that is not registered."""


class UnknownOperationError(ServiceError):
    """A protocol message named an operation the daemon does not speak."""


class WatchdogTimeoutError(ServiceError):
    """The per-request watchdog cancelled a request.

    Raised (as the terminal outcome of a request's future) when a
    worker exceeded the request deadline by more than the watchdog
    grace period — typically a cost-backend call that hung instead of
    failing.  The worker thread is abandoned and replaced so the pool
    slot is never wedged.
    """


class SnapshotError(ServiceError):
    """A durability snapshot could not be written or was requested
    without a configured snapshot directory.

    Note that *restore* failures never raise: a corrupt or version-skewed
    snapshot is logged, discarded, and counted — the service falls back
    to a cold start instead of refusing to boot.
    """


class TelemetryError(ReproError):
    """The telemetry layer was used incorrectly.

    Raised for metric type collisions (asking for a counter under a name
    already registered as a histogram), invalid instrument parameters,
    and sinks that cannot be written.
    """
