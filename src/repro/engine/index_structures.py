"""Composite sorted indexes over column-store tables.

A multi-attribute index is realized the way columnar systems commonly do:
a row-id permutation that sorts the table by the index's attribute order
(``np.lexsort``), plus the attribute columns in that sorted order.  Probing
an equality prefix is a cascade of binary searches: each level narrows the
current row range to the run holding the probed value, which is contiguous
because deeper attributes are sorted within runs of the shallower ones.

Probe results report both the matching row ids and the *traffic* the probe
caused (bytes touched by binary-search comparisons plus position-list
output), which the executor aggregates into measured query costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.columnstore import ColumnStoreTable
from repro.exceptions import EngineError
from repro.indexes.index import Index

__all__ = ["ProbeResult", "CompositeSortedIndex"]

_POSITION_LIST_ENTRY_BYTES = 4


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of probing an index with an equality prefix."""

    row_ids: np.ndarray
    """Matching base-table row ids (unsorted)."""

    bytes_read: float
    """Bytes touched by binary-search comparisons."""

    bytes_written: float
    """Bytes written to the output position list."""

    levels_used: int
    """How many prefix attributes were actually descended."""

    @property
    def traffic(self) -> float:
        """Total probe traffic in bytes."""
        return self.bytes_read + self.bytes_written

    @property
    def matches(self) -> int:
        """Number of qualifying rows."""
        return int(self.row_ids.size)


class CompositeSortedIndex:
    """A materialized multi-attribute index on one table.

    Parameters
    ----------
    table:
        The materialized table to index.
    index:
        The logical index definition (attribute order matters).
    """

    def __init__(self, table: ColumnStoreTable, index: Index) -> None:
        if index.table_name != table.name:
            raise EngineError(
                f"index {index!r} does not belong to table {table.name!r}"
            )
        self._table = table
        self._definition = index
        columns = [table.column(a) for a in index.attributes]
        # lexsort sorts by the *last* key first.
        self._order = np.lexsort(tuple(reversed(columns)))
        self._sorted_columns = [
            column[self._order] for column in columns
        ]
        self._value_sizes = [
            table.value_size(a) for a in index.attributes
        ]

    @property
    def definition(self) -> Index:
        """The logical index this structure materializes."""
        return self._definition

    @property
    def memory_bytes(self) -> int:
        """Footprint: sorted value columns plus the row-id permutation."""
        n = self._table.row_count
        position_list = max(
            1, int(np.ceil(np.ceil(np.log2(max(n, 2))) * n / 8))
        )
        return position_list + sum(
            size * n for size in self._value_sizes
        )

    def probe(
        self, values: dict[int, int], prefix_length: int | None = None
    ) -> ProbeResult:
        """Find rows matching equality predicates on a prefix.

        Parameters
        ----------
        values:
            Attribute id → probed value.  Must cover a non-empty prefix
            of the index's attributes.
        prefix_length:
            Descend only this many levels (defaults to the longest
            prefix covered by ``values``).

        Raises
        ------
        EngineError
            If the leading attribute has no probe value.
        """
        attributes = self._definition.attributes
        available = 0
        for attribute_id in attributes:
            if attribute_id in values:
                available += 1
            else:
                break
        if available == 0:
            raise EngineError(
                f"probe values {sorted(values)} do not cover the leading "
                f"attribute of index {attributes}"
            )
        levels = (
            available
            if prefix_length is None
            else min(prefix_length, available)
        )
        if levels < 1:
            raise EngineError(
                f"prefix_length must be >= 1, got {prefix_length}"
            )

        low, high = 0, self._table.row_count
        bytes_read = 0.0
        for level in range(levels):
            column = self._sorted_columns[level]
            value = values[attributes[level]]
            segment = column[low:high]
            new_low = low + int(np.searchsorted(segment, value, "left"))
            new_high = low + int(np.searchsorted(segment, value, "right"))
            # Two binary searches over the current segment.
            comparisons = 2 * np.log2(max(high - low, 2))
            bytes_read += comparisons * self._value_sizes[level]
            low, high = new_low, new_high
            if low >= high:
                break
        row_ids = self._order[low:high]
        bytes_written = _POSITION_LIST_ENTRY_BYTES * float(row_ids.size)
        return ProbeResult(
            row_ids=row_ids,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            levels_used=levels,
        )
