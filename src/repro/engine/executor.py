"""Query executor with measured memory-traffic accounting.

Executes conjunctive equality queries against a
:class:`~repro.engine.columnstore.ColumnStoreDatabase`, optionally using
composite sorted indexes.  Every execution returns the matching rows plus
an :class:`ExecutionMeasurement` whose byte counts serve as the measured
query cost for the end-to-end experiments (Section IV-B): deterministic,
derived from actual execution over materialized data, and independent of
the analytic model of Appendix B.

Plan selection mimics a simple optimizer: among the applicable indexes of
the supplied configuration it picks the one whose usable prefix promises
the smallest qualifying fraction (estimated from column statistics), then
filters the remaining attributes vectorized over the surviving rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.engine.columnstore import ColumnStoreDatabase
from repro.engine.index_structures import CompositeSortedIndex
from repro.exceptions import EngineError
from repro.indexes.configuration import IndexConfiguration
from repro.indexes.index import Index
from repro.workload.query import Query

__all__ = ["ExecutionMeasurement", "QueryExecutor", "generate_literals"]

_POSITION_LIST_ENTRY_BYTES = 4


@dataclass(frozen=True)
class ExecutionMeasurement:
    """Cost accounting of one query execution."""

    bytes_read: float
    bytes_written: float
    rows_examined: int
    result_rows: int
    index_used: Index | None
    wall_seconds: float

    @property
    def traffic(self) -> float:
        """Total measured memory traffic in bytes (the cost metric)."""
        return self.bytes_read + self.bytes_written


def generate_literals(
    database: ColumnStoreDatabase, query: Query, seed: int
) -> dict[int, int]:
    """Pick predicate literals for a query template.

    Samples a random existing row of the query's table and uses its
    values, so point queries actually hit data (an all-miss workload
    would make every index look perfect).  Deterministic per
    ``(query, seed)``.
    """
    rng = np.random.default_rng((seed, query.query_id))
    table = database.table(query.table_name)
    row = int(rng.integers(0, table.row_count))
    return {
        attribute_id: int(table.column(attribute_id)[row])
        for attribute_id in query.attributes
    }


class QueryExecutor:
    """Executes queries against materialized data, measuring traffic."""

    def __init__(self, database: ColumnStoreDatabase) -> None:
        self._database = database
        self._indexes: dict[Index, CompositeSortedIndex] = {}

    @property
    def database(self) -> ColumnStoreDatabase:
        """The database executed against."""
        return self._database

    def materialized_index(self, index: Index) -> CompositeSortedIndex:
        """Build (or fetch the cached) physical structure for an index."""
        structure = self._indexes.get(index)
        if structure is None:
            structure = CompositeSortedIndex(
                self._database.table(index.table_name), index
            )
            self._indexes[index] = structure
        return structure

    def drop_materialized_indexes(self) -> None:
        """Forget all physical index structures (frees memory)."""
        self._indexes.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        query: Query,
        literals: dict[int, int],
        configuration: IndexConfiguration | None = None,
    ) -> tuple[np.ndarray, ExecutionMeasurement]:
        """Run a conjunctive equality query.

        Parameters
        ----------
        query:
            The template (which attributes are filtered).
        literals:
            Attribute id → equality value; must cover all query
            attributes.
        configuration:
            Available indexes; ``None`` or empty forces a scan plan.

        Returns
        -------
        (row_ids, measurement)
            Matching row ids (sorted) and the traffic accounting.
        """
        missing = query.attributes - set(literals)
        if missing:
            raise EngineError(
                f"query {query.query_id} is missing literals for "
                f"attributes {sorted(missing)}"
            )
        started = time.perf_counter()
        table = self._database.table(query.table_name)
        schema = self._database.schema

        chosen = None
        if configuration is not None:
            chosen = self._choose_index(query, configuration)

        bytes_read = 0.0
        bytes_written = 0.0
        rows_examined = 0

        if chosen is not None:
            structure = self.materialized_index(chosen)
            probe = structure.probe(literals)
            bytes_read += probe.bytes_read
            bytes_written += probe.bytes_written
            candidates = probe.row_ids
            covered = set(
                chosen.attributes[: probe.levels_used]
            )
        else:
            candidates = None  # full table, represented implicitly
            covered = set()

        remaining = sorted(
            query.attributes - covered,
            key=lambda attribute_id: (
                schema.selectivity(attribute_id),
                attribute_id,
            ),
        )
        for attribute_id in remaining:
            column = table.column(attribute_id)
            value_size = table.value_size(attribute_id)
            if candidates is None:
                mask = column == literals[attribute_id]
                rows_examined += table.row_count
                bytes_read += float(table.row_count * value_size)
                candidates = np.nonzero(mask)[0]
            else:
                rows_examined += int(candidates.size)
                bytes_read += float(candidates.size * value_size)
                candidates = candidates[
                    column[candidates] == literals[attribute_id]
                ]
            bytes_written += _POSITION_LIST_ENTRY_BYTES * float(
                candidates.size
            )
        if candidates is None:
            candidates = np.arange(table.row_count)

        measurement = ExecutionMeasurement(
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            rows_examined=rows_examined,
            result_rows=int(candidates.size),
            index_used=chosen,
            wall_seconds=time.perf_counter() - started,
        )
        return np.sort(candidates), measurement

    def _choose_index(
        self, query: Query, configuration: IndexConfiguration
    ) -> Index | None:
        """Pick the applicable index with the smallest estimated range."""
        schema = self._database.schema
        best: tuple[float, int, Index] | None = None
        for index in configuration.applicable_to(query):
            prefix = index.usable_prefix(query)
            fraction = 1.0
            for attribute_id in prefix:
                fraction *= schema.selectivity(attribute_id)
            key = (fraction, -len(prefix))
            if best is None or key < (best[0], best[1]):
                best = (fraction, -len(prefix), index)
        return None if best is None else best[2]
