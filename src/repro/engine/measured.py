"""Measured-execution cost source (the Section IV-B methodology).

The paper's end-to-end evaluation avoids what-if estimates entirely: every
query is *executed* under every index candidate and the measured runtime
feeds the models' cost parameters.  :class:`MeasuredCostSource` implements
the same methodology against the in-memory column store: ``f_j(k)`` is
the measured memory traffic of executing query ``j`` with exactly index
``k`` materialized (``f_j(0)`` with none).  Plugged into the standard
:class:`~repro.cost.whatif.WhatIfOptimizer` facade, every selection
algorithm runs unchanged on measured costs.

:func:`evaluate_configuration` provides the matching *final* evaluation:
execute the whole workload under a chosen configuration and report the
aggregate measured cost — the y-axis of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.columnstore import ColumnStoreDatabase
from repro.engine.executor import QueryExecutor, generate_literals
from repro.exceptions import EngineError
from repro.indexes.configuration import IndexConfiguration
from repro.indexes.index import Index
from repro.workload.query import Query, Workload

__all__ = ["MeasuredCostSource", "evaluate_configuration"]


class MeasuredCostSource:
    """Cost source backed by actual query execution.

    Parameters
    ----------
    database:
        The materialized column store.
    literal_seed:
        Seed for predicate-literal generation (one literal set per query
        template, fixed across all measurements so costs are comparable).
    repetitions:
        How many times to execute per measurement.  Traffic is
        deterministic, so repetitions matter only when wall-clock time is
        of interest; the default of 1 keeps experiments fast.  The
        paper repeated each measurement at least 100 times to stabilize
        *runtimes* — our primary metric (traffic) does not need it.
    """

    def __init__(
        self,
        database: ColumnStoreDatabase,
        *,
        literal_seed: int = 42,
        repetitions: int = 1,
    ) -> None:
        if repetitions < 1:
            raise ValueError(
                f"repetitions must be >= 1, got {repetitions}"
            )
        self._executor = QueryExecutor(database)
        self._literal_seed = literal_seed
        self._repetitions = repetitions
        self._literals: dict[int, dict[int, int]] = {}

    @property
    def executor(self) -> QueryExecutor:
        """The underlying executor (shared index materializations)."""
        return self._executor

    def literals_for(self, query: Query) -> dict[int, int]:
        """The fixed predicate literals of a query template."""
        cached = self._literals.get(query.query_id)
        if cached is None:
            cached = generate_literals(
                self._executor.database, query, self._literal_seed
            )
            self._literals[query.query_id] = cached
        return cached

    def query_cost(self, query: Query, index: Index | None) -> float:
        """Measured traffic of executing the query with one index.

        Only read queries can be measured — the engine executes
        conjunctive selections.  Write queries need the analytic
        maintenance model instead.
        """
        if not query.is_select:
            raise EngineError(
                f"query {query.query_id} is a {query.kind.value}; the "
                "measured-execution source only supports SELECTs"
            )
        configuration = (
            IndexConfiguration((index,)) if index is not None else None
        )
        literals = self.literals_for(query)
        total = 0.0
        for _ in range(self._repetitions):
            _, measurement = self._executor.execute(
                query, literals, configuration
            )
            total += measurement.traffic
        return total / self._repetitions


@dataclass(frozen=True)
class WorkloadExecution:
    """Aggregate outcome of executing a workload end to end."""

    total_cost: float
    """Frequency-weighted total measured traffic."""

    per_query_cost: dict[int, float]
    """query_id → measured traffic of one execution."""

    index_usage: dict[Index, int]
    """How many query templates each index served."""


def evaluate_configuration(
    source: MeasuredCostSource,
    workload: Workload,
    configuration: IndexConfiguration,
) -> WorkloadExecution:
    """Execute every query under a configuration; aggregate measured cost.

    Unlike :meth:`MeasuredCostSource.query_cost`, the executor here sees
    the *whole* configuration and picks the best index per query — the
    end-to-end ground truth that selections are judged by in Fig. 5.
    """
    executor = source.executor
    total = 0.0
    per_query: dict[int, float] = {}
    usage: dict[Index, int] = {}
    for query in workload:
        literals = source.literals_for(query)
        _, measurement = executor.execute(query, literals, configuration)
        per_query[query.query_id] = measurement.traffic
        total += query.frequency * measurement.traffic
        if measurement.index_used is not None:
            usage[measurement.index_used] = (
                usage.get(measurement.index_used, 0) + 1
            )
    return WorkloadExecution(
        total_cost=total, per_query_cost=per_query, index_usage=usage
    )
