"""In-memory column-store engine for measured-cost (end-to-end) runs."""

from repro.engine.columnstore import (
    DEFAULT_ROW_CAP,
    ColumnStoreDatabase,
    ColumnStoreTable,
)
from repro.engine.executor import (
    ExecutionMeasurement,
    QueryExecutor,
    generate_literals,
)
from repro.engine.index_structures import CompositeSortedIndex, ProbeResult
from repro.engine.measured import (
    MeasuredCostSource,
    WorkloadExecution,
    evaluate_configuration,
)

__all__ = [
    "ColumnStoreDatabase",
    "ColumnStoreTable",
    "CompositeSortedIndex",
    "DEFAULT_ROW_CAP",
    "ExecutionMeasurement",
    "MeasuredCostSource",
    "ProbeResult",
    "QueryExecutor",
    "WorkloadExecution",
    "evaluate_configuration",
    "generate_literals",
]
