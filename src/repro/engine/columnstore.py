"""In-memory column store: materialized tables matching a schema.

The end-to-end evaluation of Section IV-B needs a database that actually
*executes* queries so costs can be measured instead of modeled.  This
module materializes a schema's tables as numpy integer columns whose
distinct-value counts match the schema statistics, so the measured
behaviour of indexes (range sizes, filter survival rates) reflects the
same statistics the analytic model sees — while the measured *costs*
include effects the model ignores (actual hit counts, data-dependent
range widths, integer column widths).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import EngineError
from repro.workload.schema import Schema, Table

__all__ = ["ColumnStoreTable", "ColumnStoreDatabase"]

DEFAULT_ROW_CAP = 200_000
"""Default cap on materialized rows per table.

Schema row counts can reach billions (the ERP workload); materializing
them is neither possible nor necessary — measured-cost experiments use
capped tables, and the cap is an explicit, documented scaling knob."""


@dataclass
class ColumnStoreTable:
    """One materialized table: named integer columns of equal length."""

    name: str
    row_count: int
    columns: dict[int, np.ndarray] = field(default_factory=dict)
    value_sizes: dict[int, int] = field(default_factory=dict)

    def column(self, attribute_id: int) -> np.ndarray:
        """The values of one attribute (by global id)."""
        try:
            return self.columns[attribute_id]
        except KeyError:
            raise EngineError(
                f"table {self.name!r} has no materialized column for "
                f"attribute {attribute_id}"
            ) from None

    def value_size(self, attribute_id: int) -> int:
        """Logical value size in bytes (drives traffic accounting)."""
        try:
            return self.value_sizes[attribute_id]
        except KeyError:
            raise EngineError(
                f"table {self.name!r} has no value size for attribute "
                f"{attribute_id}"
            ) from None


class ColumnStoreDatabase:
    """A materialized database for measured-cost experiments.

    Parameters
    ----------
    schema:
        The logical schema (row counts, distinct counts, value sizes).
    seed:
        Seed for the data generator (deterministic content).
    row_cap:
        Materialize at most this many rows per table.  Distinct counts
        are scaled proportionally so selectivities are preserved.
    """

    def __init__(
        self,
        schema: Schema,
        *,
        seed: int = 7,
        row_cap: int = DEFAULT_ROW_CAP,
    ) -> None:
        if row_cap < 1:
            raise EngineError(f"row_cap must be >= 1, got {row_cap}")
        self._schema = schema
        self._row_cap = row_cap
        self._tables: dict[str, ColumnStoreTable] = {}
        rng = np.random.default_rng(seed)
        for table in schema.tables:
            self._tables[table.name] = self._materialize(table, rng)

    def _materialize(
        self, table: Table, rng: np.random.Generator
    ) -> ColumnStoreTable:
        rows = min(table.row_count, self._row_cap)
        scale = rows / table.row_count
        store = ColumnStoreTable(name=table.name, row_count=rows)
        for attribute in table.attributes:
            # Preserve selectivity: d/n stays (approximately) constant.
            distinct = max(
                1, min(rows, round(attribute.distinct_values * scale))
                if scale < 1.0
                else attribute.distinct_values,
            )
            store.columns[attribute.id] = rng.integers(
                0, distinct, size=rows, dtype=np.int64
            )
            store.value_sizes[attribute.id] = attribute.value_size
        return store

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The logical schema the data was generated from."""
        return self._schema

    @property
    def row_cap(self) -> int:
        """The materialization cap used."""
        return self._row_cap

    def table(self, name: str) -> ColumnStoreTable:
        """The materialized table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise EngineError(f"unknown table {name!r}") from None

    def table_of_attribute(self, attribute_id: int) -> ColumnStoreTable:
        """The materialized table owning the given attribute."""
        return self.table(self._schema.attribute(attribute_id).table_name)
