"""Where telemetry records go.

Three destinations cover the use cases of the repository:

* :class:`InMemorySink` — the zero-dependency default; records stay in a
  list for programmatic inspection (tests, ``Recommendation.telemetry``).
* :class:`JsonLinesSink` — one JSON object per line, the interchange
  format for traces (``python -m repro advise --trace run.jsonl``).
* :func:`render_metrics_table` / :func:`render_span_table` — the
  human-readable renderers the report layer embeds.

Records are plain dicts tagged with a ``"type"`` key: ``"span"``,
``"step"``, or ``"metrics"``.
"""

from __future__ import annotations

import io
import json
import os
from typing import Iterable, Protocol

from repro.exceptions import TelemetryError
from repro.telemetry.metrics import HistogramSummary
from repro.telemetry.tracing import Span

__all__ = [
    "TelemetrySink",
    "InMemorySink",
    "JsonLinesSink",
    "read_jsonl",
    "render_metrics_table",
    "render_span_table",
]


class TelemetrySink(Protocol):
    """Destination for telemetry records."""

    def emit(self, record: dict) -> None:
        """Accept one record (a plain, JSON-serializable dict)."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Flush and release resources; emitting afterwards is an error."""
        ...  # pragma: no cover - protocol


class InMemorySink:
    """Keeps every record in a list — the default sink."""

    def __init__(self) -> None:
        self.records: list[dict] = []
        self._closed = False

    def emit(self, record: dict) -> None:
        if self._closed:
            raise TelemetryError("emit() on a closed InMemorySink")
        self.records.append(record)

    def close(self) -> None:
        self._closed = True

    def records_of(self, record_type: str) -> list[dict]:
        """All records with the given ``"type"`` tag, in emit order."""
        return [
            record
            for record in self.records
            if record.get("type") == record_type
        ]


class JsonLinesSink:
    """Appends one JSON object per record to a file.

    Accepts a path (opened lazily, closed by :meth:`close`) or an
    already-open text file object (left open by :meth:`close`, only
    flushed — the caller owns it).
    """

    def __init__(self, destination: str | os.PathLike | io.TextIOBase):
        if isinstance(destination, (str, os.PathLike)):
            self._path: str | None = os.fspath(destination)
            self._file: io.TextIOBase | None = None
            self._owns_file = True
        else:
            self._path = None
            self._file = destination
            self._owns_file = False
        self._closed = False

    def emit(self, record: dict) -> None:
        if self._closed:
            raise TelemetryError("emit() on a closed JsonLinesSink")
        if self._file is None:
            assert self._path is not None
            self._file = open(self._path, "w", encoding="utf-8")
        json.dump(record, self._file, separators=(",", ":"))
        self._file.write("\n")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._file is None:
            return
        self._file.flush()
        if self._owns_file:
            self._file.close()


def read_jsonl(path: str | os.PathLike) -> list[dict]:
    """Load every record of a JSON-lines trace file."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return f"{value:,}"
    return f"{value:.6g}"


def render_metrics_table(
    snapshot: dict[str, int | float | HistogramSummary]
) -> str:
    """Render a metrics snapshot as an aligned plain-text table."""
    if not snapshot:
        return "(no metrics recorded)"
    rows = []
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, HistogramSummary):
            rows.append(
                (
                    name,
                    f"n={value.count} mean={value.mean:.6g} "
                    f"p50={value.p50:.6g} p95={value.p95:.6g} "
                    f"max={value.maximum:.6g}",
                )
            )
        else:
            rows.append((name, _format_value(value)))
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name:<{width}}  {text}" for name, text in rows)


def render_span_table(spans: Iterable[Span]) -> str:
    """Render finished spans as an indented duration table."""
    lines = []
    for span in spans:
        indent = "  " * span.depth
        extra = ""
        if span.status != "ok":
            extra = f" [{span.status}]"
        lines.append(
            f"{indent}{span.name:<{max(30 - len(indent), 1)}} "
            f"{span.duration_seconds * 1e3:9.3f} ms{extra}"
        )
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)
