"""Nested spans with monotonic timings.

A :class:`Tracer` produces :class:`Span` objects through a context
manager (``with tracer.span("extend.step", step=3) as span:``).  Spans
nest: a thread-local stack tracks the currently open span per thread, so
time spent in a nested call attributes to the innermost span and every
finished span knows its parent's name and its own depth.

The module-level :data:`NO_OP_TRACER` implements the same API with a
shared, stateless context manager so instrumented code pays near-zero
cost when telemetry is disabled — no allocation, no clock reads, no
bookkeeping.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.telemetry.metrics import MetricsRegistry
    from repro.telemetry.sinks import TelemetrySink

__all__ = ["Span", "Tracer", "NoOpTracer", "NO_OP_TRACER"]


class Span:
    """One timed, attributed section of work."""

    __slots__ = (
        "name",
        "parent_name",
        "depth",
        "attributes",
        "status",
        "_started",
        "_ended",
    )

    def __init__(
        self,
        name: str,
        parent_name: str | None,
        depth: int,
        attributes: dict,
    ) -> None:
        self.name = name
        self.parent_name = parent_name
        self.depth = depth
        self.attributes = attributes
        self.status = "ok"
        self._started = time.perf_counter()
        self._ended: float | None = None

    @property
    def finished(self) -> bool:
        """Whether the span has been closed."""
        return self._ended is not None

    @property
    def duration_seconds(self) -> float:
        """Elapsed time; live (still running) until the span closes."""
        end = self._ended
        if end is None:
            end = time.perf_counter()
        return end - self._started

    def annotate(self, key: str, value) -> None:
        """Attach a key/value attribute to the span."""
        self.attributes[key] = value

    def to_dict(self) -> dict:
        """Plain-dict record for JSON sinks."""
        return {
            "type": "span",
            "name": self.name,
            "parent": self.parent_name,
            "depth": self.depth,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
            "attributes": dict(self.attributes),
        }


class _SpanContext:
    """Context manager that opens a span on enter, closes it on exit."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: Tracer, name: str, attributes: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, traceback) -> bool:
        assert self._span is not None
        if exc_type is not None:
            self._span.status = "error"
            self._span.attributes.setdefault(
                "error", f"{exc_type.__name__}: {exc}"
            )
        self._tracer._close(self._span)
        return False  # never swallow exceptions


class Tracer:
    """Produces nested spans and keeps the finished ones in order.

    Parameters
    ----------
    registry:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry`; when
        given, every finished span records its duration into the
        histogram ``span.<name>.seconds``.
    sinks:
        Optional sinks receiving each finished span's ``to_dict()``.
    """

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sinks: tuple[TelemetrySink, ...] = (),
    ) -> None:
        self._registry = registry
        self._sinks = tuple(sinks)
        self._local = threading.local()
        self.spans: list[Span] = []
        self._spans_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes) -> _SpanContext:
        """Context manager opening a child of the current span."""
        return _SpanContext(self, name, attributes)

    @property
    def current(self) -> Span | None:
        """The innermost open span of the calling thread, if any."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        return stack[-1]

    # ------------------------------------------------------------------
    # Span lifecycle (called by _SpanContext)
    # ------------------------------------------------------------------

    def _open(self, name: str, attributes: dict) -> Span:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        parent = stack[-1] if stack else None
        span = Span(
            name,
            parent.name if parent else None,
            len(stack),
            attributes,
        )
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span._ended = time.perf_counter()
        stack = self._local.stack
        # Exception safety: pop through any abandoned inner spans so an
        # error raised mid-span cannot corrupt attribution forever.
        closing = []
        while stack and stack[-1] is not span:
            abandoned = stack.pop()
            abandoned._ended = span._ended
            abandoned.status = "abandoned"
            closing.append(abandoned)
        if stack:
            stack.pop()
        closing.append(span)
        with self._spans_lock:
            self.spans.extend(closing)
        for finished in closing:
            if self._registry is not None:
                self._registry.histogram(
                    f"span.{finished.name}.seconds"
                ).record(finished.duration_seconds)
            for sink in self._sinks:
                sink.emit(finished.to_dict())


class _NoOpSpan:
    """Inert span handed out by the no-op tracer."""

    __slots__ = ()

    name = "noop"
    parent_name = None
    depth = 0
    status = "ok"
    finished = True
    duration_seconds = 0.0

    @property
    def attributes(self) -> dict:
        return {}

    def annotate(self, key: str, value) -> None:
        pass

    def to_dict(self) -> dict:
        return {"type": "span", "name": self.name}


class _NoOpSpanContext:
    """Reusable, reentrant do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> _NoOpSpan:
        return _NO_OP_SPAN

    def __exit__(self, exc_type, exc, traceback) -> bool:
        return False


_NO_OP_SPAN = _NoOpSpan()
_NO_OP_CONTEXT = _NoOpSpanContext()


class NoOpTracer:
    """Tracer drop-in that does nothing, as cheaply as possible."""

    enabled = False
    spans: tuple = ()
    current = None

    def span(self, name: str, **attributes) -> _NoOpSpanContext:
        """Return the shared do-nothing context manager."""
        return _NO_OP_CONTEXT


NO_OP_TRACER = NoOpTracer()
"""Module-level no-op tracer shared by all disabled telemetry sessions."""
