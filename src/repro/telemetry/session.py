"""The per-run telemetry session and its disabled twin.

A :class:`Telemetry` object bundles the three observability primitives —
metrics registry, tracer, and step-event log — plus the sinks they feed.
Algorithms take one through their ``telemetry=`` keyword; the default is
:data:`NULL_TELEMETRY`, whose tracer is the module-level no-op tracer and
whose event/metric methods return immediately, so uninstrumented runs pay
(near) nothing.

Typical enabled use::

    sink = JsonLinesSink("trace.jsonl")
    telemetry = Telemetry(sinks=(sink,))
    result = ExtendAlgorithm(optimizer, telemetry=telemetry).select(
        workload, budget)
    telemetry.close()          # flushes a final metrics record
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.events import StepEvent
from repro.telemetry.metrics import HistogramSummary, MetricsRegistry
from repro.telemetry.sinks import TelemetrySink
from repro.telemetry.tracing import NO_OP_TRACER, Span, Tracer

__all__ = ["Telemetry", "TelemetrySnapshot", "NULL_TELEMETRY"]


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable view of everything one run recorded."""

    metrics: dict[str, int | float | HistogramSummary] = field(
        default_factory=dict
    )
    spans: tuple[Span, ...] = ()
    events: tuple[StepEvent, ...] = ()

    @property
    def empty(self) -> bool:
        """True when nothing was recorded (e.g. disabled telemetry)."""
        return not (self.metrics or self.spans or self.events)

    def chosen_events(self) -> tuple[StepEvent, ...]:
        """The applied (not merely considered) steps, in order."""
        return tuple(event for event in self.events if event.chosen)


class Telemetry:
    """One run's metrics registry, tracer, step-event log, and sinks."""

    enabled = True

    def __init__(self, sinks: tuple[TelemetrySink, ...] = ()) -> None:
        self.sinks = tuple(sinks)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(registry=self.metrics, sinks=self.sinks)
        self.events: list[StepEvent] = []
        self._closed = False

    def emit_step(self, event: StepEvent) -> None:
        """Record one step event and forward it to every sink."""
        self.events.append(event)
        record = event.to_dict()
        for sink in self.sinks:
            sink.emit(record)

    def record_whatif(self, statistics, prefix: str = "whatif") -> None:
        """Bridge a :class:`~repro.cost.whatif.WhatIfStatistics` into
        the registry as gauges (calls, cache hits, hit rate)."""
        statistics.publish(self.metrics, prefix=prefix)

    def record_resilience(
        self, statistics, prefix: str = "resilience"
    ) -> None:
        """Bridge a
        :class:`~repro.resilience.ResilienceStatistics` (or
        :class:`~repro.resilience.FaultStatistics` via ``prefix=
        "faults"``) into the registry as gauges — retries, breaker
        state, fault counters."""
        statistics.publish(self.metrics, prefix=prefix)

    def record_evaluation(
        self, statistics, prefix: str = "evaluation"
    ) -> None:
        """Bridge an
        :class:`~repro.core.evaluation.EvaluationStatistics` into the
        registry as gauges — rounds, evaluations, reuse rate,
        invalidations, priced/pruned candidates, parallelism."""
        statistics.publish(self.metrics, prefix=prefix)

    def record_kernel(self, statistics, prefix: str = "kernel") -> None:
        """Bridge a :class:`~repro.cost.kernel.KernelStatistics` into
        the registry as gauges — compiled packs/queries, compile time,
        batch calls and sizes, scalar fallthrough calls."""
        statistics.publish(self.metrics, prefix=prefix)

    def snapshot(self) -> TelemetrySnapshot:
        """Immutable view of metrics, finished spans, and events."""
        return TelemetrySnapshot(
            metrics=self.metrics.snapshot(),
            spans=tuple(self.tracer.spans),
            events=tuple(self.events),
        )

    def close(self) -> None:
        """Emit a final metrics record and close owned sinks."""
        if self._closed:
            return
        self._closed = True
        final = {
            "type": "metrics",
            "metrics": {
                name: value.to_dict()
                if isinstance(value, HistogramSummary)
                else value
                for name, value in self.metrics.snapshot().items()
            },
        }
        for sink in self.sinks:
            sink.emit(final)
            sink.close()


class _DisabledTelemetry:
    """Telemetry drop-in whose every operation is (near) free.

    Shares the module-level :data:`~repro.telemetry.tracing.NO_OP_TRACER`
    and a single throwaway registry; instrumented code guards metric and
    event emission behind ``if telemetry.enabled:`` so the registry is
    never touched on hot paths.
    """

    enabled = False
    sinks: tuple = ()
    events: tuple = ()
    tracer = NO_OP_TRACER

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()

    def emit_step(self, event: StepEvent) -> None:
        pass

    def record_whatif(self, statistics, prefix: str = "whatif") -> None:
        pass

    def record_resilience(
        self, statistics, prefix: str = "resilience"
    ) -> None:
        pass

    def record_evaluation(
        self, statistics, prefix: str = "evaluation"
    ) -> None:
        pass

    def record_kernel(self, statistics, prefix: str = "kernel") -> None:
        pass

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot()

    def close(self) -> None:
        pass


NULL_TELEMETRY = _DisabledTelemetry()
"""Shared disabled session — the default ``telemetry=`` everywhere."""
