"""Counters, gauges, and lightweight histograms.

The registry is the numeric half of the observability layer (the other
half is the span/event stream of :mod:`repro.telemetry.tracing` and
:mod:`repro.telemetry.events`).  Everything is stdlib-only and cheap
enough to live inside the selection hot loops: a counter increment is an
integer addition, a histogram record is a reservoir update with a
deterministic (seeded) replacement policy so snapshots are reproducible
across runs.

Instruments are created lazily and keyed by name; asking for the same
name twice returns the same instrument, asking for the same name with a
different instrument type raises :class:`~repro.exceptions.TelemetryError`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount


class Gauge:
    """A point-in-time numeric metric (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)


@dataclass(frozen=True)
class HistogramSummary:
    """Immutable snapshot of a histogram's distribution."""

    count: int
    total: float
    mean: float
    p50: float
    p95: float
    maximum: float

    def to_dict(self) -> dict:
        """Plain-dict form for JSON sinks."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.maximum,
        }


class Histogram:
    """Fixed-size reservoir histogram with exact count/total/max.

    Percentiles are estimated from a uniform reservoir sample of at most
    ``capacity`` observations (Vitter's Algorithm R with a fixed seed, so
    two identical runs produce identical snapshots); count, total, mean,
    and max are exact regardless of sample size.
    """

    __slots__ = ("name", "capacity", "count", "total", "maximum",
                 "_reservoir", "_rng")

    def __init__(self, name: str, capacity: int = 256) -> None:
        if capacity < 1:
            raise TelemetryError(
                f"histogram capacity must be >= 1, got {capacity}"
            )
        self.name = name
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0
        self._reservoir: list[float] = []
        self._rng = random.Random(0x5EED)

    def record(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.count == 1 or value > self.maximum:
            self.maximum = value
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._reservoir[slot] = value

    def percentile(self, quantile: float) -> float:
        """Estimated value at ``quantile`` in [0, 1] (0 when empty)."""
        if not 0.0 <= quantile <= 1.0:
            raise TelemetryError(
                f"quantile must be in [0, 1], got {quantile}"
            )
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        position = min(
            int(quantile * len(ordered)), len(ordered) - 1
        )
        return ordered[position]

    def summary(self) -> HistogramSummary:
        """Snapshot of the distribution (isolated from later records)."""
        return HistogramSummary(
            count=self.count,
            total=self.total,
            mean=self.total / self.count if self.count else 0.0,
            p50=self.percentile(0.5),
            p95=self.percentile(0.95),
            maximum=self.maximum,
        )


class MetricsRegistry:
    """Named home of every counter, gauge, and histogram of one run."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, *args)
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, kind):
            raise TelemetryError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str, capacity: int = 256) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get(name, Histogram, capacity)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict[str, int | float | HistogramSummary]:
        """Immutable view of all current values.

        Counters and gauges snapshot to plain numbers, histograms to
        :class:`HistogramSummary`; mutating the registry afterwards does
        not change an already-taken snapshot.
        """
        view: dict[str, int | float | HistogramSummary] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                view[name] = instrument.summary()
            else:
                view[name] = instrument.value
        return view
