"""Observability for the selection stack: tracing, metrics, step events.

The paper's claims are operational — what-if call counts (Fig. 5) and
solve-time scaling (Fig. 4) — so this package makes every run
inspectable: where the time went (:mod:`~repro.telemetry.tracing`), what
was counted (:mod:`~repro.telemetry.metrics`), and which candidate
decisions Algorithm 1 took (:mod:`~repro.telemetry.events`).  Records
flow to pluggable sinks (:mod:`~repro.telemetry.sinks`); the default
in-memory sink has zero dependencies and the whole layer collapses to
near-zero cost through :data:`NULL_TELEMETRY` when disabled.

See ``docs/OBSERVABILITY.md`` for the span taxonomy, metric names, and
sink formats.
"""

from repro.telemetry.events import StepEvent
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
)
from repro.telemetry.session import (
    NULL_TELEMETRY,
    Telemetry,
    TelemetrySnapshot,
)
from repro.telemetry.sinks import (
    InMemorySink,
    JsonLinesSink,
    TelemetrySink,
    read_jsonl,
    render_metrics_table,
    render_span_table,
)
from repro.telemetry.tracing import NO_OP_TRACER, NoOpTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "InMemorySink",
    "JsonLinesSink",
    "MetricsRegistry",
    "NO_OP_TRACER",
    "NULL_TELEMETRY",
    "NoOpTracer",
    "Span",
    "StepEvent",
    "Telemetry",
    "TelemetrySink",
    "TelemetrySnapshot",
    "Tracer",
    "read_jsonl",
    "render_metrics_table",
    "render_span_table",
]
