"""Structured step events — the audit log of Algorithm 1 decisions.

Every selection step of the constructive algorithms emits one *chosen*
event (and optionally events for the best rejected runner-up moves), so
a finished run can be replayed and audited: the sequence of
``(cost_delta, memory_delta)`` of the chosen events reconstructs the
efficient frontier the run reported, and the per-step what-if deltas
show where the optimizer budget went.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.exceptions import TelemetryError

__all__ = ["StepEvent"]

_EVENT_TYPE = "step"


@dataclass(frozen=True)
class StepEvent:
    """One candidate decision of a selection algorithm.

    ``chosen`` events carry the exact before/after cost and memory of the
    applied step; ``rejected`` events carry the *estimated* benefit and
    memory delta the candidate would have had (their ``cost_before`` etc.
    are ``None`` — the step never happened).
    """

    algorithm: str
    step_number: int
    action: str
    """The :class:`~repro.core.steps.StepKind` value (or ``"swap"``)."""

    table: str
    index_before: tuple[int, ...] | None
    index_after: tuple[int, ...] | None
    chosen: bool
    benefit: float
    """Cost reduction: exact for chosen steps, estimated for rejected."""

    memory_delta: int
    ratio: float
    """Benefit per additional byte — the Step 3 selection criterion."""

    cost_before: float | None = None
    cost_after: float | None = None
    memory_before: int | None = None
    memory_after: int | None = None
    whatif_calls: int | None = None
    """Backend what-if calls consumed during this step."""

    cache_hits: int | None = None
    """What-if cache hits during this step."""

    candidates_considered: int | None = None
    """How many moves were scored before this decision."""

    def to_dict(self) -> dict:
        """Plain-dict record (with ``"type": "step"``) for JSON sinks."""
        record = asdict(self)
        record["type"] = _EVENT_TYPE
        record["index_before"] = (
            list(self.index_before) if self.index_before else None
        )
        record["index_after"] = (
            list(self.index_after) if self.index_after else None
        )
        return record

    @classmethod
    def from_dict(cls, record: dict) -> StepEvent:
        """Rebuild an event from a sink record (round-trip of to_dict)."""
        if record.get("type") != _EVENT_TYPE:
            raise TelemetryError(
                f"not a step-event record: type={record.get('type')!r}"
            )
        payload = {
            key: value for key, value in record.items() if key != "type"
        }
        for key in ("index_before", "index_after"):
            if payload.get(key) is not None:
                payload[key] = tuple(payload[key])
        return cls(**payload)
