"""Construction steps and selection results.

Algorithm 1 produces a *series of construction steps*; truncating the
series at any memory budget yields a selection for that budget.  This
module defines the step record, the generic result type shared by all
selection algorithms in the repository (Extend, CoPhy, H1–H5), and the
pretty-printer that renders a step table like the one of Fig. 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.indexes.configuration import IndexConfiguration
from repro.indexes.index import Index
from repro.workload.schema import Schema

__all__ = [
    "StepKind",
    "ConstructionStep",
    "SelectionResult",
    "format_steps",
    "STATUS_COMPLETED",
    "STATUS_DEGRADED",
]

STATUS_COMPLETED = "completed"
"""The algorithm ran to its natural stopping criterion."""

STATUS_DEGRADED = "degraded"
"""The run was cut short (deadline, solver failure fallback) and the
result is the best-so-far configuration, still feasible and priced."""


class StepKind(enum.Enum):
    """What a construction step did to the index set."""

    NEW_SINGLE = "new-single"
    """Added a new single-attribute index (Algorithm 1 Step 3a)."""

    EXTEND = "extend"
    """Appended an attribute to an existing index (Step 3b, "morphing")."""

    NEW_PAIR = "new-pair"
    """Added a new two-attribute index (Remark 1 (4) pair seeding)."""

    BRANCH = "branch"
    """Materialized a stored missed opportunity (Remark 1 (3)): a new
    index sharing the leading attributes of a previously morphed one."""

    REMOVE = "remove"
    """Dropped an index that became unused (Remark 1 (2))."""


@dataclass(frozen=True)
class ConstructionStep:
    """One applied construction step of Algorithm 1.

    ``cost_*`` values are total workload costs ``F + R`` before and after
    the step; ``memory_*`` are the configuration footprints ``P``.
    ``ratio`` is the selection criterion: additional performance per
    additional memory (``inf`` for removals, which free memory).
    """

    step_number: int
    kind: StepKind
    index_before: Index | None
    index_after: Index | None
    cost_before: float
    cost_after: float
    memory_before: int
    memory_after: int

    @property
    def benefit(self) -> float:
        """Cost reduction achieved by this step."""
        return self.cost_before - self.cost_after

    @property
    def memory_delta(self) -> int:
        """Additional memory consumed by this step (negative for REMOVE)."""
        return self.memory_after - self.memory_before

    @property
    def ratio(self) -> float:
        """Benefit per additional byte (the Step 3 selection criterion)."""
        if self.memory_delta <= 0:
            return float("inf")
        return self.benefit / self.memory_delta

    def describe(self, schema: Schema | None = None) -> str:
        """One-line human-readable description."""
        if self.kind is StepKind.EXTEND:
            assert self.index_before is not None
            assert self.index_after is not None
            appended = self.index_after.attributes[-1]
            name = (
                schema.attribute(appended).name if schema else str(appended)
            )
            action = (
                f"extend {self.index_before.label(schema)} by {name} -> "
                f"{self.index_after.label(schema)}"
            )
        elif self.kind is StepKind.REMOVE:
            assert self.index_before is not None
            action = f"remove unused {self.index_before.label(schema)}"
        else:
            assert self.index_after is not None
            action = f"create {self.index_after.label(schema)}"
        return (
            f"step {self.step_number:>3}: {action} "
            f"(benefit={self.benefit:.4g}, +mem={self.memory_delta:,}, "
            f"ratio={self.ratio:.4g})"
        )


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of any index-selection algorithm.

    Attributes
    ----------
    algorithm:
        Name of the producing algorithm (e.g. ``"H6"``, ``"CoPhy"``).
    configuration:
        The selected indexes ``I*``.
    total_cost:
        Workload cost ``F(I*)`` under the algorithm's cost semantics
        (excluding reconfiguration costs, which are reported separately).
    memory:
        Configuration footprint ``P(I*)`` in bytes.
    budget:
        The memory budget the algorithm was given.
    runtime_seconds:
        Wall-clock solve time, excluding what-if calls where the
        algorithm separates them (CoPhy) and including the full
        construction for Extend (whose what-if calls are interleaved; the
        experiment harness reports call counts separately).
    whatif_calls:
        Backend what-if calls consumed while computing this selection.
    reconfiguration_cost:
        ``R(I*, Ī*)`` against the algorithm's baseline configuration.
    steps:
        Construction steps (empty for one-shot algorithms like CoPhy).
    status:
        :data:`STATUS_COMPLETED` for a natural finish,
        :data:`STATUS_DEGRADED` for a best-so-far result returned under
        an expired :class:`~repro.resilience.Deadline` or after a
        solver-failure fallback.  Degraded results are always feasible
        (within budget) and fully priced — they are just not as refined
        as an uninterrupted run would be.
    """

    algorithm: str
    configuration: IndexConfiguration
    total_cost: float
    memory: int
    budget: float
    runtime_seconds: float
    whatif_calls: int
    reconfiguration_cost: float = 0.0
    steps: tuple[ConstructionStep, ...] = field(default_factory=tuple)
    status: str = STATUS_COMPLETED

    @property
    def objective(self) -> float:
        """``F(I*) + R(I*, Ī*)`` — the minimized objective (Eq. 3)."""
        return self.total_cost + self.reconfiguration_cost

    @property
    def degraded(self) -> bool:
        """True when the run was cut short (see ``status``)."""
        return self.status == STATUS_DEGRADED

    def summary(self) -> str:
        """One-line result summary for experiment logs."""
        status_note = "" if not self.degraded else f" [{self.status}]"
        return (
            f"{self.algorithm}: cost={self.total_cost:.6g} "
            f"memory={self.memory:,}/{self.budget:,.0f} "
            f"indexes={len(self.configuration)} "
            f"steps={len(self.steps)} "
            f"whatif={self.whatif_calls} "
            f"runtime={self.runtime_seconds:.3f}s"
            f"{status_note}"
        )

    def step_trace(self) -> tuple[str, ...]:
        """Compact, comparison-friendly signature of the step series.

        One line per step — kind, index transition, formatted
        (``%.6g``) cost and exact memory after the step — independent
        of wall-clock and call-count fields.  This is what the
        property-based equivalence suite and the golden fixtures
        compare: two runs that selected identical steps produce
        identical traces, and a mismatch diffs legibly.
        """
        lines = []
        for step in self.steps:
            before = (
                ",".join(map(str, step.index_before.attributes))
                if step.index_before
                else "-"
            )
            after = (
                ",".join(map(str, step.index_after.attributes))
                if step.index_after
                else "-"
            )
            lines.append(
                f"{step.step_number:03d} {step.kind.value} "
                f"[{before}] -> [{after}] "
                f"cost={step.cost_after:.6g} mem={step.memory_after}"
            )
        return tuple(lines)

    def configuration_signature(self) -> tuple[tuple[str, tuple], ...]:
        """Sorted, hashable view of the final configuration."""
        return tuple(
            sorted(
                (index.table_name, index.attributes)
                for index in self.configuration
            )
        )


def format_steps(
    steps: tuple[ConstructionStep, ...], schema: Schema | None = None
) -> str:
    """Render a construction-step table in the spirit of Fig. 1."""
    if not steps:
        return "(no construction steps)"
    return "\n".join(step.describe(schema) for step in steps)
