"""Adaptive index selection for changing workloads (paper Section VII).

The paper's future-work scenario: when workloads change over time, the
selection must adapt *successively*, and reconfiguration costs decide
whether reorganizing the index configuration is worth it.  This module
implements that loop with three strategies the evaluation compares:

* **static** — select once for the first epoch, never change,
* **reselect** — recompute the selection from scratch every epoch and
  always switch, paying full reconfiguration each time,
* **adaptive** — recompute a candidate selection each epoch but switch
  only when the projected per-epoch saving amortizes the one-off
  reconfiguration cost within a configurable horizon.

All strategies use Algorithm 1 (Extend) as the per-epoch selector.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.budget import ReconfigurationModel
from repro.core.extend import ExtendAlgorithm
from repro.cost.whatif import WhatIfOptimizer
from repro.exceptions import BudgetError
from repro.indexes.configuration import IndexConfiguration
from repro.workload.query import Workload

__all__ = ["AdaptationStrategy", "EpochReport", "AdaptiveAdvisor"]


class AdaptationStrategy(enum.Enum):
    """How the advisor reacts to workload change."""

    STATIC = "static"
    RESELECT = "reselect"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class EpochReport:
    """Outcome of one epoch of the adaptation loop.

    ``workload_cost`` is ``F`` of the *active* configuration on this
    epoch's workload; ``reconfiguration_cost`` is the ``R`` paid this
    epoch (0 when the configuration was kept).
    """

    epoch: int
    configuration: IndexConfiguration
    workload_cost: float
    reconfiguration_cost: float
    switched: bool

    @property
    def total_cost(self) -> float:
        """``F + R`` paid in this epoch (the Eq. 3 objective)."""
        return self.workload_cost + self.reconfiguration_cost


class AdaptiveAdvisor:
    """Maintains an index configuration across workload epochs.

    Parameters
    ----------
    optimizer:
        What-if facade (shared across epochs; its cache keeps what-if
        calls low when workloads overlap between epochs).
    budget:
        Memory budget applied at every epoch.
    reconfiguration:
        The cost model for switching configurations.
    strategy:
        One of :class:`AdaptationStrategy`.
    amortization_epochs:
        For the ADAPTIVE strategy: switch when the projected *per-epoch*
        saving times this horizon exceeds the reconfiguration cost.
    """

    def __init__(
        self,
        optimizer: WhatIfOptimizer,
        budget: float,
        reconfiguration: ReconfigurationModel,
        *,
        strategy: AdaptationStrategy = AdaptationStrategy.ADAPTIVE,
        amortization_epochs: int = 3,
    ) -> None:
        if budget < 0:
            raise BudgetError(f"budget must be >= 0, got {budget}")
        if amortization_epochs < 1:
            raise BudgetError(
                "amortization_epochs must be >= 1, got "
                f"{amortization_epochs}"
            )
        self._optimizer = optimizer
        self._budget = budget
        self._reconfiguration = reconfiguration
        self._strategy = strategy
        self._amortization = amortization_epochs
        self._current = IndexConfiguration()
        self._epoch = 0

    @property
    def configuration(self) -> IndexConfiguration:
        """The currently active configuration."""
        return self._current

    def observe(self, workload: Workload) -> EpochReport:
        """Process one epoch: maybe reconfigure, then report costs."""
        schema = workload.schema
        target = ExtendAlgorithm(self._optimizer).select(
            workload, self._budget
        )
        current_cost = self._optimizer.workload_cost(
            workload, self._current
        )

        switch = False
        if self._epoch == 0 or self._strategy is (
            AdaptationStrategy.RESELECT
        ):
            switch = True
        elif self._strategy is AdaptationStrategy.ADAPTIVE:
            switch_cost = self._reconfiguration.cost(
                schema, target.configuration, self._current
            )
            saving_per_epoch = current_cost - target.total_cost
            switch = (
                saving_per_epoch * self._amortization > switch_cost
            )
        # STATIC never switches after epoch 0.

        paid_reconfiguration = 0.0
        if switch and target.configuration != self._current:
            paid_reconfiguration = self._reconfiguration.cost(
                schema, target.configuration, self._current
            )
            self._current = target.configuration
        elif switch:
            switch = False

        report = EpochReport(
            epoch=self._epoch,
            configuration=self._current,
            workload_cost=self._optimizer.workload_cost(
                workload, self._current
            ),
            reconfiguration_cost=paid_reconfiguration,
            switched=switch,
        )
        self._epoch += 1
        return report

    def run(self, workloads: list[Workload]) -> list[EpochReport]:
        """Process a whole epoch sequence and return all reports."""
        return [self.observe(workload) for workload in workloads]
