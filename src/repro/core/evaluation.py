"""Incremental candidate-evaluation engine for constructive selection.

The naive inner loop of Algorithm 1 (and of the swap local search and
the H4/H5 greedy fills) re-prices *every* candidate step against the
*entire* workload on every round — exactly the per-step cost pattern
CoPhy amortizes via its atomic-cost decomposition and that production
advisors avoid by only re-costing queries affected by a configuration
change.  This module provides the shared machinery that makes step
evaluation incremental:

* :class:`CandidateMove` — a potential construction step whose what-if
  costs are fetched *lazily*: until priced, an admissible optimistic
  bound (every affected query's cost drops to zero) stands in for the
  exact benefit.
* :class:`BenefitTable` — the per-round benefit table keyed by
  ``(candidate, query)``: after a step is applied, only entries whose
  query's current cost changed (computed from the query/attribute
  overlap of the applied index) are invalidated and re-evaluated; all
  other candidates keep their cached benefit.  Candidates are priced
  against the backend only once their optimistic bound could beat the
  currently best exactly-priced candidate — everything else never
  triggers a ``CostSource.query_cost`` call at all.
* :class:`EvaluationConfig` / :class:`EvaluationStatistics` — the knobs
  (``naive_evaluation`` escape hatch, ``parallelism``) and the
  ``evaluation.*`` telemetry counters (invalidations, reuse rate,
  rounds, priced candidates).
* :func:`price_columns` — batch (optionally parallel) pricing of
  per-query cost columns, shared by the swap local search and the
  performance heuristics.

**Equivalence guarantee.**  The engine selects the *identical* step as
the naive exhaustive re-scan: cached benefits are exact (an entry is
only reused when no affected query's cost changed), the pricing bound is
admissible (``f_j(k) >= 0`` so the true benefit never exceeds the
bound), and every candidate whose bound ties or beats the best priced
candidate is priced exactly before the winner is declared — so ties
break on the same deterministic keys as the naive loop.  The
``naive=True`` escape hatch keeps the pre-change exhaustive loop
available for differential testing (see
``tests/core/test_evaluation_properties.py``).

**Parallelism.**  ``parallelism=N`` evaluates and prices candidate
partitions on a thread pool.  This is safe because
``CostSource.query_cost`` is pure and deterministic; backends that are
not thread-compatible (the seeded fault injector, whose RNG is
order-dependent) advertise ``parallel_safe = False`` and the engine
silently falls back to serial execution.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.exceptions import BudgetError
from repro.indexes.index import Index

__all__ = [
    "CandidateMove",
    "BenefitTable",
    "EvaluationConfig",
    "EvaluationStatistics",
    "WarmBenefitStore",
    "WarmSession",
    "price_columns",
]

_PARALLEL_BATCH_MIN = 4
"""Below this many work items a thread pool costs more than it saves."""


@dataclass(frozen=True)
class EvaluationConfig:
    """Knobs of the candidate-evaluation engine.

    Parameters
    ----------
    naive:
        ``True`` restores the pre-engine behavior exactly: every
        candidate is priced eagerly at construction and re-evaluated
        against the full workload every round.  Kept as a differential-
        testing escape hatch (``naive_evaluation=True`` on the advisor).
    parallelism:
        Number of worker threads for candidate evaluation and pricing.
        ``1`` (default) stays serial; larger values partition the
        candidate set across a thread pool.  Ignored (serial fallback)
        when the cost backend is not ``parallel_safe``.
    """

    naive: bool = False
    parallelism: int = 1

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise BudgetError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )

    def effective_parallelism(self, optimizer) -> int:
        """The worker count after the backend-safety check.

        Backends flag thread compatibility via ``parallel_safe`` (the
        seeded fault injector is order-dependent and opts out); absent
        attribute means safe.
        """
        if self.parallelism <= 1:
            return 1
        if not getattr(optimizer, "parallel_safe", True):
            return 1
        return self.parallelism


@dataclass
class EvaluationStatistics:
    """Counters of one engine run (telemetry-bridgeable).

    ``evaluations``/``reused`` count benefit-table entries recomputed
    versus served from cache across all rounds; ``invalidations`` counts
    dirty-set hits; ``priced_candidates``/``pruned_candidates`` count
    moves that were exactly priced against the what-if backend versus
    moves whose optimistic bound never justified pricing.
    """

    rounds: int = 0
    evaluations: int = 0
    reused: int = 0
    invalidations: int = 0
    priced_candidates: int = 0
    pruned_candidates: int = 0
    parallelism: int = 1
    warm_hits: int = 0
    warm_misses: int = 0

    @property
    def reuse_rate(self) -> float:
        """Share of benefit evaluations served from the table."""
        total = self.evaluations + self.reused
        return self.reused / total if total else 0.0

    @property
    def warm_hit_rate(self) -> float:
        """Share of move pricings served from a cross-run warm store.

        0 when the run had no :class:`WarmBenefitStore` (the one-shot
        path) or every priced move was new to the store.
        """
        total = self.warm_hits + self.warm_misses
        return self.warm_hits / total if total else 0.0

    def publish(self, registry, prefix: str = "evaluation") -> None:
        """Bridge the counters into a telemetry
        :class:`~repro.telemetry.metrics.MetricsRegistry` as gauges
        (``evaluation.rounds``, ``evaluation.evaluations``,
        ``evaluation.reused``, ``evaluation.reuse_rate``,
        ``evaluation.invalidations``, ``evaluation.priced_candidates``,
        ``evaluation.pruned_candidates``, ``evaluation.parallelism``).
        """
        registry.gauge(f"{prefix}.rounds").set(self.rounds)
        registry.gauge(f"{prefix}.evaluations").set(self.evaluations)
        registry.gauge(f"{prefix}.reused").set(self.reused)
        registry.gauge(f"{prefix}.reuse_rate").set(self.reuse_rate)
        registry.gauge(f"{prefix}.invalidations").set(self.invalidations)
        registry.gauge(f"{prefix}.priced_candidates").set(
            self.priced_candidates
        )
        registry.gauge(f"{prefix}.pruned_candidates").set(
            self.pruned_candidates
        )
        registry.gauge(f"{prefix}.parallelism").set(self.parallelism)
        registry.gauge(f"{prefix}.warm_hits").set(self.warm_hits)
        registry.gauge(f"{prefix}.warm_misses").set(self.warm_misses)
        registry.gauge(f"{prefix}.warm_hit_rate").set(
            self.warm_hit_rate
        )


class WarmBenefitStore:
    """Cross-run cache of priced candidate cost vectors.

    The per-run :class:`BenefitTable` dies with its construction state;
    a resident advisor (``repro.service``) serving the *same* workload
    repeatedly re-prices the same candidate moves on every request.
    This store keeps the priced ``(new_index -> per-affected-query cost
    vector)`` columns across runs: the affected positions of any
    constructive move (new single, extension, pair seed, branch) are a
    pure function of the created index's attribute tuple over a fixed
    workload, so the attribute tuple is a sufficient key.

    Stored vectors are exactly what the what-if facade returned —
    backends are deterministic, so a warm run selects bit-identical
    steps — and are frozen (non-writeable) so no later run can corrupt
    them.  The store is thread-safe; one instance must only ever be
    used with one workload version (the service allocates a fresh store
    per registration update).
    """

    def __init__(self) -> None:
        self._columns: dict[
            tuple[int, ...], tuple[np.ndarray, np.ndarray]
        ] = {}
        # Memos of pure per-workload derivations (affected-position
        # intersections, index memory footprints).  Like the cost
        # columns they are only valid for one workload version, which
        # is exactly this store's lifetime.  They do not count toward
        # warm hit/miss statistics — those track priced columns only.
        self._positions: dict[frozenset[int], np.ndarray] = {}
        self._memory: dict[tuple[int, ...], int] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._columns)

    def get(
        self, attributes: tuple[int, ...], positions: np.ndarray
    ) -> np.ndarray | None:
        """The stored cost column for an index, or ``None``.

        ``positions`` guards against misuse across workload versions:
        a stored column whose affected-query positions differ from the
        caller's is stale and treated as absent.
        """
        with self._lock:
            entry = self._columns.get(attributes)
        if entry is None:
            return None
        stored_positions, costs = entry
        if not np.array_equal(stored_positions, positions):
            return None
        return costs

    def put(
        self,
        attributes: tuple[int, ...],
        positions: np.ndarray,
        costs: np.ndarray,
    ) -> None:
        """Store a priced cost column (first write wins)."""
        frozen = np.array(costs, dtype=np.float64)
        frozen.setflags(write=False)
        kept_positions = np.array(positions, dtype=np.intp)
        kept_positions.setflags(write=False)
        with self._lock:
            self._columns.setdefault(
                attributes, (kept_positions, frozen)
            )

    def positions_for(
        self, required: frozenset[int]
    ) -> np.ndarray | None:
        """Memoized affected-query positions for an attribute set."""
        with self._lock:
            return self._positions.get(required)

    def remember_positions(
        self, required: frozenset[int], positions: np.ndarray
    ) -> None:
        frozen = np.array(positions, dtype=np.intp)
        frozen.setflags(write=False)
        with self._lock:
            self._positions.setdefault(required, frozen)

    def memory_for(self, attributes: tuple[int, ...]) -> int | None:
        """Memoized memory footprint of an index's attribute tuple."""
        with self._lock:
            return self._memory.get(attributes)

    def remember_memory(
        self, attributes: tuple[int, ...], memory: int
    ) -> None:
        with self._lock:
            self._memory.setdefault(attributes, memory)

    def entries(
        self,
    ) -> tuple[tuple[tuple[int, ...], np.ndarray, np.ndarray], ...]:
        """Stored ``(attributes, positions, costs)`` triples, sorted.

        Deterministic order so durability snapshots of the same store
        are byte-identical.  The arrays are the frozen (non-writeable)
        store-internal ones — callers must not mutate them.
        """
        with self._lock:
            return tuple(
                (attributes, positions, costs)
                for attributes, (positions, costs) in sorted(
                    self._columns.items()
                )
            )

    def clear(self) -> None:
        """Drop every stored column (workload changed)."""
        with self._lock:
            self._columns.clear()
            self._positions.clear()
            self._memory.clear()

    def session(self) -> WarmSession:
        """A per-run view with isolated hit/miss counters."""
        return WarmSession(self)


class WarmSession:
    """One run's view of a :class:`WarmBenefitStore`.

    Counts this run's hits and misses separately from other concurrent
    runs sharing the store, so per-request ``evaluation.warm_*`` gauges
    stay exact under a multi-request service.
    """

    def __init__(self, store: WarmBenefitStore) -> None:
        self._store = store
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def fetch(
        self, attributes: tuple[int, ...], positions: np.ndarray
    ) -> np.ndarray | None:
        """Stored cost column, counting the hit or miss."""
        costs = self._store.get(attributes, positions)
        with self._lock:
            if costs is None:
                self.misses += 1
            else:
                self.hits += 1
        return costs

    def store(
        self,
        attributes: tuple[int, ...],
        positions: np.ndarray,
        costs: np.ndarray,
    ) -> None:
        """Write a freshly priced column back to the shared store."""
        self._store.put(attributes, positions, costs)

    # Pure-derivation memos (uncounted: the warm hit/miss gauges track
    # priced cost columns, not bookkeeping reuse).

    def positions_for(
        self, required: frozenset[int]
    ) -> np.ndarray | None:
        return self._store.positions_for(required)

    def remember_positions(
        self, required: frozenset[int], positions: np.ndarray
    ) -> None:
        self._store.remember_positions(required, positions)

    def memory_for(self, attributes: tuple[int, ...]) -> int | None:
        return self._store.memory_for(attributes)

    def remember_memory(
        self, attributes: tuple[int, ...], memory: int
    ) -> None:
        self._store.remember_memory(attributes, memory)


class CandidateMove:
    """A potential construction step with lazily fetched what-if costs.

    ``costs`` holds the per-affected-query cost vector once priced;
    until then ``pricer`` can produce it on demand and
    :meth:`upper_bound` gives an admissible optimistic benefit (as if
    every affected query's cost dropped to zero).
    """

    __slots__ = (
        "kind",
        "old_index",
        "new_index",
        "memory_delta",
        "positions",
        "costs",
        "weights",
        "reconfiguration_delta",
        "maintenance_penalty",
        "_pricer",
    )

    def __init__(
        self,
        kind,
        old_index: Index | None,
        new_index: Index,
        memory_delta: int,
        positions: np.ndarray,
        weights: np.ndarray,
        reconfiguration_delta: float,
        maintenance_penalty: float = 0.0,
        *,
        costs: np.ndarray | None = None,
        pricer: Callable[[], np.ndarray] | None = None,
    ) -> None:
        self.kind = kind
        self.old_index = old_index
        self.new_index = new_index
        self.memory_delta = memory_delta
        self.positions = positions
        self.costs = costs
        self.weights = weights
        self.reconfiguration_delta = reconfiguration_delta
        self.maintenance_penalty = maintenance_penalty
        self._pricer = pricer

    @property
    def priced(self) -> bool:
        """True once the what-if cost vector has been fetched."""
        return self.costs is not None

    def price(self) -> None:
        """Fetch the what-if costs (idempotent; at most one fetch)."""
        if self.costs is None:
            assert self._pricer is not None
            self.costs = self._pricer()
            self._pricer = None

    def benefit(self, current_costs: np.ndarray) -> float:
        """Net reduction of ``F + R`` if this move were applied now.

        Subtracts the reconfiguration delta and, for workloads with
        writes, the frequency-weighted index-maintenance penalty the
        move would introduce.  Requires the move to be priced.
        """
        reduction = current_costs[self.positions] - self.costs
        np.maximum(reduction, 0.0, out=reduction)
        return (
            float(np.dot(self.weights, reduction))
            - self.reconfiguration_delta
            - self.maintenance_penalty
        )

    def upper_bound(self, current_costs: np.ndarray) -> float:
        """Admissible optimistic benefit of an unpriced move.

        No index can price a query below zero, so the reduction per
        affected query is at most its full current cost; the bound
        therefore never underestimates :meth:`benefit`.
        """
        return (
            float(
                np.dot(self.weights, current_costs[self.positions])
            )
            - self.reconfiguration_delta
            - self.maintenance_penalty
        )

    def sort_key(self) -> tuple:
        """Deterministic tie-breaker across moves of equal ratio."""
        return (
            self.kind.value,
            self.new_index.table_name,
            self.new_index.attributes,
        )


class _Entry:
    """One benefit-table row: cached value plus freshness flag.

    ``value`` is the exact benefit for priced moves and the admissible
    upper bound for unpriced ones; ``dirty`` marks it stale with respect
    to the current per-query cost vector.
    """

    __slots__ = ("move", "value", "dirty")

    def __init__(self, move: CandidateMove) -> None:
        self.move = move
        self.value = 0.0
        self.dirty = True


class BenefitTable:
    """Incremental benefit table over the candidate-move pool.

    The table owns the selection inner loop: it caches per-candidate
    benefits, invalidates only the entries whose affected queries
    changed cost (the *dirty set*), and defers backend pricing of a
    candidate until its optimistic bound could actually win a round.

    ``naive=True`` degrades the table to the pre-engine exhaustive
    re-scan (eager pricing at registration, full re-evaluation per
    round) — the differential-testing escape hatch.
    """

    def __init__(
        self,
        *,
        naive: bool = False,
        parallelism: int = 1,
        statistics: EvaluationStatistics | None = None,
    ) -> None:
        self._naive = naive
        self._parallelism = max(1, parallelism)
        self._entries: dict[CandidateMove, _Entry] = {}
        self._by_position: dict[int, list[CandidateMove]] = {}
        # Incremental partitions of ``_entries`` (insertion-ordered sets
        # via dict keys) so the selection loop never re-scans the whole
        # pool: entries move between ``_unpriced`` and ``_priced``
        # exactly once (at pricing), and ``_dirty`` tracks staleness.
        self._dirty: dict[_Entry, None] = {}
        self._unpriced: dict[_Entry, None] = {}
        self._priced: dict[_Entry, None] = {}
        self.statistics = statistics or EvaluationStatistics()
        self.statistics.parallelism = self._parallelism

    # ------------------------------------------------------------------
    # Pool membership
    # ------------------------------------------------------------------

    def register(self, move: CandidateMove) -> None:
        """Add a candidate move (initially dirty, possibly unpriced)."""
        if self._naive:
            move.price()
            self._entries[move] = _Entry(move)
            return
        entry = _Entry(move)
        self._entries[move] = entry
        self._dirty[entry] = None
        if move.costs is not None:
            self._priced[entry] = None
        else:
            self._unpriced[entry] = None
        for position in move.positions:
            self._by_position.setdefault(int(position), []).append(move)

    def retire(self, move: CandidateMove) -> None:
        """Drop a candidate move from the table."""
        entry = self._entries.pop(move, None)
        if entry is None:
            return
        if self._naive:
            return
        self._dirty.pop(entry, None)
        self._unpriced.pop(entry, None)
        self._priced.pop(entry, None)
        for position in move.positions:
            bucket = self._by_position.get(int(position))
            if bucket is not None:
                try:
                    bucket.remove(move)
                except ValueError:
                    pass

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, move: CandidateMove) -> bool:
        return move in self._entries

    def moves(self) -> Iterable[CandidateMove]:
        """All pooled moves, in registration order."""
        return self._entries.keys()

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate(self, changed_positions: Iterable[int]) -> None:
        """Mark entries overlapping the changed queries as dirty.

        ``changed_positions`` are the workload positions whose current
        cost just changed (the queries the applied index improved —
        exactly the queries sharing the changed table/attribute
        prefix).  Entries whose affected-query set is disjoint keep
        their cached benefit.
        """
        if self._naive:
            return
        invalidated = 0
        for position in changed_positions:
            for move in self._by_position.get(int(position), ()):
                entry = self._entries.get(move)
                if entry is not None and not entry.dirty:
                    entry.dirty = True
                    self._dirty[entry] = None
                    invalidated += 1
        self.statistics.invalidations += invalidated

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def best(
        self,
        current: np.ndarray,
        runner_up_count: int = 0,
        max_memory_delta: float | None = None,
    ) -> tuple[
        tuple[CandidateMove, float] | None,
        list[tuple[CandidateMove, float, float]],
    ]:
        """The move with the best benefit/memory ratio, plus runners-up.

        Mirrors the naive exhaustive scan exactly: only moves with
        strictly positive net benefit qualify; with ``max_memory_delta``
        moves that would not fit the remaining budget are skipped; ties
        on the ratio break by larger absolute benefit, then by the
        deterministic move key.  Runners-up come back as
        ``(move, benefit, ratio)``.
        """
        self.statistics.rounds += 1
        if self._naive:
            return self._best_naive(
                current, runner_up_count, max_memory_delta
            )

        self._refresh(current)
        needed = runner_up_count + 1

        # Price lazily: keep pricing the optimistically best unpriced
        # candidates until every remaining bound falls strictly below
        # the ``needed``-th best exactly-priced ratio — from then on no
        # unpriced move can appear among (or tie into) the winners.
        contenders: list[_Entry] | None = None
        while True:
            threshold = self._priced_threshold(
                needed, max_memory_delta
            )
            if contenders is None:
                contenders = [
                    entry
                    for entry in self._unpriced
                    if entry.value > 0.0
                    and (
                        max_memory_delta is None
                        or entry.move.memory_delta <= max_memory_delta
                    )
                    and entry.value / entry.move.memory_delta
                    >= threshold
                ]
                contenders.sort(
                    key=lambda entry: -(
                        entry.value / entry.move.memory_delta
                    )
                )
            else:
                # Pricing only adds priced entries, so the threshold is
                # monotonically non-decreasing within one call: the
                # survivors of the previous (already sorted) contender
                # list are exactly the rescan result — no second pool
                # scan, no re-sort.
                contenders = [
                    entry
                    for entry in contenders
                    if entry.value / entry.move.memory_delta
                    >= threshold
                ]
            if not contenders:
                break
            # Serial runs price one contender at a time — the classic
            # lazy-greedy minimum.  Parallel runs price an optimistic
            # batch per round trip: a few extra pricings buy N-wide
            # backend concurrency.
            if self._parallelism > 1:
                batch = contenders[
                    : max(needed, _PARALLEL_BATCH_MIN * self._parallelism)
                ]
            else:
                batch = contenders[:needed]
            self._price(batch, current)
            contenders = contenders[len(batch):]

        return self._pick(current, runner_up_count, max_memory_delta)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _best_naive(
        self,
        current: np.ndarray,
        runner_up_count: int,
        max_memory_delta: float | None,
    ):
        """The pre-engine exhaustive re-scan, bit for bit."""
        scored: list[tuple[float, float, CandidateMove]] = []
        for move in self._entries:
            if (
                max_memory_delta is not None
                and move.memory_delta > max_memory_delta
            ):
                continue
            benefit = move.benefit(current)
            self.statistics.evaluations += 1
            if benefit <= 0.0:
                continue
            scored.append((benefit / move.memory_delta, benefit, move))
        return self._rank(scored, runner_up_count)

    def _refresh(self, current: np.ndarray) -> None:
        """Re-evaluate dirty entries; reuse everything else.

        Priced entries get their exact benefit, unpriced ones their
        admissible bound.  Clean entries are exact by the invalidation
        invariant: none of their affected queries changed cost since
        the last evaluation.
        """
        dirty = list(self._dirty)
        self.statistics.evaluations += len(dirty)
        self.statistics.reused += len(self._entries) - len(dirty)
        if not dirty:
            return

        def evaluate(entry: _Entry) -> None:
            move = entry.move
            entry.value = (
                move.benefit(current)
                if move.costs is not None
                else move.upper_bound(current)
            )
            entry.dirty = False

        self._each(evaluate, dirty)
        self._dirty.clear()

    def _priced_threshold(
        self, needed: int, max_memory_delta: float | None
    ) -> float:
        """Ratio of the ``needed``-th best qualifying priced entry.

        Unpriced moves whose bound stays strictly below this can never
        enter the winner set; with fewer than ``needed`` qualifying
        priced entries everything optimistic must be priced
        (``-inf``).
        """
        ratios: list[float] = []
        for entry in self._priced:
            move = entry.move
            if entry.value <= 0.0:
                continue
            if (
                max_memory_delta is not None
                and move.memory_delta > max_memory_delta
            ):
                continue
            ratios.append(entry.value / move.memory_delta)
        if len(ratios) < needed:
            return float("-inf")
        ratios.sort(reverse=True)
        return ratios[needed - 1]

    def _price(
        self, batch: Sequence[_Entry], current: np.ndarray
    ) -> None:
        """Exactly price a batch of optimistic entries."""
        self.statistics.priced_candidates += len(batch)

        def resolve(entry: _Entry) -> None:
            entry.move.price()
            entry.value = entry.move.benefit(current)

        self._each(resolve, batch)
        # Partition moves happen serially: worker threads only touch
        # entry fields, never the (unsynchronised) dicts.
        for entry in batch:
            self._unpriced.pop(entry, None)
            self._priced[entry] = None

    def _pick(
        self,
        current: np.ndarray,
        runner_up_count: int,
        max_memory_delta: float | None,
    ):
        scored = [
            (entry.value / entry.move.memory_delta, entry.value, entry.move)
            for entry in self._entries.values()
            if entry.move.costs is not None
            and entry.value > 0.0
            and (
                max_memory_delta is None
                or entry.move.memory_delta <= max_memory_delta
            )
        ]
        return self._rank(scored, runner_up_count)

    @staticmethod
    def _rank(
        scored: list[tuple[float, float, CandidateMove]],
        runner_up_count: int,
    ):
        if not scored:
            return None, []
        scored.sort(
            key=lambda entry: (-entry[0], -entry[1], entry[2].sort_key())
        )
        best_ratio, best_benefit, best = scored[0]
        runners_up = [
            (entry[2], entry[1], entry[0])
            for entry in scored[1 : 1 + runner_up_count]
        ]
        return (best, best_benefit), runners_up

    def _each(self, function, items: Sequence) -> None:
        """Apply ``function`` to every item, on threads when it pays.

        Worker pools are per-batch (created and joined inside this
        call), so an aborted run can never leak threads.  Each item is
        touched by exactly one worker and results are merged by entry
        identity, so the outcome is deterministic regardless of
        scheduling.
        """
        if (
            self._parallelism <= 1
            or len(items) < _PARALLEL_BATCH_MIN
        ):
            for item in items:
                function(item)
            return
        with ThreadPoolExecutor(
            max_workers=self._parallelism,
            thread_name_prefix="repro-eval",
        ) as pool:
            for _ in pool.map(
                function,
                items,
                chunksize=max(1, len(items) // self._parallelism),
            ):
                pass

    def pending_candidates(self) -> int:
        """Moves still unpriced (each saved its backend pricing calls)."""
        if not self._naive:
            return len(self._unpriced)
        return sum(
            1 for move in self._entries if not move.priced
        )

    def close(self) -> None:
        """Finalize the pruned-candidate counter (idempotent-ish:
        call once, at the natural end of a run)."""
        self.statistics.pruned_candidates += self.pending_candidates()


def price_columns(
    optimizer,
    queries: Sequence,
    indexes: Iterable[Index],
    *,
    parallelism: int = 1,
) -> None:
    """Warm the what-if facade for every ``(query, index)`` column.

    Shared by the swap local search (pool construction) and the
    performance heuristics (ranking): both need full per-query cost
    columns for many candidates, which is embarrassingly parallel
    because ``CostSource.query_cost`` is pure.  Serial when the backend
    is not ``parallel_safe`` or the batch is small; results land in the
    facade cache, so the subsequent (serial, deterministic) ranking
    loops are pure cache hits either way.
    """
    candidates = [index for index in dict.fromkeys(indexes)]
    if getattr(optimizer, "supports_pair_batch", False):
        # Whole-table pair pricing: every applicable (query, candidate)
        # pair flattens into one backend sweep — same pair set and the
        # same facade accounting as the per-candidate loops below.
        # Attribute ids are owned by one table, so leading-attribute
        # membership is exactly Index.is_applicable_to.
        by_leading: dict[int, list] = {}
        for query in queries:
            for attribute_id in query.attributes:
                by_leading.setdefault(attribute_id, []).append(query)
        optimizer.pair_costs(
            [
                (query, index)
                for index in candidates
                for query in by_leading.get(index.leading_attribute, ())
            ]
        )
        return
    if getattr(optimizer, "supports_batch", False):
        # The compiled kernel prices a whole applicable column in one
        # batched call — cheaper than thread fan-out, and the facade
        # accounting matches the per-pair loops below exactly.
        for index in candidates:
            applicable = [
                query
                for query in queries
                if index.is_applicable_to(query)
            ]
            if applicable:
                optimizer.index_costs(applicable, index)
        return
    workers = parallelism
    if workers > 1 and not getattr(optimizer, "parallel_safe", True):
        workers = 1
    if workers <= 1 or len(candidates) < _PARALLEL_BATCH_MIN:
        for index in candidates:
            for query in queries:
                if index.is_applicable_to(query):
                    optimizer.index_cost(query, index)
        return

    def warm(index: Index) -> None:
        for query in queries:
            if index.is_applicable_to(query):
                optimizer.index_cost(query, index)

    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-price"
    ) as pool:
        for _ in pool.map(
            warm,
            candidates,
            chunksize=max(1, len(candidates) // workers),
        ):
            pass
