"""Core contribution: the recursive constructive selection algorithm."""

from repro.core.budget import NO_RECONFIGURATION, ReconfigurationModel
from repro.core.dynamic import (
    AdaptationStrategy,
    AdaptiveAdvisor,
    EpochReport,
)
from repro.core.evaluation import (
    BenefitTable,
    CandidateMove,
    EvaluationConfig,
    EvaluationStatistics,
    price_columns,
)
from repro.core.extend import ExtendAlgorithm, ExtendResult
from repro.core.frontier import Frontier, FrontierPoint, frontier_from_steps
from repro.core.localsearch import swap_local_search
from repro.core.steps import (
    ConstructionStep,
    SelectionResult,
    StepKind,
    format_steps,
)
from repro.core.variants import (
    VARIANTS,
    extend_with_missed_opportunities,
    extend_with_n_best_singles,
    extend_with_pair_seeds,
    extend_with_pruning,
    plain_extend,
)

__all__ = [
    "AdaptationStrategy",
    "AdaptiveAdvisor",
    "BenefitTable",
    "CandidateMove",
    "ConstructionStep",
    "EpochReport",
    "EvaluationConfig",
    "EvaluationStatistics",
    "ExtendAlgorithm",
    "ExtendResult",
    "Frontier",
    "FrontierPoint",
    "NO_RECONFIGURATION",
    "ReconfigurationModel",
    "SelectionResult",
    "StepKind",
    "VARIANTS",
    "extend_with_missed_opportunities",
    "extend_with_n_best_singles",
    "extend_with_pair_seeds",
    "extend_with_pruning",
    "format_steps",
    "frontier_from_steps",
    "plain_extend",
    "price_columns",
    "swap_local_search",
]
