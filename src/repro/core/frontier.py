"""Efficient frontier of performance vs. memory.

Algorithm 1's construction steps trace out growing configurations; reading
the trace at every prefix yields one (memory, cost) point per step — the
approximation of the Pareto-efficient frontier the paper plots in
Figs. 2–5.  This module extracts, queries, and compares such frontiers,
for Extend traces as well as for point sets produced by per-budget runs
of CoPhy and the heuristics.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.steps import ConstructionStep

__all__ = ["FrontierPoint", "Frontier", "frontier_from_steps"]


@dataclass(frozen=True, order=True)
class FrontierPoint:
    """One (memory, cost) combination on a frontier."""

    memory: float
    cost: float


class Frontier:
    """A performance/memory frontier.

    Stores the Pareto-efficient subset of the supplied points: increasing
    memory, strictly decreasing cost.  Querying with :meth:`cost_at`
    returns the best achievable cost within a memory budget (a step
    function — configurations do not interpolate).
    """

    def __init__(self, points: Iterable[FrontierPoint]) -> None:
        efficient: list[FrontierPoint] = []
        best_cost = float("inf")
        for point in sorted(points, key=lambda p: (p.memory, p.cost)):
            if point.cost < best_cost:
                efficient.append(point)
                best_cost = point.cost
        self._points = tuple(efficient)
        self._memories = [point.memory for point in self._points]

    @property
    def points(self) -> tuple[FrontierPoint, ...]:
        """Pareto-efficient points, ascending memory."""
        return self._points

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    @property
    def is_empty(self) -> bool:
        """Whether no point lies on the frontier."""
        return not self._points

    def cost_at(self, budget: float) -> float:
        """Best cost achievable with memory ``<= budget``.

        Returns ``inf`` when even the smallest configuration exceeds the
        budget (callers typically fall back to the no-index cost).
        """
        position = bisect.bisect_right(self._memories, budget)
        if position == 0:
            return float("inf")
        return self._points[position - 1].cost

    def sampled(self, budgets: Sequence[float]) -> list[FrontierPoint]:
        """The frontier evaluated at the given budgets (for plotting)."""
        return [
            FrontierPoint(memory=budget, cost=self.cost_at(budget))
            for budget in budgets
        ]

    def dominates(self, other: "Frontier", budgets: Sequence[float]) -> bool:
        """Whether this frontier is at least as good at every budget."""
        return all(
            self.cost_at(budget) <= other.cost_at(budget)
            for budget in budgets
        )

    def mean_relative_gap(
        self, reference: "Frontier", budgets: Sequence[float]
    ) -> float:
        """Average relative cost excess over ``reference`` across budgets.

        0.0 means this frontier matches the reference everywhere; 0.03
        means on average 3 % worse — the paper reports H6 "always within
        3 % of the optimal solution" in the end-to-end setting.
        Budgets where the reference itself is infeasible are skipped.
        """
        gaps: list[float] = []
        for budget in budgets:
            reference_cost = reference.cost_at(budget)
            if reference_cost == float("inf") or reference_cost <= 0:
                continue
            gaps.append(
                (self.cost_at(budget) - reference_cost) / reference_cost
            )
        if not gaps:
            return 0.0
        return sum(gaps) / len(gaps)


def frontier_from_steps(
    steps: Iterable[ConstructionStep],
    *,
    initial_cost: float,
    initial_memory: float = 0.0,
) -> Frontier:
    """Build the frontier traced by a construction-step sequence.

    Includes the starting point (no indexes: full sequential cost, zero
    memory), then one point per applied step.
    """
    points = [FrontierPoint(memory=initial_memory, cost=initial_cost)]
    for step in steps:
        points.append(
            FrontierPoint(
                memory=float(step.memory_after), cost=step.cost_after
            )
        )
    return Frontier(points)
