"""Algorithm 1 — the recursive constructive index-selection strategy (H6).

The algorithm grows an index set ``I`` step by step.  Each step considers

* **(3a)** creating a new single-attribute index ``{i}`` (for attributes
  whose single-attribute index is not yet selected), and
* **(3b)** appending an attribute ``i`` to the end of an existing index
  ``k`` ("morphing" ``k`` into ``k·i``),

and applies the step with the best ratio of *additional performance*
(reduction of ``F + R``) per *additional memory*.  Because every step is
priced against the current selection, index interaction is accounted for
by construction; because appended attributes preserve all existing
prefixes, no step can regress a query's cost.

The implementation mirrors the paper's efficiency argument (Section
III-A): each potential step keeps the list of queries it could possibly
affect — for a new single-attribute index these are the queries accessing
the attribute, for an extension of ``k`` by ``i`` the queries containing
*all* of ``k``'s attributes plus ``i`` (all other queries keep their usable
prefix and hence their cost).  What-if costs are fetched at most once per
``(query, index)`` pair through the caching facade.

Step evaluation itself runs on the incremental engine of
:mod:`repro.core.evaluation`: per-candidate benefits live in a
:class:`~repro.core.evaluation.BenefitTable` that is invalidated only
for candidates whose affected queries changed cost after a step, and
candidates are priced against the backend lazily — only once their
optimistic bound could win a round.  The expensive optimizer is thereby
called strictly fewer times than the "small number" the paper
advertises (``≈ 2·Q·q̄`` in total); the pre-engine exhaustive loop
remains available via ``EvaluationConfig(naive=True)`` and provably
selects the identical step sequence (see
``tests/core/test_evaluation_properties.py``).

Optional extensions of Remark 1 are available as constructor flags; see
:mod:`repro.core.variants` for the named presets used in the ablations.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass

import numpy as np

from repro.core.budget import NO_RECONFIGURATION, ReconfigurationModel
from repro.core.evaluation import (
    BenefitTable,
    CandidateMove,
    EvaluationConfig,
    EvaluationStatistics,
    WarmBenefitStore,
)
from repro.core.steps import (
    STATUS_COMPLETED,
    STATUS_DEGRADED,
    ConstructionStep,
    SelectionResult,
    StepKind,
)
from repro.cost.whatif import WhatIfOptimizer
from repro.exceptions import BudgetError
from repro.indexes.configuration import IndexConfiguration
from repro.indexes.index import Index, canonical_index
from repro.indexes.memory import index_memory
from repro.resilience.deadline import Deadline
from repro.telemetry import NULL_TELEMETRY, StepEvent, Telemetry
from repro.workload.query import Workload

__all__ = ["ExtendAlgorithm", "ExtendResult"]

_REJECTED_LOG_COUNT = 3
"""Runner-up moves logged as rejected step events per selection step."""


@dataclass(frozen=True)
class ExtendResult(SelectionResult):
    """Selection result with the full construction trace.

    Inherits everything from :class:`SelectionResult`; Extend always
    populates ``steps``, from which the efficient frontier can be read
    (see :mod:`repro.core.frontier`).
    """


class ExtendAlgorithm:
    """Recursive constructive multi-attribute index selection (H6).

    Parameters
    ----------
    optimizer:
        The what-if facade providing ``f_j(k)`` costs.
    max_steps:
        Optional cap on construction steps (Algorithm 1 Step 4 allows a
        "predefined maximum number of construction steps").
    max_index_width:
        Optional cap on index width.  The paper imposes none; a cap is
        useful to bound what-if calls on adversarial workloads.
    n_best_singles:
        Remark 1 (1): only the ``n`` initially most beneficial (by
        benefit/size ratio) single-attribute indexes are offered as new
        seeds.  ``None`` (default) considers all attributes.
    prune_unused:
        Remark 1 (2): after each step, drop selected indexes that no
        query uses anymore.
    pair_seeds:
        Remark 1 (4): additionally offer new *two*-attribute indexes
        (canonical permutation of co-accessed pairs) as seeds.
    missed_opportunities:
        Remark 1 (3): remember up to this many runner-up extension moves
        per step; once their base index has been morphed away, they
        become "branch" moves that create a separate index sharing the
        old leading attributes.  0 disables the mechanism.
    reconfiguration:
        Cost model for ``R(I*, Ī*)``; defaults to free reconfiguration.
    baseline:
        The existing selection ``Ī*`` reconfiguration is priced against.
    telemetry:
        Observability session (see :mod:`repro.telemetry`).  When
        enabled, every run traces one ``extend.step`` span per selection
        step and emits chosen/rejected :class:`StepEvent` records plus
        the ``evaluation.*`` engine gauges; the default
        :data:`~repro.telemetry.NULL_TELEMETRY` reduces all
        instrumentation to no-ops.
    evaluation:
        Candidate-evaluation engine knobs
        (:class:`~repro.core.evaluation.EvaluationConfig`):
        ``naive=True`` restores the pre-engine exhaustive re-scan (the
        differential-testing escape hatch), ``parallelism=N`` evaluates
        and prices candidate partitions on a thread pool.  The default
        is the incremental serial engine, which selects identical steps
        with strictly fewer what-if calls.
    warm_store:
        Optional :class:`~repro.core.evaluation.WarmBenefitStore`
        shared across runs over the *same* workload: priced candidate
        cost columns are served from (and written back to) the store,
        so a repeated selection re-prices nothing.  Stored columns are
        exactly what pricing would return, so warm runs select
        bit-identical steps; hits/misses surface as the
        ``evaluation.warm_*`` gauges.
    skip_oversized:
        When ``True`` (default), a step that would overshoot the budget
        is skipped and smaller fitting steps are still considered —
        filling tight budgets considerably better.  ``False`` stops the
        construction at the first non-fitting step (the strict reading
        of Definition 1's "as long as A is not exceeded", useful when
        one trace should serve every budget by truncation).
    """

    name = "H6"

    def __init__(
        self,
        optimizer: WhatIfOptimizer,
        *,
        max_steps: int | None = None,
        max_index_width: int | None = None,
        n_best_singles: int | None = None,
        prune_unused: bool = False,
        pair_seeds: bool = False,
        missed_opportunities: int = 0,
        reconfiguration: ReconfigurationModel = NO_RECONFIGURATION,
        baseline: IndexConfiguration | None = None,
        telemetry: Telemetry = NULL_TELEMETRY,
        skip_oversized: bool = True,
        evaluation: EvaluationConfig | None = None,
        warm_store: WarmBenefitStore | None = None,
    ) -> None:
        if max_steps is not None and max_steps < 1:
            raise BudgetError(f"max_steps must be >= 1, got {max_steps}")
        if max_index_width is not None and max_index_width < 1:
            raise BudgetError(
                f"max_index_width must be >= 1, got {max_index_width}"
            )
        if n_best_singles is not None and n_best_singles < 1:
            raise BudgetError(
                f"n_best_singles must be >= 1, got {n_best_singles}"
            )
        if missed_opportunities < 0:
            raise BudgetError(
                "missed_opportunities must be >= 0, got "
                f"{missed_opportunities}"
            )
        self._optimizer = optimizer
        self._max_steps = max_steps
        self._max_width = max_index_width
        self._n_best_singles = n_best_singles
        self._prune_unused = prune_unused
        self._pair_seeds = pair_seeds
        self._missed_budget = missed_opportunities
        self._reconfiguration = reconfiguration
        self._baseline = baseline or IndexConfiguration()
        self._telemetry = telemetry
        self._skip_oversized = skip_oversized
        self._evaluation = evaluation or EvaluationConfig()
        self._warm_store = warm_store
        self.last_evaluation_statistics: EvaluationStatistics | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def with_warm_store(
        self, warm_store: WarmBenefitStore | None
    ) -> ExtendAlgorithm:
        """A copy of this algorithm bound to ``warm_store``.

        The warm-start entry point of the multi-budget sweep engine
        (:mod:`repro.core.sweep`): ablation factories keep configuring
        the algorithm however they like, and the engine re-binds the
        product to its shared store without knowing the constructor
        arguments.  The copy shares no mutable selection state — every
        ``select`` call builds its construction state from scratch.
        """
        clone = copy.copy(self)
        clone._warm_store = warm_store
        clone.last_evaluation_statistics = None
        return clone

    def select(
        self,
        workload: Workload,
        budget: float,
        *,
        deadline: Deadline | None = None,
    ) -> ExtendResult:
        """Run the construction until the budget (or another stop) hits.

        Following Definition 1 (H6), the step series is applied "as long
        as A is not exceeded": construction stops at the first step whose
        memory would overshoot ``budget``.  Other stop criteria: no step
        with positive net benefit remains, ``max_steps`` is reached, or
        ``deadline`` expired — the last case returns the feasible
        best-so-far configuration with ``status="degraded"`` (every
        applied step left the selection within budget, so truncation is
        always safe).
        """
        if budget < 0:
            raise BudgetError(f"budget must be >= 0, got {budget}")
        deadline = deadline or Deadline.none()
        status = STATUS_COMPLETED
        telemetry = self._telemetry
        tracer = telemetry.tracer
        statistics = self._optimizer.statistics
        started = time.perf_counter()
        calls_before = statistics.calls

        with tracer.span(
            "extend.select", algorithm=self.name, budget=budget
        ) as run_span:
            with tracer.span("extend.seed"):
                state = _ConstructionState(
                    workload,
                    self._optimizer,
                    self._reconfiguration,
                    self._baseline,
                    max_width=self._max_width,
                    n_best_singles=self._n_best_singles,
                    pair_seeds=self._pair_seeds,
                    evaluation=self._evaluation,
                    warm_store=self._warm_store,
                )

            steps: list[ConstructionStep] = []
            missed: list[tuple[tuple[int, ...], int]] = []
            # With telemetry on, ask for a few extra runners-up so the
            # best rejected candidates appear in the step-event log even
            # when the missed-opportunity mechanism is off.
            runner_request = self._missed_budget
            if telemetry.enabled:
                runner_request = max(runner_request, _REJECTED_LOG_COUNT)

            while self._max_steps is None or len(steps) < self._max_steps:
                if deadline.expired:
                    status = STATUS_DEGRADED
                    break
                step_number = len(steps) + 1
                step_calls = statistics.calls
                step_hits = statistics.cache_hits
                with tracer.span(
                    "extend.step", step=step_number
                ) as step_span:
                    state.materialize_branches(missed, self._missed_budget)
                    remaining = budget - state.memory
                    if self._skip_oversized:
                        best, runners_up = state.best_move(
                            runner_request, max_memory_delta=remaining
                        )
                        if best is None:
                            step_span.annotate("outcome", "exhausted")
                            break
                    else:
                        best, runners_up = state.best_move(runner_request)
                        if best is None:
                            step_span.annotate("outcome", "exhausted")
                            break
                        if best[0].memory_delta > remaining:
                            step_span.annotate("outcome", "over-budget")
                            break
                    move, benefit = best
                    step = state.apply(move, benefit, step_number)
                    steps.append(step)
                    step_span.annotate("outcome", "applied")
                    step_span.annotate("kind", step.kind.value)
                    step_span.annotate(
                        "whatif_calls", statistics.calls - step_calls
                    )
                    step_span.annotate(
                        "cache_hits", statistics.cache_hits - step_hits
                    )
                for runner, _, _ in runners_up[: self._missed_budget]:
                    if runner.kind is StepKind.EXTEND and runner.old_index:
                        missed.append(
                            (
                                runner.old_index.attributes,
                                runner.new_index.attributes[-1],
                            )
                        )
                if telemetry.enabled:
                    self._emit_step_events(
                        telemetry,
                        step,
                        runners_up,
                        whatif_calls=statistics.calls - step_calls,
                        cache_hits=statistics.cache_hits - step_hits,
                        candidates=state.last_candidates_considered,
                    )
                if self._prune_unused:
                    pruned = state.prune_unused(len(steps) + 1)
                    steps.extend(pruned)
                    if telemetry.enabled:
                        for removal in pruned:
                            telemetry.emit_step(
                                self._removal_event(removal)
                            )

            state.close()
            self.last_evaluation_statistics = state.evaluation_statistics
            runtime = time.perf_counter() - started
            configuration = state.configuration
            reconfiguration_cost = self._reconfiguration.cost(
                workload.schema, configuration, self._baseline
            )
            if telemetry.enabled:
                run_span.annotate("steps", len(steps))
                run_span.annotate("status", status)
                run_span.annotate("total_cost", state.total_cost)
                run_span.annotate("memory", state.memory)
                telemetry.metrics.gauge("extend.memory").set(state.memory)
                telemetry.metrics.gauge("extend.total_cost").set(
                    state.total_cost
                )
                telemetry.metrics.counter(
                    "extend.whatif_calls"
                ).increment(statistics.calls - calls_before)
                telemetry.record_whatif(statistics)
                telemetry.record_evaluation(state.evaluation_statistics)
        return ExtendResult(
            algorithm=self.name,
            configuration=configuration,
            total_cost=state.total_cost,
            memory=state.memory,
            budget=budget,
            runtime_seconds=runtime,
            whatif_calls=statistics.calls - calls_before,
            reconfiguration_cost=reconfiguration_cost,
            steps=tuple(steps),
            status=status,
        )

    def _emit_step_events(
        self,
        telemetry: Telemetry,
        step: ConstructionStep,
        runners_up: list[tuple[CandidateMove, float, float]],
        *,
        whatif_calls: int,
        cache_hits: int,
        candidates: int,
    ) -> None:
        """One chosen event for the applied step, plus its best rejected
        rivals (estimated benefit, no before/after state — they never
        happened)."""
        assert step.index_after is not None
        telemetry.metrics.counter("extend.steps").increment()
        telemetry.emit_step(
            StepEvent(
                algorithm=self.name,
                step_number=step.step_number,
                action=step.kind.value,
                table=step.index_after.table_name,
                index_before=(
                    step.index_before.attributes
                    if step.index_before
                    else None
                ),
                index_after=step.index_after.attributes,
                chosen=True,
                benefit=step.benefit,
                memory_delta=step.memory_delta,
                ratio=step.ratio,
                cost_before=step.cost_before,
                cost_after=step.cost_after,
                memory_before=step.memory_before,
                memory_after=step.memory_after,
                whatif_calls=whatif_calls,
                cache_hits=cache_hits,
                candidates_considered=candidates,
            )
        )
        for runner, benefit, ratio in runners_up[:_REJECTED_LOG_COUNT]:
            telemetry.emit_step(
                StepEvent(
                    algorithm=self.name,
                    step_number=step.step_number,
                    action=runner.kind.value,
                    table=runner.new_index.table_name,
                    index_before=(
                        runner.old_index.attributes
                        if runner.old_index
                        else None
                    ),
                    index_after=runner.new_index.attributes,
                    chosen=False,
                    benefit=benefit,
                    memory_delta=runner.memory_delta,
                    ratio=ratio,
                )
            )

    def _removal_event(self, step: ConstructionStep) -> StepEvent:
        """Chosen event for a Remark 1 (2) prune (REMOVE) step."""
        assert step.index_before is not None
        return StepEvent(
            algorithm=self.name,
            step_number=step.step_number,
            action=step.kind.value,
            table=step.index_before.table_name,
            index_before=step.index_before.attributes,
            index_after=None,
            chosen=True,
            benefit=step.benefit,
            memory_delta=step.memory_delta,
            ratio=step.ratio,
            cost_before=step.cost_before,
            cost_after=step.cost_after,
            memory_before=step.memory_before,
            memory_after=step.memory_after,
        )


class _ConstructionState:
    """Mutable state of one Extend run."""

    def __init__(
        self,
        workload: Workload,
        optimizer: WhatIfOptimizer,
        reconfiguration: ReconfigurationModel,
        baseline: IndexConfiguration,
        *,
        max_width: int | None,
        n_best_singles: int | None,
        pair_seeds: bool,
        evaluation: EvaluationConfig,
        warm_store: WarmBenefitStore | None = None,
    ) -> None:
        self._workload = workload
        self._schema = workload.schema
        self._optimizer = optimizer
        self._warm = (
            warm_store.session() if warm_store is not None else None
        )
        self._reconfiguration = reconfiguration
        self._baseline = baseline
        self._max_width = max_width

        queries = workload.queries
        self._queries = queries
        self._weights = np.array(
            [query.frequency for query in queries], dtype=np.float64
        )
        if getattr(optimizer, "supports_batch", False):
            self._current = np.asarray(
                optimizer.sequential_costs(queries), dtype=np.float64
            )
        else:
            self._current = np.array(
                [optimizer.sequential_cost(query) for query in queries],
                dtype=np.float64,
            )
        self._best_index: list[Index | None] = [None] * len(queries)

        # Inverted lists: attribute id -> positions of queries using it.
        self._queries_with: dict[int, np.ndarray] = {}
        by_attribute: dict[int, list[int]] = {}
        for position, query in enumerate(queries):
            for attribute_id in query.attributes:
                by_attribute.setdefault(attribute_id, []).append(position)
        for attribute_id, positions in by_attribute.items():
            self._queries_with[attribute_id] = np.array(
                positions, dtype=np.intp
            )
        self._query_attribute_sets = [
            query.attributes for query in queries
        ]

        self._write_queries = [
            query for query in queries if not query.is_select
        ]

        self._selected: set[Index] = set(baseline)
        self.memory = sum(
            index_memory(self._schema, index) for index in self._selected
        )
        self._maintenance_total = sum(
            query.frequency * optimizer.maintenance_cost(query, index)
            for query in self._write_queries
            for index in self._selected
        )
        if self._selected:
            for position, query in enumerate(queries):
                # Read/locate part only; maintenance is tracked in
                # self._maintenance_total.
                cost = min(
                    (
                        optimizer.index_cost(query, index)
                        for index in self._selected
                        if index.is_applicable_to(query)
                    ),
                    default=self._current[position],
                )
                if cost < self._current[position]:
                    self._current[position] = cost

        self.last_candidates_considered = 0
        self._table = BenefitTable(
            naive=evaluation.naive,
            parallelism=evaluation.effective_parallelism(optimizer),
        )
        self._single_moves: dict[int, CandidateMove] = {}
        self._extension_moves: dict[tuple[Index, int], CandidateMove] = {}
        self._branch_moves: dict[
            tuple[tuple[int, ...], int], CandidateMove
        ] = {}
        self._seed_singles(n_best_singles)
        if pair_seeds:
            self._seed_pairs()
        for index in self._selected:
            self._add_extension_moves(index)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    @property
    def configuration(self) -> IndexConfiguration:
        """The current selection ``I``."""
        return IndexConfiguration(self._selected)

    @property
    def total_cost(self) -> float:
        """Current workload cost ``F(I)`` including index maintenance."""
        return (
            float(np.dot(self._weights, self._current))
            + self._maintenance_total
        )

    @property
    def evaluation_statistics(self):
        """Engine counters of this run (``evaluation.*`` gauges)."""
        return self._table.statistics

    def close(self) -> None:
        """Finalize the engine (fold never-priced moves into stats)."""
        self._table.close()
        if self._warm is not None:
            statistics = self._table.statistics
            statistics.warm_hits += self._warm.hits
            statistics.warm_misses += self._warm.misses

    def _maintenance_delta(
        self, new_index: Index, old_index: Index | None = None
    ) -> float:
        """Frequency-weighted maintenance added by a move."""
        if not self._write_queries:
            return 0.0
        total = 0.0
        for query in self._write_queries:
            if query.table_name != new_index.table_name:
                continue
            delta = self._optimizer.maintenance_cost(query, new_index)
            if old_index is not None:
                delta -= self._optimizer.maintenance_cost(
                    query, old_index
                )
            total += query.frequency * delta
        return total

    # ------------------------------------------------------------------
    # Move pools
    # ------------------------------------------------------------------

    def _seed_singles(self, n_best: int | None) -> None:
        accessed = sorted(self._queries_with)
        moves: list[CandidateMove] = []
        for attribute_id in accessed:
            move = self._build_single_move(attribute_id)
            if move is not None:
                moves.append(move)
        if n_best is not None and len(moves) > n_best:
            # Remark 1 (1) ranks seeds by their *initial* exact ratio, so
            # every single must be priced up front in both engine modes.
            for move in moves:
                move.price()
            moves.sort(
                key=lambda move: -(
                    move.benefit(self._current) / move.memory_delta
                )
            )
            moves = moves[:n_best]
        for move in moves:
            self._single_moves[move.new_index.leading_attribute] = move
            self._table.register(move)

    def _seed_pairs(self) -> None:
        """Remark 1 (4): canonical two-attribute seed indexes."""
        seen: set[frozenset[int]] = set()
        for query in self._queries:
            attributes = sorted(query.attributes)
            for first_position in range(len(attributes)):
                for second_position in range(
                    first_position + 1, len(attributes)
                ):
                    pair = frozenset(
                        (
                            attributes[first_position],
                            attributes[second_position],
                        )
                    )
                    if pair in seen:
                        continue
                    seen.add(pair)
                    index = canonical_index(self._schema, pair)
                    if index in self._selected:
                        continue
                    move = self._build_set_move(
                        StepKind.NEW_PAIR, index, frozenset(pair)
                    )
                    if move is not None:
                        key = (index.attributes[:-1], index.attributes[-1])
                        if key not in self._branch_moves:
                            self._branch_moves[key] = move
                            self._table.register(move)

    def _pricer(self, index: Index, positions: np.ndarray):
        """Deferred what-if pricing of ``index`` for the affected queries.

        Bound eagerly (no late-binding hazard); runs at most once per
        move, only if the move's optimistic bound earns a pricing call.
        """
        optimizer = self._optimizer
        queries = self._queries

        if getattr(optimizer, "supports_batch", False):

            def base() -> np.ndarray:
                # Affected positions always contain the index's leading
                # attribute (by construction), so this prices the same
                # applicable pairs the per-pair loop would.
                return np.asarray(
                    optimizer.index_costs(
                        [queries[position] for position in positions],
                        index,
                    ),
                    dtype=np.float64,
                )

        else:

            def base() -> np.ndarray:
                return np.array(
                    [
                        optimizer.index_cost(queries[position], index)
                        for position in positions
                    ],
                    dtype=np.float64,
                )

        warm = self._warm
        if warm is None:
            return base

        def price_warm() -> np.ndarray:
            # The affected positions of any constructive move are a
            # pure function of the created index over a fixed workload,
            # so the attribute tuple keys the stored column; a stored
            # column is exactly what base() would return.
            costs = warm.fetch(index.attributes, positions)
            if costs is None:
                costs = base()
                warm.store(index.attributes, positions, costs)
            return costs

        return price_warm

    def _build_single_move(self, attribute_id: int) -> CandidateMove | None:
        index = Index.of(self._schema, (attribute_id,))
        if index in self._selected:
            return None
        positions = self._queries_with[attribute_id]
        return CandidateMove(
            StepKind.NEW_SINGLE,
            None,
            index,
            self._index_memory(index),
            positions,
            self._weights[positions],
            self._reconfiguration.creation_cost(self._schema, index),
            self._maintenance_delta(index),
            pricer=self._pricer(index, positions),
        )

    def _build_set_move(
        self, kind: StepKind, index: Index, required: frozenset[int]
    ) -> CandidateMove | None:
        """A move creating ``index`` afresh, affecting queries ⊇ required."""
        positions = self._positions_containing(required)
        if positions.size == 0:
            return None
        return CandidateMove(
            kind,
            None,
            index,
            self._index_memory(index),
            positions,
            self._weights[positions],
            self._reconfiguration.creation_cost(self._schema, index),
            self._maintenance_delta(index),
            pricer=self._pricer(index, positions),
        )

    def _index_memory(self, index: Index) -> int:
        """``index_memory`` with a warm cross-run memo.

        The footprint is a pure function of the schema and the index's
        attribute tuple, so warm runs reuse the store's memo instead of
        re-summing attribute value sizes.
        """
        warm = self._warm
        if warm is None:
            return index_memory(self._schema, index)
        memory = warm.memory_for(index.attributes)
        if memory is None:
            memory = index_memory(self._schema, index)
            warm.remember_memory(index.attributes, memory)
        return memory

    def _positions_containing(self, required: frozenset[int]) -> np.ndarray:
        """Positions of queries whose attribute set contains ``required``."""
        warm = self._warm
        if warm is not None:
            cached = warm.positions_for(required)
            if cached is not None:
                return cached
        result = self._intersect_positions(required)
        if warm is not None:
            warm.remember_positions(required, result)
        return result

    def _intersect_positions(
        self, required: frozenset[int]
    ) -> np.ndarray:
        lists = []
        for attribute_id in required:
            positions = self._queries_with.get(attribute_id)
            if positions is None:
                return np.empty(0, dtype=np.intp)
            lists.append(positions)
        lists.sort(key=len)
        result = lists[0]
        for other in lists[1:]:
            result = np.intersect1d(result, other, assume_unique=True)
            if result.size == 0:
                break
        return result

    def _add_extension_moves(self, index: Index) -> None:
        """Offer appending every same-table attribute to ``index``."""
        if self._max_width is not None and index.width >= self._max_width:
            return
        table = self._schema.table(index.table_name)
        indexed = set(index.attributes)
        for attribute in table.attributes:
            if attribute.id in indexed:
                continue
            if attribute.id not in self._queries_with:
                continue
            move = self._build_extension_move(index, attribute.id)
            if move is not None:
                key = (index, attribute.id)
                stale = self._extension_moves.get(key)
                if stale is not None:
                    self._table.retire(stale)
                self._extension_moves[key] = move
                self._table.register(move)

    def _build_extension_move(
        self, index: Index, attribute_id: int
    ) -> CandidateMove | None:
        extended = index.extended_by(attribute_id)
        if extended in self._selected:
            return None
        required = frozenset(extended.attributes)
        positions = self._positions_containing(required)
        if positions.size == 0:
            return None
        memory_delta = self._index_memory(extended) - self._index_memory(
            index
        )
        reconfiguration_delta = self._reconfiguration.creation_cost(
            self._schema, extended
        ) - self._reconfiguration.creation_cost(self._schema, index)
        if index in self._baseline:
            # Morphing a pre-existing index means dropping it and
            # building the extended one from scratch.
            reconfiguration_delta = self._reconfiguration.creation_cost(
                self._schema, extended
            ) + self._reconfiguration.drop_cost(self._schema, index)
        return CandidateMove(
            StepKind.EXTEND,
            index,
            extended,
            max(memory_delta, 1),
            positions,
            self._weights[positions],
            reconfiguration_delta,
            self._maintenance_delta(extended, index),
            pricer=self._pricer(extended, positions),
        )

    def materialize_branches(
        self,
        missed: list[tuple[tuple[int, ...], int]],
        budget: int,
    ) -> None:
        """Turn stored missed opportunities into branch moves.

        A missed extension ``(k, i)`` becomes actionable once ``k`` itself
        is no longer selected (it was morphed in another direction): the
        branch re-creates ``k·i`` as a separate index, re-estimating its
        impact (the paper notes re-estimation may be necessary — our
        what-if facade simply prices the new index).
        """
        if budget == 0 or not missed:
            return
        still_pending: list[tuple[tuple[int, ...], int]] = []
        for prefix_attributes, attribute_id in missed:
            key = (prefix_attributes, attribute_id)
            if key in self._branch_moves:
                continue
            prefix_index = Index(
                self._schema.attribute(prefix_attributes[0]).table_name,
                prefix_attributes,
            )
            if prefix_index in self._selected:
                still_pending.append(key)
                continue  # the normal extension move still exists
            branch_index = Index(
                prefix_index.table_name,
                prefix_attributes + (attribute_id,),
            )
            if branch_index in self._selected:
                continue
            if any(
                branch_index.is_prefix_of(selected)
                for selected in self._selected
            ):
                continue
            move = self._build_set_move(
                StepKind.BRANCH,
                branch_index,
                frozenset(branch_index.attributes),
            )
            if move is not None:
                self._branch_moves[key] = move
                self._table.register(move)
        missed[:] = still_pending

    # ------------------------------------------------------------------
    # Step selection and application
    # ------------------------------------------------------------------

    def best_move(
        self,
        runner_up_count: int = 0,
        max_memory_delta: float | None = None,
    ) -> tuple[
        tuple[CandidateMove, float] | None,
        list[tuple[CandidateMove, float, float]],
    ]:
        """The move with the best benefit/memory ratio, plus runners-up.

        Delegates to the :class:`~repro.core.evaluation.BenefitTable`:
        only moves with strictly positive net benefit qualify; when
        ``max_memory_delta`` is given, moves that would not fit the
        remaining budget are skipped.  Ties on the ratio are broken by
        larger absolute benefit, then by the deterministic move key.
        Runners-up come back as ``(move, benefit, ratio)`` so callers
        (missed-opportunity tracking, step-event logging) need not
        re-price them; :attr:`last_candidates_considered` records how
        many pooled moves were in contention for this decision.
        """
        self.last_candidates_considered = len(self._table)
        return self._table.best(
            self._current, runner_up_count, max_memory_delta
        )

    def apply(
        self, move: CandidateMove, benefit: float, step_number: int
    ) -> ConstructionStep:
        """Apply a chosen move and return the recorded step."""
        cost_before = self.total_cost + self._baseline_reconfiguration()
        memory_before = self.memory

        if move.kind is StepKind.EXTEND:
            assert move.old_index is not None
            self._selected.discard(move.old_index)
            self._selected.add(move.new_index)
            # Retire moves extending the morphed index (the applied
            # move itself is among them).
            for key in [
                key
                for key in self._extension_moves
                if key[0] == move.old_index
            ]:
                self._table.retire(self._extension_moves[key])
                del self._extension_moves[key]
            # Queries that relied on the old index now rely on the new
            # one (same usable prefix, same cost).
            for position in range(len(self._best_index)):
                if self._best_index[position] == move.old_index:
                    self._best_index[position] = move.new_index
        else:
            self._selected.add(move.new_index)
            if move.kind is StepKind.NEW_SINGLE:
                self._single_moves.pop(
                    move.new_index.leading_attribute, None
                )
            else:
                for key in [
                    key
                    for key, pending in self._branch_moves.items()
                    if pending is move
                ]:
                    del self._branch_moves[key]
            self._table.retire(move)

        self.memory += move.memory_delta
        self._maintenance_total += move.maintenance_penalty

        improved = move.costs < self._current[move.positions]
        improved_positions = move.positions[improved]
        self._current[improved_positions] = move.costs[improved]
        for position in improved_positions:
            self._best_index[int(position)] = move.new_index

        # Dirty set: only candidates touching a query whose current
        # cost just changed need re-evaluation next round.
        self._table.invalidate(improved_positions)

        self._add_extension_moves(move.new_index)

        cost_after = self.total_cost + self._baseline_reconfiguration()
        return ConstructionStep(
            step_number=step_number,
            kind=move.kind,
            index_before=move.old_index,
            index_after=move.new_index,
            cost_before=cost_before,
            cost_after=cost_after,
            memory_before=memory_before,
            memory_after=self.memory,
        )

    def _baseline_reconfiguration(self) -> float:
        if self._reconfiguration.is_free:
            return 0.0
        return self._reconfiguration.cost(
            self._schema, self._selected, self._baseline
        )

    def prune_unused(self, next_step_number: int) -> list[ConstructionStep]:
        """Remark 1 (2): drop selected indexes no query relies on.

        An index is unused when it is not the cost-determining index of
        any query.  Removing it frees memory without changing costs.
        Baseline indexes are kept (dropping them is a reconfiguration
        decision, not a cleanup).
        """
        used = {index for index in self._best_index if index is not None}
        removable = [
            index
            for index in sorted(
                self._selected,
                key=lambda index: (index.table_name, index.attributes),
            )
            if index not in used and index not in self._baseline
        ]
        steps: list[ConstructionStep] = []
        for index in removable:
            cost_before = self.total_cost + self._baseline_reconfiguration()
            memory_before = self.memory
            self._selected.discard(index)
            self.memory -= index_memory(self._schema, index)
            self._maintenance_total -= self._maintenance_delta(index)
            for key in [
                key for key in self._extension_moves if key[0] == index
            ]:
                self._table.retire(self._extension_moves[key])
                del self._extension_moves[key]
            steps.append(
                ConstructionStep(
                    step_number=next_step_number + len(steps),
                    kind=StepKind.REMOVE,
                    index_before=index,
                    index_after=None,
                    cost_before=cost_before,
                    cost_after=self.total_cost
                    + self._baseline_reconfiguration(),
                    memory_before=memory_before,
                    memory_after=self.memory,
                )
            )
        return steps
