"""Swap-based local search over index configurations.

Greedy constructive selection (Algorithm 1, but also H4/H5) can strand
budget in indexes that later steps made nearly redundant — index
interaction at work: an index that was the best choice at step ``t`` may
be cannibalized by an index added at step ``t' > t`` (Property 2 of
Section V).  This module implements an improvement pass in the spirit of
Remark 1 (2)/(3) and of the "recovery" phase of Kimura et al.: repeatedly
try to add a beneficial unselected candidate, evicting the selected
indexes with the smallest marginal value until the budget fits, and keep
the swap when it lowers total cost.

The pass is algorithm-agnostic: it improves any
:class:`~repro.indexes.configuration.IndexConfiguration` given a candidate
pool.  All costs flow through the caching what-if facade, so the extra
optimizer calls are limited to candidates never priced before.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from repro.core.evaluation import price_columns
from repro.core.steps import STATUS_DEGRADED, SelectionResult
from repro.cost.whatif import WhatIfOptimizer
from repro.exceptions import BudgetError
from repro.indexes.configuration import IndexConfiguration
from repro.indexes.index import Index
from repro.indexes.memory import index_memory
from repro.resilience.deadline import Deadline
from repro.telemetry import NULL_TELEMETRY, StepEvent, Telemetry
from repro.workload.query import Workload

__all__ = ["swap_local_search"]


class _CostCache:
    """Per-(query-position, index) cost matrix fed lazily by the facade."""

    def __init__(self, workload: Workload, optimizer: WhatIfOptimizer):
        self._workload = workload
        self._optimizer = optimizer
        self._queries = workload.queries
        self.weights = np.array(
            [query.frequency for query in self._queries], dtype=np.float64
        )
        self._batched = getattr(optimizer, "supports_batch", False)
        if self._batched:
            self.sequential = np.asarray(
                optimizer.sequential_costs(self._queries),
                dtype=np.float64,
            )
        else:
            self.sequential = np.array(
                [
                    optimizer.sequential_cost(query)
                    for query in self._queries
                ],
                dtype=np.float64,
            )
        self._columns: dict[Index, np.ndarray] = {}
        self._maintenance: dict[Index, float] = {}

    def column(self, index: Index) -> np.ndarray:
        """Vector of read-part ``f_j(k)`` per query (sequential if n/a)."""
        cached = self._columns.get(index)
        if cached is not None:
            return cached
        if self._batched:
            # One backend batch for the applicable rows; inapplicable
            # rows reuse the cached sequential vector, exactly like the
            # per-pair loop below (no facade traffic for them).
            positions = [
                position
                for position, query in enumerate(self._queries)
                if index.is_applicable_to(query)
            ]
            column = self.sequential.copy()
            if positions:
                column[positions] = self._optimizer.index_costs(
                    [self._queries[position] for position in positions],
                    index,
                )
        else:
            column = np.array(
                [
                    self._optimizer.index_cost(query, index)
                    if index.is_applicable_to(query)
                    else self.sequential[position]
                    for position, query in enumerate(self._queries)
                ],
                dtype=np.float64,
            )
        self._columns[index] = column
        return column

    def maintenance_of(self, index: Index) -> float:
        """Frequency-weighted maintenance the index imposes on writes."""
        cached = self._maintenance.get(index)
        if cached is not None:
            return cached
        total = sum(
            query.frequency
            * self._optimizer.maintenance_cost(query, index)
            for query in self._queries
            if not query.is_select
        )
        self._maintenance[index] = total
        return total

    def configuration_cost(self, indexes: Iterable[Index]) -> float:
        """``F(I*)`` under one-index-per-query semantics plus the
        additive maintenance of every selected index."""
        best = self.sequential.copy()
        maintenance = 0.0
        for index in indexes:
            np.minimum(best, self.column(index), out=best)
            maintenance += self.maintenance_of(index)
        return float(np.dot(self.weights, best)) + maintenance

    def per_query_best(self, indexes: Sequence[Index]) -> np.ndarray:
        """Per-query minimum cost vector for a selection."""
        best = self.sequential.copy()
        for index in indexes:
            np.minimum(best, self.column(index), out=best)
        return best


def swap_local_search(
    workload: Workload,
    optimizer: WhatIfOptimizer,
    result: SelectionResult,
    budget: float,
    candidate_pool: Iterable[Index],
    *,
    max_rounds: int = 20,
    max_pool: int = 500,
    telemetry: Telemetry = NULL_TELEMETRY,
    deadline: Deadline | None = None,
    parallelism: int = 1,
) -> SelectionResult:
    """Improve a selection by budget-respecting swaps.

    Parameters
    ----------
    result:
        The starting selection (from Extend or any heuristic).
    candidate_pool:
        Indexes that may be swapped in.  The pool is pruned to the
        ``max_pool`` candidates with the largest standalone benefit to
        bound the search.
    max_rounds:
        Upper bound on improving swaps (each round changes the
        configuration, so convergence is guaranteed anyway — costs
        strictly decrease).
    deadline:
        Optional wall-clock budget.  The search stops at the next round
        boundary once expired and the result is tagged ``degraded``
        (every completed swap already improved on the input, so
        stopping early is always safe).
    parallelism:
        Worker threads used to pre-price the candidate pool's cost
        columns through :func:`~repro.core.evaluation.price_columns`.
        The search itself stays serial and deterministic — the warm
        facade cache just makes its column fetches free.  Serial
        fallback when the backend is not ``parallel_safe``.

    Returns
    -------
    SelectionResult
        A result with the same algorithm name suffixed ``"+swap"``;
        identical to the input if no improving swap exists.  A
        ``degraded`` input stays degraded.
    """
    if budget < 0:
        raise BudgetError(f"budget must be >= 0, got {budget}")
    deadline = deadline or Deadline.none()
    status = result.status
    started = time.perf_counter()
    statistics = optimizer.statistics
    calls_before = statistics.calls
    tracer = telemetry.tracer
    run_context = tracer.span(
        "localsearch.swap", algorithm=result.algorithm
    )
    run_span = run_context.__enter__()
    # Manual enter/exit keeps the (long) search body at its original
    # indentation; the finally below guarantees the span closes.
    try:
        schema = workload.schema
        with tracer.span("localsearch.pool"):
            cache = _CostCache(workload, optimizer)

            selected: set[Index] = set(result.configuration)
            memory = {
                index: index_memory(schema, index)
                for index in selected
            }
            current_memory = sum(memory.values())

            pool = [index for index in dict.fromkeys(candidate_pool)]
            pool = [index for index in pool if index not in selected]
            if parallelism > 1:
                # Warm every cost column the search could touch; the
                # serial loops below then run on pure cache hits.
                price_columns(
                    optimizer,
                    workload.queries,
                    (
                        *sorted(
                            selected,
                            key=lambda index: (
                                index.table_name,
                                index.attributes,
                            ),
                        ),
                        *pool,
                    ),
                    parallelism=parallelism,
                )
            if len(pool) > max_pool:
                # Rank candidates by what they could still add on top of
                # the current selection — ranking against the no-index
                # baseline would keep redundant variants of
                # already-covered hot queries and drop the candidates
                # that cover something new.
                base = cache.per_query_best(
                    sorted(
                        selected,
                        key=lambda index: (
                            index.table_name,
                            index.attributes,
                        ),
                    )
                )
                scored = sorted(
                    pool,
                    key=lambda index: -float(
                        np.dot(
                            cache.weights,
                            np.maximum(base - cache.column(index), 0.0),
                        )
                    ),
                )
                pool = scored[:max_pool]
            for index in pool:
                memory[index] = index_memory(schema, index)

        current_cost = cache.configuration_cost(selected)
        rounds = 0
        swaps = 0
        while rounds < max_rounds:
            if deadline.expired:
                status = STATUS_DEGRADED
                break
            rounds += 1
            with tracer.span("localsearch.round", round=rounds) as round_span:
                ordered_selected = sorted(
                    selected,
                    key=lambda index: (index.table_name, index.attributes),
                )
                selected_matrix = (
                    np.vstack(
                        [cache.column(index) for index in ordered_selected]
                    )
                    if ordered_selected
                    else np.empty((0, len(cache.sequential)))
                )

                improvement: (
                    tuple[float, Index, tuple[Index, ...]] | None
                ) = None
                for candidate in pool:
                    if candidate in selected:
                        continue
                    # Marginal value of every selected index *with the
                    # candidate present* — interaction means an index can
                    # lose most of its value once the candidate covers
                    # its queries.
                    stacked = np.vstack(
                        [
                            selected_matrix,
                            cache.column(candidate)[None, :],
                            cache.sequential[None, :],
                        ]
                    )
                    owners = np.argmin(stacked, axis=0)
                    two_smallest = np.partition(stacked, 1, axis=0)
                    regret = (
                        two_smallest[1] - two_smallest[0]
                    ) * cache.weights
                    marginal = {
                        index: float(regret[owners == row].sum())
                        for row, index in enumerate(ordered_selected)
                    }

                    needed = current_memory + memory[candidate] - budget
                    evicted: list[Index] = []
                    if needed > 0:
                        for victim in sorted(
                            ordered_selected,
                            key=lambda index: marginal[index],
                        ):
                            evicted.append(victim)
                            needed -= memory[victim]
                            if needed <= 0:
                                break
                        if needed > 0:
                            continue
                    trial = (selected - set(evicted)) | {candidate}
                    trial_cost = cache.configuration_cost(trial)
                    gain = current_cost - trial_cost
                    if gain > 0 and (
                        improvement is None or gain > improvement[0]
                    ):
                        improvement = (gain, candidate, tuple(evicted))
                if improvement is None:
                    round_span.annotate("outcome", "converged")
                    break
                gain, candidate, evicted = improvement
                cost_before = current_cost
                memory_before = current_memory
                selected = (selected - set(evicted)) | {candidate}
                current_memory = sum(
                    memory[index] for index in selected
                )
                current_cost = cache.configuration_cost(selected)
                pool = [index for index in pool if index != candidate]
                pool.extend(evicted)
                swaps += 1
                round_span.annotate("outcome", "swapped")
                round_span.annotate("gain", gain)
                if telemetry.enabled:
                    memory_delta = current_memory - memory_before
                    telemetry.emit_step(
                        StepEvent(
                            algorithm=f"{result.algorithm}+swap",
                            step_number=swaps,
                            action="swap",
                            table=candidate.table_name,
                            index_before=(
                                evicted[0].attributes if evicted else None
                            ),
                            index_after=candidate.attributes,
                            chosen=True,
                            benefit=cost_before - current_cost,
                            memory_delta=memory_delta,
                            ratio=(
                                (cost_before - current_cost) / memory_delta
                                if memory_delta > 0
                                else float("inf")
                            ),
                            cost_before=cost_before,
                            cost_after=current_cost,
                            memory_before=memory_before,
                            memory_after=current_memory,
                        )
                    )
        if telemetry.enabled:
            run_span.annotate("rounds", rounds)
            run_span.annotate("swaps", swaps)
            run_span.annotate("status", status)
            telemetry.metrics.counter("localsearch.swaps").increment(swaps)
            telemetry.record_whatif(statistics)
    finally:
        run_context.__exit__(None, None, None)

    return SelectionResult(
        algorithm=f"{result.algorithm}+swap",
        configuration=IndexConfiguration(selected),
        total_cost=current_cost,
        memory=current_memory,
        budget=budget,
        runtime_seconds=result.runtime_seconds
        + (time.perf_counter() - started),
        whatif_calls=result.whatif_calls
        + (statistics.calls - calls_before),
        reconfiguration_cost=result.reconfiguration_cost,
        steps=result.steps,
        status=status,
    )
