"""Named presets of Algorithm 1's extensions (paper Remark 1).

Each factory returns a configured :class:`~repro.core.extend.
ExtendAlgorithm`; the ablation benchmarks compare them against the plain
algorithm.  The underlying switches live on ``ExtendAlgorithm`` itself —
these presets exist so experiments can refer to variants by name.
"""

from __future__ import annotations

from repro.core.extend import ExtendAlgorithm
from repro.cost.whatif import WhatIfOptimizer

__all__ = [
    "plain_extend",
    "extend_with_n_best_singles",
    "extend_with_pruning",
    "extend_with_pair_seeds",
    "extend_with_missed_opportunities",
    "VARIANTS",
]


def plain_extend(optimizer: WhatIfOptimizer) -> ExtendAlgorithm:
    """Algorithm 1 exactly as defined (no Remark 1 extensions)."""
    return ExtendAlgorithm(optimizer)


def extend_with_n_best_singles(
    optimizer: WhatIfOptimizer, n_best: int = 10
) -> ExtendAlgorithm:
    """Remark 1 (1): restrict new seeds to the n best single attributes.

    Trades a smaller move pool (faster steps, fewer what-if calls in
    later steps) against the risk of missing a seed that only becomes
    valuable once extended.
    """
    algorithm = ExtendAlgorithm(optimizer, n_best_singles=n_best)
    algorithm.name = f"H6/n-best-{n_best}"  # type: ignore[misc]
    return algorithm


def extend_with_pruning(optimizer: WhatIfOptimizer) -> ExtendAlgorithm:
    """Remark 1 (2): drop indexes that newer indexes made unused.

    Frees budget mid-construction, letting the same budget hold more
    useful indexes.
    """
    algorithm = ExtendAlgorithm(optimizer, prune_unused=True)
    algorithm.name = "H6/prune"  # type: ignore[misc]
    return algorithm


def extend_with_pair_seeds(optimizer: WhatIfOptimizer) -> ExtendAlgorithm:
    """Remark 1 (4): also seed canonical two-attribute indexes.

    Requires cheap what-if calls (the pool of priced moves grows
    quadratically in co-accessed attributes) but can escape cases where
    no single attribute justifies its memory yet a pair does.
    """
    algorithm = ExtendAlgorithm(optimizer, pair_seeds=True)
    algorithm.name = "H6/pairs"  # type: ignore[misc]
    return algorithm


def extend_with_missed_opportunities(
    optimizer: WhatIfOptimizer, remembered: int = 3
) -> ExtendAlgorithm:
    """Remark 1 (3): re-seed runner-up extensions as branch indexes.

    Lets the construction build several indexes sharing leading
    attributes (e.g. ``AB`` and ``AC``), which plain morphing cannot.
    """
    algorithm = ExtendAlgorithm(
        optimizer, missed_opportunities=remembered
    )
    algorithm.name = f"H6/missed-{remembered}"  # type: ignore[misc]
    return algorithm


VARIANTS = {
    "plain": plain_extend,
    "n-best": extend_with_n_best_singles,
    "prune": extend_with_pruning,
    "pairs": extend_with_pair_seeds,
    "missed": extend_with_missed_opportunities,
}
"""Name → variant factory, as used by the ablation benchmarks.

The swap local search (:func:`repro.core.localsearch.swap_local_search`)
is a post-pass rather than an ``ExtendAlgorithm`` configuration, so it is
applied by the experiment harnesses on top of any variant ("H6+swap").
"""
