"""Reconfiguration costs ``R(I*, Ī*)`` (paper Eq. 3).

The paper allows "arbitrarily defined" costs for changing an existing
index selection ``Ī*`` into a new one ``I*``: create the indexes in
``I* \\ Ī*`` and drop the ones in ``Ī* \\ I*``.  This module provides a
configurable linear model: creating an index costs a sort of its columns
(``weight · Σ a_i·n · log2(n)`` traffic), dropping is free by default.

Setting both weights to zero recovers the pure selection problem used in
the paper's main experiments (Sections III and IV ignore reconfiguration
"for ease of simplicity"); the future-work scenarios of Section VII need
non-zero weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import BudgetError
from repro.indexes.configuration import IndexConfiguration
from repro.indexes.index import Index
from repro.workload.schema import Schema

__all__ = ["ReconfigurationModel", "NO_RECONFIGURATION"]


@dataclass(frozen=True)
class ReconfigurationModel:
    """Linear create/drop reconfiguration cost model.

    Attributes
    ----------
    creation_weight:
        Multiplier on the sort-traffic estimate
        ``Σ_{i∈k} a_i · n · log2(n)`` for building index ``k``.
    drop_weight:
        Multiplier on the index footprint for dropping it (usually 0 —
        dropping is a metadata operation).
    """

    creation_weight: float = 0.0
    drop_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.creation_weight < 0 or self.drop_weight < 0:
            raise BudgetError(
                "reconfiguration weights must be >= 0, got "
                f"creation={self.creation_weight}, drop={self.drop_weight}"
            )

    @property
    def is_free(self) -> bool:
        """Whether reconfiguration costs vanish entirely."""
        return self.creation_weight == 0.0 and self.drop_weight == 0.0

    def creation_cost(self, schema: Schema, index: Index) -> float:
        """Cost of building ``index`` from scratch."""
        if self.creation_weight == 0.0:
            return 0.0
        n = schema.table(index.table_name).row_count
        column_bytes = sum(
            schema.value_size(attribute_id) * n
            for attribute_id in index.attributes
        )
        return self.creation_weight * column_bytes * max(math.log2(n), 1.0)

    def drop_cost(self, schema: Schema, index: Index) -> float:
        """Cost of dropping ``index``."""
        if self.drop_weight == 0.0:
            return 0.0
        n = schema.table(index.table_name).row_count
        column_bytes = sum(
            schema.value_size(attribute_id) * n
            for attribute_id in index.attributes
        )
        return self.drop_weight * column_bytes

    def cost(
        self,
        schema: Schema,
        new: IndexConfiguration | Iterable[Index],
        baseline: IndexConfiguration | Iterable[Index],
    ) -> float:
        """``R(I*, Ī*)``: create ``I* \\ Ī*`` plus drop ``Ī* \\ I*``."""
        new_set = frozenset(new)
        baseline_set = frozenset(baseline)
        created = new_set - baseline_set
        dropped = baseline_set - new_set
        return sum(
            self.creation_cost(schema, index) for index in created
        ) + sum(self.drop_cost(schema, index) for index in dropped)


NO_RECONFIGURATION = ReconfigurationModel()
"""The zero-cost model used by the paper's main experiments."""
