"""Multi-budget frontier sweep engine: price once, answer every budget.

Every paper artifact is a *frontier*: the same workload swept over ~10
budget shares.  Running Extend per budget from scratch pays the full
what-if bill once per point, although the budget only gates which steps
are *admissible* — the candidate pricing underneath is budget-invariant.

:func:`sweep_select` exploits that: it runs the requested budget shares
**descending**, threading one shared
:class:`~repro.core.evaluation.WarmBenefitStore` through every per-budget
:class:`~repro.core.extend.ExtendAlgorithm` run.  A candidate extension
priced at ``w = 1.0`` is served from the store at ``w = 0.2`` instead of
being re-priced, so the whole frontier costs roughly one run's worth of
backend calls plus cheap re-selection.  The store's invariant (stored
columns are exactly what cold pricing would return, over deterministic
backends) guarantees every point's step trace stays **bit-identical** to
its standalone run — shared vs. naive is a pure performance knob.

The engine degrades instead of crashing: an expired deadline or (with
``on_error="partial"``) a mid-sweep backend failure truncates the sweep
to the points already answered, tagged ``partial`` with the skipped
shares recorded — a partial frontier beats no frontier.

Per-sweep counters surface as the ``sweep.*`` telemetry gauges via
:meth:`SweepStatistics.publish`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.extend import ExtendAlgorithm
from repro.core.frontier import Frontier, FrontierPoint
from repro.core.steps import (
    STATUS_COMPLETED,
    STATUS_DEGRADED,
    SelectionResult,
)
from repro.cost.whatif import WhatIfOptimizer
from repro.core.evaluation import EvaluationConfig, WarmBenefitStore
from repro.exceptions import ExperimentError
from repro.indexes.memory import relative_budget
from repro.resilience.deadline import Deadline
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.workload.query import Workload

__all__ = [
    "SweepPoint",
    "SweepResult",
    "SweepStatistics",
    "normalize_budget_shares",
    "parse_budget_sweep",
    "sweep_points_parallel",
    "sweep_select",
]


def normalize_budget_shares(
    shares: Sequence[float],
) -> tuple[float, ...]:
    """Validate user-supplied budget shares for a sweep.

    Strict by design — these are *request inputs* (CLI ``--budget-sweep``,
    the service ``sweep`` op, :meth:`IndexAdvisor.recommend_sweep`), not
    the figure harnesses' anchor grids: every share must be a real number
    in ``(0, 1]`` and no share may repeat (a duplicate would silently
    produce repeated frontier points).  Returns the shares as floats in
    the caller's order; raises :class:`~repro.exceptions.ExperimentError`
    otherwise.
    """
    if isinstance(shares, (str, bytes)):
        raise ExperimentError(
            "budget_shares must be a sequence of numbers, got a string "
            f"({shares!r}); use parse_budget_sweep for 'low:high:steps'"
        )
    values = list(shares)
    if not values:
        raise ExperimentError("budget sweep needs at least one share")
    normalized: list[float] = []
    seen: set[float] = set()
    for share in values:
        if isinstance(share, bool) or not isinstance(
            share, (int, float)
        ):
            raise ExperimentError(
                f"budget shares must be numbers, got {share!r}"
            )
        value = float(share)
        if math.isnan(value) or not value > 0:
            raise ExperimentError(
                f"budget shares must be > 0, got {share!r}"
            )
        if value > 1:
            raise ExperimentError(
                f"budget shares are relative to the all-singles "
                f"footprint (Eq. 10) and must be <= 1, got {share!r}"
            )
        if value in seen:
            raise ExperimentError(
                f"duplicate budget share {share!r}; each share yields "
                "one frontier point — deduplicate the sweep input"
            )
        seen.add(value)
        normalized.append(value)
    return tuple(normalized)


def parse_budget_sweep(text: str) -> tuple[float, ...]:
    """Parse a ``low:high:steps`` sweep spec into budget shares.

    ``"0.1:1.0:10"`` means 10 evenly spaced shares from 0.1 to 1.0
    inclusive.  The endpoints must satisfy ``0 < low < high <= 1`` and
    ``steps >= 2``; the result passes :func:`normalize_budget_shares`.
    """
    parts = text.split(":")
    if len(parts) != 3:
        raise ExperimentError(
            f"budget sweep spec must be 'low:high:steps', got {text!r}"
        )
    try:
        low, high = float(parts[0]), float(parts[1])
        steps = int(parts[2])
    except ValueError:
        raise ExperimentError(
            f"budget sweep spec must be 'low:high:steps' with numeric "
            f"bounds and an integer step count, got {text!r}"
        ) from None
    if steps < 2:
        raise ExperimentError(
            f"budget sweep needs >= 2 steps, got {steps}"
        )
    if not 0 < low < high <= 1:
        raise ExperimentError(
            f"budget sweep range must satisfy 0 < low < high <= 1, "
            f"got [{low}, {high}]"
        )
    width = (high - low) / (steps - 1)
    return normalize_budget_shares(
        [low + width * step for step in range(steps)]
    )


@dataclass(frozen=True)
class SweepPoint:
    """One answered budget point of a sweep."""

    budget_share: float
    budget_bytes: float
    result: SelectionResult
    whatif_calls: int
    """Backend what-if calls this point added (facade cache misses
    during this point's selection — *not* the standalone-run count)."""
    execution_order: int
    """0-based position in the engine's descending execution order (the
    point with the largest share executes first and pays the pricing)."""

    @property
    def status(self) -> str:
        """The point's selection status (completed/degraded)."""
        return self.result.status


@dataclass
class SweepStatistics:
    """Counters of one sweep run (the ``sweep.*`` telemetry gauges)."""

    points: int = 0
    """Budget shares requested."""
    completed_points: int = 0
    """Budget shares actually answered (== ``points`` unless partial)."""
    backend_calls: int = 0
    """Backend what-if calls across the whole sweep."""
    reprice_count: int = 0
    """Backend calls made *after* the first executed point — pricing
    the shared store could not serve (0 = perfect reuse)."""
    warm_hits: int = 0
    warm_misses: int = 0
    partial: bool = False

    @property
    def reuse_rate(self) -> float:
        """Share of move pricings served by the shared warm store."""
        total = self.warm_hits + self.warm_misses
        return self.warm_hits / total if total else 0.0

    def publish(self, registry, prefix: str = "sweep") -> None:
        """Bridge the counters into a telemetry registry as gauges."""
        registry.gauge(f"{prefix}.points").set(self.points)
        registry.gauge(f"{prefix}.completed_points").set(
            self.completed_points
        )
        registry.gauge(f"{prefix}.backend_calls").set(
            self.backend_calls
        )
        registry.gauge(f"{prefix}.reprice_count").set(
            self.reprice_count
        )
        registry.gauge(f"{prefix}.warm_hits").set(self.warm_hits)
        registry.gauge(f"{prefix}.warm_misses").set(self.warm_misses)
        registry.gauge(f"{prefix}.reuse_rate").set(self.reuse_rate)
        registry.gauge(f"{prefix}.partial").set(
            1 if self.partial else 0
        )


@dataclass(frozen=True)
class SweepResult:
    """The outcome of one multi-budget sweep."""

    points: tuple[SweepPoint, ...]
    """Answered points, in the *caller's* share order (execution runs
    descending; see :attr:`SweepPoint.execution_order`)."""
    statistics: SweepStatistics
    partial: bool = False
    """True when the sweep was truncated (deadline or mid-sweep
    failure); :attr:`skipped_shares` lists the unanswered budgets."""
    skipped_shares: tuple[float, ...] = ()
    notes: tuple[str, ...] = ()

    @property
    def status(self) -> str:
        """Degraded when partial or any point degraded."""
        if self.partial or any(
            point.status == STATUS_DEGRADED for point in self.points
        ):
            return STATUS_DEGRADED
        return STATUS_COMPLETED

    @property
    def results(self) -> tuple[SelectionResult, ...]:
        """Per-point selection results, in caller share order."""
        return tuple(point.result for point in self.points)

    @property
    def frontier(self) -> Frontier:
        """The answered points as a cost/budget-share frontier."""
        return Frontier(
            FrontierPoint(
                memory=point.budget_share, cost=point.result.total_cost
            )
            for point in self.points
        )

    def point_for(self, budget_share: float) -> SweepPoint | None:
        """The answered point of one share (``None`` when skipped)."""
        for point in self.points:
            if point.budget_share == budget_share:
                return point
        return None


def _check_sweep_shares(
    budget_shares: Sequence[float],
) -> tuple[float, ...]:
    """Engine-level share validation.

    Laxer than :func:`normalize_budget_shares` in exactly one way: a
    share of 0.0 is allowed, because the figure harnesses anchor their
    grids at ``w = 0`` (the no-index frontier point).  Duplicates and
    negatives are still rejected.
    """
    values = [float(share) for share in budget_shares]
    if not values:
        raise ExperimentError("budget sweep needs at least one share")
    seen: set[float] = set()
    for share in values:
        if math.isnan(share) or share < 0:
            raise ExperimentError(
                f"budget shares must be >= 0, got {share!r}"
            )
        if share > 1:
            raise ExperimentError(
                f"budget shares are relative to the all-singles "
                f"footprint (Eq. 10) and must be <= 1, got {share!r}"
            )
        if share in seen:
            raise ExperimentError(
                f"duplicate budget share {share!r}; each share yields "
                "one frontier point — deduplicate the sweep input"
            )
        seen.add(share)
    return tuple(values)


def sweep_select(
    workload: Workload,
    optimizer: WhatIfOptimizer,
    budget_shares: Sequence[float],
    *,
    algorithm_factory: Callable[[WhatIfOptimizer], ExtendAlgorithm]
    | None = None,
    telemetry: Telemetry = NULL_TELEMETRY,
    warm_store: WarmBenefitStore | None = None,
    evaluation: EvaluationConfig | None = None,
    deadline: Deadline | None = None,
    on_error: str = "raise",
    point_callback: Callable[[SweepPoint], None] | None = None,
) -> SweepResult:
    """Answer every budget share with one shared pricing pass.

    Shares execute in **descending** order so the first (largest) point
    populates the shared ``warm_store`` with nearly every cost column
    the smaller budgets will need; each later point re-selects against
    the store and only prices candidates whose optimistic bound first
    becomes competitive under its tighter admissibility gate.  The
    returned :attr:`SweepResult.points` are re-ordered back to the
    caller's share order, each bit-identical (step trace, costs,
    configuration) to a standalone per-budget run.

    Parameters
    ----------
    algorithm_factory:
        Builds the per-point algorithm (ablation variants etc.);
        defaults to a plain :class:`ExtendAlgorithm`.  Factories whose
        product offers ``with_warm_store`` are transparently attached
        to the shared store; others still run correctly, just without
        cross-point pricing reuse.
    warm_store:
        The shared store; a private one is created when ``None``.  Pass
        a resident store (the service's per-registration one) to keep
        the sweep warm across *requests* as well as across points.
    deadline:
        Sweep-wide wall-clock budget.  The point running at expiry
        returns degraded best-so-far (Extend's usual contract); points
        not yet started are skipped and the sweep comes back
        ``partial``.
    on_error:
        ``"raise"`` (default) propagates a mid-sweep failure;
        ``"partial"`` degrades to the points already answered when at
        least one exists (the service's worker-death posture) and
        re-raises otherwise.
    point_callback:
        Called with each :class:`SweepPoint` as it completes, in
        execution (descending) order — the service streams these as
        per-point events.
    """
    if on_error not in ("raise", "partial"):
        raise ExperimentError(
            f"on_error must be 'raise' or 'partial', got {on_error!r}"
        )
    shares = _check_sweep_shares(budget_shares)
    deadline = deadline or Deadline.none()
    store = warm_store if warm_store is not None else WarmBenefitStore()
    statistics = SweepStatistics(points=len(shares))
    execution_order = sorted(shares, reverse=True)
    answered: dict[float, SweepPoint] = {}
    notes: list[str] = []
    partial = False

    with telemetry.tracer.span(
        "sweep.select", points=len(shares)
    ) as sweep_span:
        for position, share in enumerate(execution_order):
            if deadline.expired and position > 0:
                partial = True
                notes.append(
                    f"deadline expired after {position} of "
                    f"{len(shares)} points"
                )
                break
            budget = relative_budget(workload.schema, share)
            algorithm = _point_algorithm(
                optimizer,
                algorithm_factory,
                store,
                telemetry,
                evaluation,
            )
            calls_before = optimizer.calls
            try:
                with telemetry.tracer.span("sweep.point", w=share):
                    result = algorithm.select(
                        workload, budget, deadline=deadline
                    )
            except Exception as error:
                if on_error == "partial" and answered:
                    partial = True
                    notes.append(
                        f"point w={share:g} failed "
                        f"({type(error).__name__}: {error}); "
                        "returning the partial frontier"
                    )
                    break
                raise
            calls = optimizer.calls - calls_before
            statistics.backend_calls += calls
            if position > 0:
                statistics.reprice_count += calls
            evaluation_statistics = getattr(
                algorithm, "last_evaluation_statistics", None
            )
            if evaluation_statistics is not None:
                statistics.warm_hits += evaluation_statistics.warm_hits
                statistics.warm_misses += (
                    evaluation_statistics.warm_misses
                )
            point = SweepPoint(
                budget_share=share,
                budget_bytes=budget,
                result=result,
                whatif_calls=calls,
                execution_order=position,
            )
            answered[share] = point
            statistics.completed_points += 1
            if point_callback is not None:
                point_callback(point)
        skipped = tuple(
            share for share in shares if share not in answered
        )
        if skipped and not partial:
            partial = True
        statistics.partial = partial
        if telemetry.enabled:
            sweep_span.annotate(
                "completed", statistics.completed_points
            )
            sweep_span.annotate("partial", partial)
            statistics.publish(telemetry.metrics)
    return SweepResult(
        points=tuple(
            answered[share] for share in shares if share in answered
        ),
        statistics=statistics,
        partial=partial,
        skipped_shares=skipped,
        notes=tuple(notes),
    )


def _point_algorithm(
    optimizer: WhatIfOptimizer,
    algorithm_factory,
    store: WarmBenefitStore,
    telemetry: Telemetry,
    evaluation: EvaluationConfig | None,
):
    """One budget point's algorithm, attached to the shared store."""
    if algorithm_factory is not None:
        algorithm = algorithm_factory(optimizer)
        attach = getattr(algorithm, "with_warm_store", None)
        if attach is not None:
            algorithm = attach(store)
        return algorithm
    return ExtendAlgorithm(
        optimizer,
        telemetry=telemetry,
        evaluation=evaluation,
        warm_store=store,
    )


def sweep_points_parallel(
    budget_shares: Sequence[float],
    runner: Callable[[float], object],
    *,
    parallelism: int,
) -> list:
    """Fan independent per-budget runs out over a thread pool.

    For series whose points share nothing across budgets (CoPhy runs,
    the ranking heuristics, measured Fig. 5 executions), points can run
    concurrently — the threads drive the resident process pool of the
    sharded kernel underneath, and each ``runner(share)`` call stays
    bit-identical to its serial execution because the runs are
    independent by assumption.  Results come back in the *caller's*
    share order regardless of completion order; ``parallelism <= 1``
    degenerates to the plain serial loop.
    """
    shares = list(budget_shares)
    if parallelism <= 1 or len(shares) <= 1:
        return [runner(share) for share in shares]
    from concurrent.futures import ThreadPoolExecutor

    workers = min(parallelism, len(shares))
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-sweep"
    ) as pool:
        futures = [pool.submit(runner, share) for share in shares]
        return [future.result() for future in futures]
