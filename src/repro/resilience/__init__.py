"""Resilience layer: deadlines, retries, breakers, fault injection.

The paper's Table I treats solver DNFs as a first-class outcome;
production advisors (AIM, CoPhy) must additionally survive flaky
plan-costing services and hard time budgets.  This package gives the
selection stack those guarantees:

* :class:`Deadline` — a wall-clock budget threaded through every
  algorithm; expiry yields best-so-far results tagged ``degraded``.
* :class:`ResiliencePolicy` / :class:`ResilientCostSource` — retry with
  exponential backoff + jitter, per-call timeout detection, and a
  circuit breaker that trips to a fallback chain (stale cache →
  analytical model).
* :class:`FaultInjectingCostSource` — a deterministic (seeded/scripted)
  fault harness so every resilience path is reproducible in tests,
  benchmarks, and CI stress jobs.

See the "Resilience" section of ``docs/OBSERVABILITY.md`` for how the
counters surface in telemetry.
"""

from repro.resilience.deadline import Deadline
from repro.resilience.faults import (
    FaultInjectingCostSource,
    FaultStatistics,
    ManualClock,
    fail_n_then_succeed,
)
from repro.resilience.policy import (
    BreakerState,
    CircuitBreaker,
    ResiliencePolicy,
    ResilienceStatistics,
)
from repro.resilience.source import ResilientCostSource

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "FaultInjectingCostSource",
    "FaultStatistics",
    "ManualClock",
    "ResiliencePolicy",
    "ResilienceStatistics",
    "ResilientCostSource",
    "fail_n_then_succeed",
]
