"""Wall-clock deadlines for selection runs.

The paper's Table I reports CoPhy "DNF" entries after an eight-hour
cutoff; production advisors face much tighter budgets (seconds, not
hours).  A :class:`Deadline` is the one object threaded through the
selection stack so that every algorithm can stop at a step boundary and
return its best-so-far configuration tagged ``degraded`` instead of
running over budget or crashing.

Deadlines are clock-injectable: tests and the fault-injection harness
pass a :class:`~repro.resilience.faults.ManualClock` so expiry is
deterministic and instantaneous.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.exceptions import BudgetError, DeadlineExceededError

__all__ = ["Deadline"]


class Deadline:
    """A wall-clock budget with a fixed expiry instant.

    Parameters
    ----------
    seconds:
        Budget from *now*; ``None`` means unlimited (never expires).
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    __slots__ = ("_clock", "_expires_at", "_seconds")

    def __init__(
        self,
        seconds: float | None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds < 0:
            raise BudgetError(
                f"deadline seconds must be >= 0, got {seconds}"
            )
        self._clock = clock
        self._seconds = seconds
        self._expires_at = (
            None if seconds is None else clock() + seconds
        )

    @classmethod
    def none(cls) -> Deadline:
        """An unlimited deadline (never expires)."""
        return cls(None)

    @classmethod
    def after(
        cls,
        seconds: float | None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> Deadline:
        """Alias of the constructor that reads well at call sites."""
        return cls(seconds, clock=clock)

    @property
    def seconds(self) -> float | None:
        """The originally granted budget (``None`` = unlimited)."""
        return self._seconds

    @property
    def unlimited(self) -> bool:
        """True when this deadline can never expire."""
        return self._expires_at is None

    @property
    def expired(self) -> bool:
        """True once the wall clock passed the expiry instant."""
        if self._expires_at is None:
            return False
        return self._clock() >= self._expires_at

    @property
    def expires_at(self) -> float | None:
        """The expiry instant on this deadline's clock (``None`` =
        unlimited)."""
        return self._expires_at

    def expire_now(self) -> None:
        """Force expiry at the current instant (cooperative cancel).

        A draining service calls this on every in-flight request so the
        running algorithms degrade to best-so-far at their next step
        boundary instead of running to natural completion.  Idempotent;
        never un-expires an already expired deadline.
        """
        now = self._clock()
        if self._expires_at is None or self._expires_at > now:
            self._expires_at = now

    def remaining(self) -> float:
        """Seconds left (``inf`` when unlimited, clamped at 0.0)."""
        if self._expires_at is None:
            return float("inf")
        return max(0.0, self._expires_at - self._clock())

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if expired."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its deadline of {self._seconds}s"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.unlimited:
            return "Deadline(unlimited)"
        return (
            f"Deadline({self._seconds}s, "
            f"remaining={self.remaining():.3f}s)"
        )
