"""Deterministic fault injection for cost backends.

Testing a resilience layer against a genuinely flaky service is itself
flaky; this module makes every failure mode *scripted and seeded* so
retry, timeout, breaker, and fallback paths are exactly reproducible:

* seeded random transient failures (``failure_rate``),
* seeded latency spikes that trip timeout detection (``spike_rate`` /
  ``spike_latency_s`` against a :class:`ManualClock`),
* explicit scripts (``fail-N-then-succeed`` and arbitrary outcome
  sequences) for directed tests of a specific path.

The injector wraps any :class:`~repro.cost.whatif.CostSource` and is
also usable from the CLI (``--fault-rate``) and CI stress jobs to run
the full integration suite under injected faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import chain, repeat
from typing import Iterable, Iterator

from repro.exceptions import ExperimentError, TransientCostSourceError

__all__ = [
    "FaultInjectingCostSource",
    "FaultStatistics",
    "ManualClock",
    "fail_n_then_succeed",
]

OK = "ok"
FAIL = "fail"
SLOW = "slow"
_OUTCOMES = (OK, FAIL, SLOW)


class ManualClock:
    """A hand-advanced monotonic clock shared by injector and wrapper.

    Pass the same instance as ``clock=`` to both the
    :class:`FaultInjectingCostSource` and the
    :class:`~repro.resilience.ResilientCostSource` (and as ``sleep=``
    via :meth:`sleep`): latency spikes and backoff sleeps then advance
    simulated time instantly, keeping fault tests fast *and* exact.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        """Move the clock forward."""
        self.now += seconds

    def sleep(self, seconds: float) -> None:
        """Drop-in for ``time.sleep`` that advances simulated time."""
        self.advance(seconds)


def fail_n_then_succeed(failures: int) -> Iterator[str]:
    """Script: the first ``failures`` calls fail, the rest succeed."""
    if failures < 0:
        raise ExperimentError(
            f"failures must be >= 0, got {failures}"
        )
    return chain(repeat(FAIL, failures), repeat(OK))


@dataclass
class FaultStatistics:
    """Counters of what the injector did (telemetry-bridgeable)."""

    calls: int = 0
    injected_failures: int = 0
    injected_latency_spikes: int = 0

    def publish(self, registry, prefix: str = "faults") -> None:
        """Bridge the counters into a telemetry
        :class:`~repro.telemetry.metrics.MetricsRegistry` as gauges."""
        registry.gauge(f"{prefix}.calls").set(self.calls)
        registry.gauge(f"{prefix}.injected_failures").set(
            self.injected_failures
        )
        registry.gauge(f"{prefix}.injected_latency_spikes").set(
            self.injected_latency_spikes
        )


class FaultInjectingCostSource:
    """Wraps a cost source and injects deterministic faults.

    Parameters
    ----------
    source:
        The healthy backend whose answers are returned on success.
    failure_rate:
        Probability (seeded) that a call raises
        :class:`TransientCostSourceError` instead of answering.
    spike_rate / spike_latency_s:
        Probability (seeded) that a successful call takes
        ``spike_latency_s`` of (simulated) extra time — combined with a
        ``call_timeout_s`` policy this exercises the timeout path.
    base_latency_s:
        Simulated time every call takes, spike or not.
    script:
        Explicit outcome sequence (tokens ``"ok"``, ``"fail"``,
        ``"slow"``; see :func:`fail_n_then_succeed`).  When given, it
        takes precedence over the random rates; an exhausted finite
        script means "healthy from here on".
    seed:
        Seed of the fault RNG; identical seeds replay identical fault
        sequences.
    clock:
        A :class:`ManualClock` to advance for latency (``None`` means
        latency is not simulated).
    """

    parallel_safe = False
    """The seeded fault schedule is call-order-dependent: concurrent
    callers would consume RNG draws (or script tokens) in a
    nondeterministic order and break replayability, so the evaluation
    engine must fall back to serial execution."""

    def __init__(
        self,
        source,
        *,
        failure_rate: float = 0.0,
        spike_rate: float = 0.0,
        spike_latency_s: float = 0.0,
        base_latency_s: float = 0.0,
        script: Iterable[str] | None = None,
        seed: int = 0,
        clock: ManualClock | None = None,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ExperimentError(
                f"failure_rate must be in [0, 1], got {failure_rate}"
            )
        if not 0.0 <= spike_rate <= 1.0:
            raise ExperimentError(
                f"spike_rate must be in [0, 1], got {spike_rate}"
            )
        self._source = source
        self._failure_rate = failure_rate
        self._spike_rate = spike_rate
        self._spike_latency_s = spike_latency_s
        self._base_latency_s = base_latency_s
        self._script = iter(script) if script is not None else None
        self._rng = random.Random(seed)
        self._clock = clock
        self.statistics = FaultStatistics()
        # Mirror the wrapped source's optional capabilities (see
        # ResilientCostSource for why over-advertising breaks
        # feature detection in WhatIfOptimizer).  Batch entry points
        # are mirrored too, so vectorized pricing still flows through
        # the injector instead of silently bypassing it.
        for method in (
            "maintenance_cost",
            "multi_index_cost",
            "query_costs",
            "sequential_costs",
            "maintenance_costs",
            "pair_costs",
        ):
            if getattr(source, method, None) is None:
                setattr(self, method, None)

    @property
    def source(self):
        """The wrapped healthy backend."""
        return self._source

    def query_cost(self, query, index) -> float:
        """Answer ``f_j(k)``, unless the fault plan says otherwise."""
        self._inject("query_cost")
        return self._source.query_cost(query, index)

    def maintenance_cost(self, query, index) -> float:
        """Maintenance cost with fault injection applied."""
        self._inject("maintenance_cost")
        return self._source.maintenance_cost(query, index)

    def multi_index_cost(self, query, indexes) -> float:
        """Multi-index cost with fault injection applied."""
        self._inject("multi_index_cost")
        return self._source.multi_index_cost(query, indexes)

    # Batch entry points: a whole column is one backend invocation, so
    # it consumes exactly one fault-plan outcome (one RNG draw or
    # script token) — mirroring how the resilient wrapper treats a
    # batch as one retry/timeout unit.

    def query_costs(self, queries, index):
        """Batch ``f_j(k)`` with one injected outcome for the batch."""
        self._inject("query_costs")
        return self._source.query_costs(queries, index)

    def sequential_costs(self, queries):
        """Batch ``f_j(0)`` with one injected outcome for the batch."""
        self._inject("sequential_costs")
        return self._source.sequential_costs(queries)

    def maintenance_costs(self, queries, index):
        """Batch maintenance with one injected outcome for the batch."""
        self._inject("maintenance_costs")
        return self._source.maintenance_costs(queries, index)

    def pair_costs(self, pairs):
        """Whole-table pairs with one injected outcome for the batch."""
        self._inject("pair_costs")
        return self._source.pair_costs(pairs)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _next_outcome(self) -> str:
        if self._script is not None:
            token = next(self._script, OK)
            if token not in _OUTCOMES:
                raise ExperimentError(
                    f"unknown fault script token {token!r}; expected "
                    f"one of {', '.join(_OUTCOMES)}"
                )
            return token
        roll = self._rng.random()
        if roll < self._failure_rate:
            return FAIL
        if roll < self._failure_rate + self._spike_rate:
            return SLOW
        return OK

    def _inject(self, method: str) -> None:
        self.statistics.calls += 1
        outcome = self._next_outcome()
        if self._clock is not None and self._base_latency_s:
            self._clock.advance(self._base_latency_s)
        if outcome == FAIL:
            self.statistics.injected_failures += 1
            raise TransientCostSourceError(
                f"injected transient failure in {method} "
                f"(call #{self.statistics.calls})"
            )
        if outcome == SLOW:
            self.statistics.injected_latency_spikes += 1
            if self._clock is not None:
                self._clock.advance(self._spike_latency_s)
