"""Resilience policy knobs, counters, and the circuit breaker.

The policy object is the single bundle of tuning knobs that the advisor
and CLI expose (``resilience=``, ``--max-retries`` …); the breaker is a
classic three-state machine (closed → open → half-open) that protects a
flaky cost backend from retry storms and trips calls straight to the
fallback chain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import BudgetError

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ResiliencePolicy",
    "ResilienceStatistics",
]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Tuning knobs of :class:`~repro.resilience.ResilientCostSource`.

    Attributes
    ----------
    max_retries:
        Retries *after* the first attempt of each backend call.
    backoff_base_s:
        Sleep before retry ``n`` is ``backoff_base_s * 2**n``, plus
        jitter.  0 disables sleeping (useful in tests).
    backoff_cap_s:
        Upper bound on any single backoff sleep.
    jitter:
        Uniform random fraction added to each backoff (0.1 = up to
        +10%), decorrelating retry storms across concurrent advisors.
    call_timeout_s:
        A backend call observed to take longer than this counts as a
        transient failure (``None`` disables timeout detection).
    breaker_threshold:
        Consecutive backend-call failures (retries exhausted) that trip
        the breaker open.
    breaker_reset_s:
        Seconds the breaker stays open before allowing one half-open
        trial call.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.01
    backoff_cap_s: float = 1.0
    jitter: float = 0.1
    call_timeout_s: float | None = None
    breaker_threshold: int = 5
    breaker_reset_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise BudgetError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise BudgetError("backoff times must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise BudgetError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.call_timeout_s is not None and self.call_timeout_s <= 0:
            raise BudgetError(
                f"call_timeout_s must be > 0, got {self.call_timeout_s}"
            )
        if self.breaker_threshold < 1:
            raise BudgetError(
                "breaker_threshold must be >= 1, got "
                f"{self.breaker_threshold}"
            )
        if self.breaker_reset_s < 0:
            raise BudgetError(
                f"breaker_reset_s must be >= 0, got {self.breaker_reset_s}"
            )

    def backoff_seconds(self, attempt: int, random_unit: float) -> float:
        """Backoff before retry ``attempt`` (0-based), jitter applied."""
        base = self.backoff_base_s * (2.0**attempt)
        return min(base * (1.0 + self.jitter * random_unit),
                   self.backoff_cap_s)


class BreakerState(enum.Enum):
    """Circuit-breaker states (values are the telemetry gauge levels)."""

    CLOSED = 0
    HALF_OPEN = 1
    OPEN = 2


class CircuitBreaker:
    """Three-state circuit breaker over consecutive call failures.

    ``record_failure`` counts *exhausted* backend calls (a call that
    succeeded after retries is a success).  Once ``threshold``
    consecutive failures accumulate, the breaker opens: calls skip the
    backend entirely until ``reset_s`` elapsed, then one half-open trial
    is allowed — its success closes the breaker, its failure re-opens it.
    """

    def __init__(
        self,
        threshold: int,
        reset_s: float,
        *,
        clock,
    ) -> None:
        self._threshold = threshold
        self._reset_s = reset_s
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.open_count = 0
        """How many times the breaker tripped open (telemetry)."""

    @property
    def state(self) -> BreakerState:
        """Current state, promoting OPEN to HALF_OPEN after the reset."""
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self._reset_s
        ):
            self._state = BreakerState.HALF_OPEN
        return self._state

    def allows_call(self) -> bool:
        """Whether a backend call may be attempted right now."""
        return self.state is not BreakerState.OPEN

    def record_success(self) -> None:
        """A backend call completed: reset failures, close the breaker."""
        self._consecutive_failures = 0
        self._state = BreakerState.CLOSED

    def record_failure(self) -> None:
        """A backend call failed for good (retries exhausted)."""
        self._consecutive_failures += 1
        if (
            self.state is BreakerState.HALF_OPEN
            or self._consecutive_failures >= self._threshold
        ):
            self._trip()

    def force_open(self) -> None:
        """Trip the breaker open (tests, operator kill switch)."""
        self._trip()

    def force_closed(self) -> None:
        """Reset to closed (operator override after backend recovery)."""
        self.record_success()

    def _trip(self) -> None:
        if self._state is not BreakerState.OPEN:
            self.open_count += 1
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()


@dataclass
class ResilienceStatistics:
    """Counters of one resilient cost source's lifetime.

    Mirrors :class:`~repro.cost.whatif.WhatIfStatistics` so the counters
    bridge into the telemetry registry the same way.
    """

    attempts: int = 0
    retries: int = 0
    transient_failures: int = 0
    timeouts: int = 0
    breaker_short_circuits: int = 0
    stale_cache_hits: int = 0
    fallback_calls: int = 0
    unavailable: int = 0
    backoff_seconds_total: float = 0.0
    breaker_state: BreakerState = field(default=BreakerState.CLOSED)

    def copy(self) -> ResilienceStatistics:
        """Point-in-time copy (the live object mutates in place)."""
        return ResilienceStatistics(**vars(self))

    def publish(self, registry, prefix: str = "resilience") -> None:
        """Bridge the counters into a telemetry
        :class:`~repro.telemetry.metrics.MetricsRegistry` as gauges."""
        registry.gauge(f"{prefix}.attempts").set(self.attempts)
        registry.gauge(f"{prefix}.retries").set(self.retries)
        registry.gauge(f"{prefix}.transient_failures").set(
            self.transient_failures
        )
        registry.gauge(f"{prefix}.timeouts").set(self.timeouts)
        registry.gauge(f"{prefix}.breaker_short_circuits").set(
            self.breaker_short_circuits
        )
        registry.gauge(f"{prefix}.stale_cache_hits").set(
            self.stale_cache_hits
        )
        registry.gauge(f"{prefix}.fallback_calls").set(
            self.fallback_calls
        )
        registry.gauge(f"{prefix}.unavailable").set(self.unavailable)
        registry.gauge(f"{prefix}.breaker_state").set(
            self.breaker_state.value
        )
