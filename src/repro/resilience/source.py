"""A retrying, breaker-protected, fallback-chained cost source.

Production what-if backends (plan-costing services, HTTP optimizers,
remote engines) fail and stall in ways the analytic model never does.
:class:`ResilientCostSource` decorates any
:class:`~repro.cost.whatif.CostSource` with:

* **Retries** — transient failures (:class:`TransientCostSourceError`,
  or calls observed to exceed ``call_timeout_s``) are retried up to
  ``max_retries`` times with exponential backoff and seeded jitter.
* **Circuit breaker** — after ``breaker_threshold`` consecutive
  exhausted calls the breaker opens and calls skip the backend entirely
  until a cooldown elapsed (one half-open trial then decides).
* **Fallback chain** — when the backend cannot answer (breaker open or
  retries exhausted) the call is served from (1) the *stale cache* of
  previously successful backend answers, then (2) the explicit
  ``fallbacks`` (typically an
  :class:`~repro.cost.whatif.AnalyticalCostSource`).  Only when every
  stage fails does :class:`CostSourceUnavailableError` escape.

The wrapper sits *below* :class:`~repro.cost.whatif.WhatIfOptimizer`,
so cached costs never pay the resilience machinery — only genuine
backend calls do, and those are the expensive ones anyway.

Everything is injectable (``clock``, ``sleep``, jitter ``seed``) so the
fault-injection harness (:mod:`repro.resilience.faults`) can exercise
every retry and breaker path deterministically.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import (
    CostSourceUnavailableError,
    TransientCostSourceError,
)
from repro.resilience.policy import (
    CircuitBreaker,
    ResiliencePolicy,
    ResilienceStatistics,
)

__all__ = ["ResilientCostSource"]

_OPTIONAL_METHODS = ("maintenance_cost", "multi_index_cost")

# Batch entry points (compiled-kernel backends) and the per-pair method
# each one decomposes into for stale-cache keys and fallbacks.
_BATCH_METHODS = {
    "query_costs": "query_cost",
    "sequential_costs": "query_cost",
    "maintenance_costs": "maintenance_cost",
    "pair_costs": "query_cost",
}


class ResilientCostSource:
    """Decorates a :class:`~repro.cost.whatif.CostSource` with retries,
    a circuit breaker, and a fallback chain.

    Parameters
    ----------
    source:
        The (possibly flaky) primary backend.
    policy:
        Retry/backoff/breaker knobs; defaults are production-ish.
    fallbacks:
        Reliable backends tried in order after the stale cache when the
        primary cannot answer.  Fallback answers are *not* written to
        the stale cache (they are reproducible on demand).
    clock / sleep:
        Injectable time sources for deterministic tests.
    seed:
        Seed of the jitter RNG (fixed by default so identical runs
        produce identical backoff sequences).
    """

    def __init__(
        self,
        source,
        *,
        policy: ResiliencePolicy | None = None,
        fallbacks: Sequence = (),
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        seed: int = 0xC0FFEE,
    ) -> None:
        self._source = source
        self._policy = policy or ResiliencePolicy()
        self._fallbacks = tuple(fallbacks)
        self._clock = clock
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._stale: dict[tuple, float] = {}
        self._statistics = ResilienceStatistics()
        # Serializes the retry/breaker/stale-cache state machine: the
        # evaluation engine may share this wrapper across worker
        # threads, and breaker transitions plus the jitter RNG are
        # order-dependent.  RLock because a fallback could itself be a
        # resilient source.
        self._lock = threading.RLock()
        self._breaker = CircuitBreaker(
            self._policy.breaker_threshold,
            self._policy.breaker_reset_s,
            clock=clock,
        )
        # Only advertise optional protocol methods some source in the
        # chain actually implements: WhatIfOptimizer feature-detects
        # maintenance_cost/multi_index_cost with getattr, and a wrapper
        # that always defines them would claim capabilities the backend
        # lacks.  Instance attributes shadow the class lookup.
        for method in _OPTIONAL_METHODS:
            if not self._chain_supports(method):
                setattr(self, method, None)
        # Batch methods are advertised only when the PRIMARY implements
        # them: a fallback-only batch capability would let whole columns
        # bypass the (possibly flaky, but authoritative) primary that
        # the per-pair path would have consulted.
        for method in _BATCH_METHODS:
            if getattr(self._source, method, None) is None:
                setattr(self, method, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def source(self):
        """The wrapped primary backend."""
        return self._source

    @property
    def policy(self) -> ResiliencePolicy:
        """The active resilience policy."""
        return self._policy

    @policy.setter
    def policy(self, policy: ResiliencePolicy) -> None:
        """Swap the policy in place (breaker thresholds included).

        Breaker state and statistics are kept: reconfiguring a live
        advisor must not forget an open breaker.
        """
        self._policy = policy
        self._breaker._threshold = policy.breaker_threshold
        self._breaker._reset_s = policy.breaker_reset_s

    @property
    def breaker(self) -> CircuitBreaker:
        """The circuit breaker (exposed for forcing in tests/ops)."""
        return self._breaker

    @property
    def statistics(self) -> ResilienceStatistics:
        """Live counters (mutated in place as calls flow through)."""
        self._statistics.breaker_state = self._breaker.state
        return self._statistics

    @property
    def stale_cache_size(self) -> int:
        """Entries available for stale-cache fallback."""
        return len(self._stale)

    @property
    def parallel_safe(self) -> bool:
        """Whether evaluation workers may share this wrapper.

        The wrapper itself is internally locked, so the verdict is the
        primary backend's: the seeded fault injector replays an
        order-dependent failure schedule and opts out
        (``parallel_safe = False``); a missing attribute means safe.
        """
        return getattr(self._source, "parallel_safe", True)

    # ------------------------------------------------------------------
    # CostSource protocol
    # ------------------------------------------------------------------

    def query_cost(self, query, index) -> float:
        """``f_j(k)`` with retries, breaker, and fallbacks applied."""
        key = ("query_cost", query.cache_key, index)
        return self._call("query_cost", key, query, index)

    def maintenance_cost(self, query, index) -> float:
        """Per-execution maintenance, resiliently priced."""
        key = ("maintenance_cost", query.cache_key, index)
        return self._call("maintenance_cost", key, query, index)

    def multi_index_cost(self, query, indexes) -> float:
        """Context-based multi-index cost, resiliently priced."""
        key = ("multi_index_cost", query.cache_key, tuple(indexes))
        return self._call("multi_index_cost", key, query, indexes)

    # ------------------------------------------------------------------
    # Batch entry points (compiled-kernel backends)
    # ------------------------------------------------------------------

    def query_costs(self, queries, index) -> np.ndarray:
        """``f_j(k)`` for a whole column, resiliently priced.

        The batch is one retry/timeout/breaker unit (one backend
        invocation); on success every pair lands in the stale cache
        under its per-pair key, so batch and per-pair calls share stale
        answers.  When the batch cannot be answered, each pair falls
        back individually (stale cache, then fallback chain).
        """
        queries = tuple(queries)
        keys = tuple(
            ("query_cost", query.cache_key, index) for query in queries
        )
        pair_args = tuple((query, index) for query in queries)
        return self._call_batch(
            "query_costs", "query_cost", keys, (queries, index), pair_args
        )

    def sequential_costs(self, queries) -> np.ndarray:
        """``f_j(0)`` for a whole column, resiliently priced."""
        queries = tuple(queries)
        keys = tuple(
            ("query_cost", query.cache_key, None) for query in queries
        )
        pair_args = tuple((query, None) for query in queries)
        return self._call_batch(
            "sequential_costs", "query_cost", keys, (queries,), pair_args
        )

    def pair_costs(self, pairs) -> np.ndarray:
        """Arbitrary ``(query, index)`` pairs, resiliently priced.

        Like the other batch entry points, the whole pair list is one
        retry/timeout/breaker unit; stale-cache keys and fallbacks are
        per pair (the same keys ``query_costs`` writes)."""
        pairs = tuple(pairs)
        keys = tuple(
            ("query_cost", query.cache_key, index) for query, index in pairs
        )
        return self._call_batch(
            "pair_costs", "query_cost", keys, (pairs,), pairs
        )

    def maintenance_costs(self, queries, index) -> np.ndarray:
        """Maintenance for a whole column, resiliently priced."""
        queries = tuple(queries)
        keys = tuple(
            ("maintenance_cost", query.cache_key, index) for query in queries
        )
        pair_args = tuple((query, index) for query in queries)
        return self._call_batch(
            "maintenance_costs",
            "maintenance_cost",
            keys,
            (queries, index),
            pair_args,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _chain_supports(self, method: str) -> bool:
        sources = (self._source, *self._fallbacks)
        return any(
            getattr(source, method, None) is not None
            for source in sources
        )

    def _call(self, method: str, key: tuple, *args) -> float:
        with self._lock:
            return self._call_locked(method, key, *args)

    def _call_locked(self, method: str, key: tuple, *args) -> float:
        statistics = self._statistics
        primary = getattr(self._source, method, None)
        if primary is None:
            # The primary cannot price this at all (e.g. an engine
            # without a maintenance model): go straight to fallbacks,
            # without touching retry or breaker state.
            return self._fallback(method, key, args, primary_error=None)

        if not self._breaker.allows_call():
            statistics.breaker_short_circuits += 1
            return self._fallback(
                method,
                key,
                args,
                primary_error=CostSourceUnavailableError(
                    "circuit breaker open"
                ),
            )

        policy = self._policy
        last_error: Exception | None = None
        for attempt in range(policy.max_retries + 1):
            if attempt > 0:
                statistics.retries += 1
                self._backoff(attempt - 1)
            statistics.attempts += 1
            started = self._clock()
            try:
                value = primary(*args)
            except TransientCostSourceError as error:
                statistics.transient_failures += 1
                last_error = error
                continue
            elapsed = self._clock() - started
            if (
                policy.call_timeout_s is not None
                and elapsed > policy.call_timeout_s
            ):
                statistics.timeouts += 1
                last_error = TransientCostSourceError(
                    f"{method} took {elapsed:.3f}s "
                    f"(timeout {policy.call_timeout_s}s)"
                )
                continue
            self._breaker.record_success()
            self._stale[key] = value
            return value

        self._breaker.record_failure()
        return self._fallback(method, key, args, primary_error=last_error)

    def _call_batch(
        self,
        method: str,
        pair_method: str,
        keys: tuple,
        batch_args: tuple,
        pair_args: tuple,
    ) -> np.ndarray:
        with self._lock:
            return self._call_batch_locked(
                method, pair_method, keys, batch_args, pair_args
            )

    def _call_batch_locked(
        self,
        method: str,
        pair_method: str,
        keys: tuple,
        batch_args: tuple,
        pair_args: tuple,
    ) -> np.ndarray:
        statistics = self._statistics
        primary = getattr(self._source, method, None)
        if primary is None:
            return self._fallback_batch(
                pair_method, keys, pair_args, primary_error=None
            )

        if not self._breaker.allows_call():
            statistics.breaker_short_circuits += 1
            return self._fallback_batch(
                pair_method,
                keys,
                pair_args,
                primary_error=CostSourceUnavailableError(
                    "circuit breaker open"
                ),
            )

        policy = self._policy
        last_error: Exception | None = None
        for attempt in range(policy.max_retries + 1):
            if attempt > 0:
                statistics.retries += 1
                self._backoff(attempt - 1)
            statistics.attempts += 1
            started = self._clock()
            try:
                values = primary(*batch_args)
            except TransientCostSourceError as error:
                statistics.transient_failures += 1
                last_error = error
                continue
            elapsed = self._clock() - started
            if (
                policy.call_timeout_s is not None
                and elapsed > policy.call_timeout_s
            ):
                statistics.timeouts += 1
                last_error = TransientCostSourceError(
                    f"{method} took {elapsed:.3f}s "
                    f"(timeout {policy.call_timeout_s}s)"
                )
                continue
            self._breaker.record_success()
            values = np.asarray(values, dtype=np.float64)
            for key, value in zip(keys, values):
                self._stale[key] = float(value)
            return values

        self._breaker.record_failure()
        return self._fallback_batch(
            pair_method, keys, pair_args, primary_error=last_error
        )

    def _fallback_batch(
        self,
        pair_method: str,
        keys: tuple,
        pair_args: tuple,
        *,
        primary_error: Exception | None,
    ) -> np.ndarray:
        """Per-pair fallback of a failed batch (stale, then chain)."""
        return np.array(
            [
                self._fallback(
                    pair_method, key, args, primary_error=primary_error
                )
                for key, args in zip(keys, pair_args)
            ],
            dtype=np.float64,
        )

    def _backoff(self, attempt: int) -> None:
        if self._policy.backoff_base_s <= 0:
            return
        seconds = self._policy.backoff_seconds(
            attempt, self._rng.random()
        )
        self._statistics.backoff_seconds_total += seconds
        self._sleep(seconds)

    def _fallback(
        self,
        method: str,
        key: tuple,
        args: tuple,
        *,
        primary_error: Exception | None,
    ) -> float:
        statistics = self._statistics
        stale = self._stale.get(key)
        if stale is not None:
            statistics.stale_cache_hits += 1
            return stale
        for fallback in self._fallbacks:
            backend = getattr(fallback, method, None)
            if backend is None:
                continue
            statistics.fallback_calls += 1
            return backend(*args)
        statistics.unavailable += 1
        raise CostSourceUnavailableError(
            f"cost backend unavailable for {method} and no fallback "
            "could price the call"
        ) from primary_error
