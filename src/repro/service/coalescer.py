"""Cross-request pricing coalescer: micro-batching + pair dedup.

PRs 4 and 7 made *single-request* pricing as fast as the hardware
allows (the vectorized kernel, the process-sharded pair sweep), but a
service absorbing heavy concurrent traffic has a different bottleneck:
N in-flight ``recommend`` requests issue N independent backend
dispatches that re-price identical ``(query, index)`` pairs and
under-fill the shard pool.  CoPhy's observation — what-if-call economy
is *the* scalability lever for index advisors — applies across
requests exactly as it does within one.  This module is the
inference-server answer (dynamic batching + prefix-cache sharing)
applied to the cost kernel:

* Concurrent callers enqueue their pair-pricing work into a shared
  window instead of dispatching immediately.
* Work items are **content-addressed** — keyed by
  ``(Query.cache_key, index attribute tuple)`` — so a pair wanted by
  five racing requests is priced once and fanned out to every waiter.
* A **leader** caller drains the window after ``window_s`` (or
  immediately when the service is otherwise idle, or early when the
  ``max_pairs`` cap fills) and dispatches one *fused*
  ``pair_costs`` batch that actually fills the shard pool.
* Followers block on the shared items; results (or the batch's
  error — faults propagate per-waiter) complete every request with
  values **bit-identical** to the uncoalesced path.  The kernel
  contract makes this sound: ``query_cost`` / ``query_costs`` /
  ``pair_costs`` are documented bitwise-equal for the same pair, so
  routing column lookups through the fused pair path changes nothing
  but the dispatch shape.

The coalescer slots *between* the caching
:class:`~repro.cost.whatif.WhatIfOptimizer` facade and the
:class:`~repro.resilience.ResilientCostSource` below it.  That
placement is load-bearing twice over: the facade releases its lock
around backend calls (so concurrent cache misses actually meet in the
window — the resilient layer, which serializes its whole state
machine, would never show the coalescer two callers at once), and the
facade's call/hit accounting stays *above* the coalescer, so
per-request :class:`~repro.cost.whatif.WhatIfStatistics` deltas are
unchanged by coalescing.

Deadlines: a waiter whose request deadline already expired does not
sit out the window — it detaches, dispatching its own still-pending
items immediately (the shared in-flight batch is never cancelled, and
the detached dispatch still resolves the shared items for everyone
else).  The per-request deadline reaches the coalescer through a
thread-local set by :func:`waiter_deadline` around the request's
selection run.

There is no scheduler thread: scheduling is cooperative
(leader/follower), so an idle service pays nothing and shutdown has
nothing to join.  Window pacing uses real time — like the service
watchdog and snapshot threads, a manual test clock cannot wake a
condition variable.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.indexes.index import Index
from repro.resilience.deadline import Deadline
from repro.workload.query import Query

__all__ = [
    "CoalescerStatistics",
    "PricingCoalescer",
    "current_waiter_deadline",
    "waiter_deadline",
]

_DEFAULT_WINDOW_S = 0.002
_DEFAULT_MAX_PAIRS = 32768
# Followers re-check their items on this cadence even without a
# notification; purely a liveness backstop (results arrive via
# notify_all long before it fires).
_FOLLOWER_POLL_S = 0.05


_WAITER_STATE = threading.local()


@contextmanager
def waiter_deadline(deadline: Deadline | None):
    """Expose a request's deadline to coalescers on this thread.

    The service wraps each request's selection run in this context so
    every pricing call the run makes can consult the request deadline
    (best-effort: evaluation worker threads spawned inside the run do
    not inherit it and simply never detach early).
    """
    previous = getattr(_WAITER_STATE, "deadline", None)
    _WAITER_STATE.deadline = deadline
    try:
        yield
    finally:
        _WAITER_STATE.deadline = previous


def current_waiter_deadline() -> Deadline | None:
    """The deadline of the request running on this thread, if any."""
    return getattr(_WAITER_STATE, "deadline", None)


@dataclass
class CoalescerStatistics:
    """Lifetime counters of one coalescer (the ``coalescer.*`` gauges)."""

    callers: int = 0
    enqueued_pairs: int = 0
    deduped_pairs: int = 0
    batches: int = 0
    dispatched_pairs: int = 0
    max_batch_pairs: int = 0
    peak_window_pairs: int = 0
    idle_fast_paths: int = 0
    window_waits: int = 0
    cap_closes: int = 0
    deadline_detaches: int = 0
    waiter_wait_seconds_total: float = 0.0

    @property
    def dedup_rate(self) -> float:
        """Share of requested pairs served by someone else's work item.

        ``deduped / (deduped + enqueued)`` — 0 on an idle or
        single-tenant service, climbing exactly when concurrent
        requests overlap in content.
        """
        total = self.enqueued_pairs + self.deduped_pairs
        return self.deduped_pairs / total if total else 0.0

    @property
    def mean_batch_pairs(self) -> float:
        """Average fused dispatch size (0 before the first dispatch)."""
        return (
            self.dispatched_pairs / self.batches if self.batches else 0.0
        )

    def copy(self) -> CoalescerStatistics:
        """Point-in-time copy (the live object mutates in place)."""
        return CoalescerStatistics(**vars(self))

    def publish(self, registry, prefix: str = "coalescer") -> None:
        """Bridge the counters into a telemetry
        :class:`~repro.telemetry.metrics.MetricsRegistry` as gauges."""
        registry.gauge(f"{prefix}.callers").set(self.callers)
        registry.gauge(f"{prefix}.enqueued_pairs").set(
            self.enqueued_pairs
        )
        registry.gauge(f"{prefix}.deduped_pairs").set(
            self.deduped_pairs
        )
        registry.gauge(f"{prefix}.dedup_rate").set(self.dedup_rate)
        registry.gauge(f"{prefix}.batches").set(self.batches)
        registry.gauge(f"{prefix}.dispatched_pairs").set(
            self.dispatched_pairs
        )
        registry.gauge(f"{prefix}.mean_batch_pairs").set(
            self.mean_batch_pairs
        )
        registry.gauge(f"{prefix}.max_batch_pairs").set(
            self.max_batch_pairs
        )
        registry.gauge(f"{prefix}.peak_window_pairs").set(
            self.peak_window_pairs
        )
        registry.gauge(f"{prefix}.idle_fast_paths").set(
            self.idle_fast_paths
        )
        registry.gauge(f"{prefix}.window_waits").set(self.window_waits)
        registry.gauge(f"{prefix}.cap_closes").set(self.cap_closes)
        registry.gauge(f"{prefix}.deadline_detaches").set(
            self.deadline_detaches
        )
        registry.gauge(f"{prefix}.waiter_wait_seconds_total").set(
            self.waiter_wait_seconds_total
        )


class _WorkItem:
    """One content-addressed pair awaiting a price.

    Created by the first caller that wants the pair, shared by
    everyone who wants it after; resolved exactly once with either a
    value or the error of the batch that carried it.
    """

    __slots__ = ("key", "pair", "value", "error", "done")

    def __init__(
        self, key: tuple, pair: tuple[Query, Index | None]
    ) -> None:
        self.key = key
        self.pair = pair
        self.value: float | None = None
        self.error: BaseException | None = None
        self.done = False


class PricingCoalescer:
    """Micro-batching, content-deduplicating wrapper of a cost source.

    Parameters
    ----------
    source:
        The wrapped backend — in the service, the per-kernel
        :class:`~repro.resilience.ResilientCostSource`.  It must
        expose ``pair_costs`` (the fused dispatch entry point); the
        service simply skips coalescing for kernels without it.
    window_s:
        Micro-batch window: how long the first enqueued pair may wait
        for company before the leader dispatches.  The window is
        skipped entirely when no other caller is active (the idle
        fast path) and closed early by ``max_pairs`` or an expired
        waiter deadline.
    max_pairs:
        Fused-batch cap: the window closes as soon as this many pairs
        are pending, bounding both dispatch latency and batch memory.
    deadline_provider:
        Callable returning the current caller's
        :class:`~repro.resilience.Deadline` (or ``None``); defaults to
        the thread-local set by :func:`waiter_deadline`.

    The wrapped source's optional capabilities are mirrored exactly —
    a method the source does not advertise is ``None`` on the
    coalescer too — so the facade's feature detection (and therefore
    its accounting and batching decisions) cannot tell the coalescer
    from the bare source.
    """

    # Mirrored verbatim (never coalesced): scalar lookups are
    # latency-sensitive singletons, maintenance is statistics-derived
    # and effectively free, multi-index contexts are analytic-only.
    _PASSTHROUGH_METHODS = (
        "query_cost",
        "maintenance_cost",
        "maintenance_costs",
        "multi_index_cost",
    )
    # Re-routed through the fused pair path when the source advertises
    # them (bit-identical per the kernel contract).
    _COLUMN_METHODS = ("query_costs", "sequential_costs")

    def __init__(
        self,
        source,
        *,
        window_s: float = _DEFAULT_WINDOW_S,
        max_pairs: int = _DEFAULT_MAX_PAIRS,
        deadline_provider: Callable[[], Deadline | None] | None = None,
    ) -> None:
        if getattr(source, "pair_costs", None) is None:
            raise TypeError(
                "PricingCoalescer requires a source with pair_costs; "
                f"{type(source).__name__} does not advertise it"
            )
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if max_pairs < 1:
            raise ValueError(f"max_pairs must be >= 1, got {max_pairs}")
        self._source = source
        self._window_s = window_s
        self._max_pairs = max_pairs
        self._deadline_provider = (
            deadline_provider
            if deadline_provider is not None
            else current_waiter_deadline
        )
        self._cond = threading.Condition()
        self._pending: dict[tuple, _WorkItem] = {}
        self._inflight: dict[tuple, _WorkItem] = {}
        self._leader_active = False
        self._window_opened_at: float | None = None
        self._active_callers = 0
        self._statistics = CoalescerStatistics()
        for name in self._PASSTHROUGH_METHODS:
            if getattr(source, name, None) is None:
                setattr(self, name, None)
        for name in self._COLUMN_METHODS:
            if getattr(source, name, None) is None:
                setattr(self, name, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def statistics(self) -> CoalescerStatistics:
        """Live counters (mutated in place as the coalescer is used)."""
        return self._statistics

    @property
    def source(self):
        """The wrapped backend (exposed for accounting)."""
        return self._source

    @property
    def window_s(self) -> float:
        """The configured micro-batch window in seconds."""
        return self._window_s

    @property
    def max_pairs(self) -> int:
        """The configured fused-batch pair cap."""
        return self._max_pairs

    @property
    def parallel_safe(self) -> bool:
        """Mirrors the wrapped source (the coalescer itself is
        internally locked and safe under any concurrency)."""
        return getattr(self._source, "parallel_safe", True)

    def pending_pairs(self) -> int:
        """Pairs currently waiting in the window (for tests/health)."""
        with self._cond:
            return len(self._pending)

    # ------------------------------------------------------------------
    # Pass-through capabilities
    # ------------------------------------------------------------------

    def query_cost(self, query: Query, index: Index | None) -> float:
        """Scalar lookup, delegated verbatim (never held in a window:
        scalar calls are the latency-sensitive odd ones out, and the
        facade routes hot-loop pricing through the batch entry points
        anyway)."""
        return self._source.query_cost(query, index)

    def maintenance_cost(self, query: Query, index: Index) -> float:
        return self._source.maintenance_cost(query, index)

    def maintenance_costs(self, queries, index: Index):
        return self._source.maintenance_costs(queries, index)

    def multi_index_cost(
        self, query: Query, indexes: tuple[Index, ...]
    ) -> float:
        return self._source.multi_index_cost(query, indexes)

    # ------------------------------------------------------------------
    # Coalesced entry points
    # ------------------------------------------------------------------

    def pair_costs(
        self, pairs: Sequence[tuple[Query, Index | None]]
    ) -> np.ndarray:
        """Price arbitrary pairs through the shared micro-batch window."""
        return self._coalesce(tuple(pairs))

    def query_costs(self, queries, index: Index | None) -> np.ndarray:
        """One column under one index, fused into the shared window.

        Bit-identical to the source's own ``query_costs`` by the
        kernel contract (all entry points agree bitwise per pair).
        """
        return self._coalesce(
            tuple((query, index) for query in queries)
        )

    def sequential_costs(self, queries) -> np.ndarray:
        """The no-index column, fused into the shared window."""
        return self._coalesce(tuple((query, None) for query in queries))

    # ------------------------------------------------------------------
    # The leader/follower scheduler
    # ------------------------------------------------------------------

    @staticmethod
    def _content_key(pair: tuple[Query, Index | None]) -> tuple:
        query, index = pair
        return (
            query.cache_key,
            None if index is None else index.attributes,
        )

    def _coalesce(
        self, pairs: tuple[tuple[Query, Index | None], ...]
    ) -> np.ndarray:
        if not pairs:
            return np.array([], dtype=np.float64)
        keys = [self._content_key(pair) for pair in pairs]
        deadline = self._deadline_provider()
        entered = time.monotonic()
        statistics = self._statistics
        with self._cond:
            self._active_callers += 1
            statistics.callers += 1
            # Enqueue: get-or-create one shared item per content key.
            # An item already pending or in flight is a dedup hit —
            # somebody else's dispatch will price it for us.
            my_items: dict[tuple, _WorkItem] = {}
            for key, pair in zip(keys, pairs):
                if key in my_items:
                    continue  # intra-call duplicate, one item suffices
                item = self._inflight.get(key)
                if item is None:
                    item = self._pending.get(key)
                if item is None:
                    item = _WorkItem(key, pair)
                    self._pending[key] = item
                    statistics.enqueued_pairs += 1
                    if self._window_opened_at is None:
                        self._window_opened_at = time.monotonic()
                else:
                    statistics.deduped_pairs += 1
                my_items[key] = item
            statistics.peak_window_pairs = max(
                statistics.peak_window_pairs, len(self._pending)
            )
            if len(self._pending) >= self._max_pairs:
                # Wake a leader sleeping out its window: the cap is
                # full, the batch should dispatch now.
                self._cond.notify_all()
            try:
                while not all(
                    item.done for item in my_items.values()
                ):
                    expired = deadline is not None and deadline.expired
                    mine_pending = any(
                        not item.done and item.key in self._pending
                        for item in my_items.values()
                    )
                    if mine_pending and expired:
                        # Deadline detach: dispatch my own pending
                        # subset right now, ignoring the window and any
                        # running leader.  The shared in-flight batch
                        # is untouched, and my dispatch still resolves
                        # the shared items for every other waiter.
                        statistics.deadline_detaches += 1
                        self._dispatch(
                            [
                                item
                                for item in my_items.values()
                                if not item.done
                                and item.key in self._pending
                            ]
                        )
                        continue
                    if mine_pending and not self._leader_active:
                        self._leader_active = True
                        try:
                            self._lead(deadline)
                        finally:
                            self._leader_active = False
                            self._cond.notify_all()
                        continue
                    # Follower: somebody else will resolve my items.
                    self._cond.wait(timeout=_FOLLOWER_POLL_S)
            finally:
                self._active_callers -= 1
                statistics.waiter_wait_seconds_total += max(
                    0.0, time.monotonic() - entered
                )
        results = np.empty(len(pairs), dtype=np.float64)
        for position, key in enumerate(keys):
            item = my_items[key]
            if item.error is not None:
                raise item.error
            results[position] = item.value
        return results

    def _lead(self, deadline: Deadline | None) -> None:
        """Wait the window out, then dispatch one fused batch.

        Caller holds the condition and has claimed leadership.  The
        window is skipped when the service is idle (no other caller
        could contribute pairs), when the leader's own deadline
        expired, or once the pair cap fills.
        """
        statistics = self._statistics
        idle = self._active_callers <= 1
        expired = deadline is not None and deadline.expired
        if idle or expired or self._window_s <= 0:
            statistics.idle_fast_paths += 1
        else:
            statistics.window_waits += 1
            opened = self._window_opened_at
            if opened is None:  # pragma: no cover - defensive
                opened = time.monotonic()
            close_at = opened + self._window_s
            while True:
                if len(self._pending) >= self._max_pairs:
                    statistics.cap_closes += 1
                    break
                remaining = close_at - time.monotonic()
                if remaining <= 0:
                    break
                if deadline is not None and deadline.expired:
                    break
                self._cond.wait(timeout=remaining)
                if not self._pending:
                    # A detaching waiter drained the window under us.
                    return
        if self._pending:
            self._dispatch(list(self._pending.values()))

    def _dispatch(self, items: list[_WorkItem]) -> None:
        """Price ``items`` in one fused batch and resolve them.

        Caller holds the condition; the backend call itself runs
        unlocked (it may be an expensive sharded sweep) so arrivals
        keep enqueueing into the next window meanwhile.  The whole
        batch is one unit to the resilient layer below — its terminal
        error, if any, resolves every item and is re-raised by each
        waiter individually.
        """
        statistics = self._statistics
        for item in items:
            del self._pending[item.key]
            self._inflight[item.key] = item
        if not self._pending:
            self._window_opened_at = None
        statistics.batches += 1
        statistics.dispatched_pairs += len(items)
        statistics.max_batch_pairs = max(
            statistics.max_batch_pairs, len(items)
        )
        self._cond.release()
        error: BaseException | None = None
        values = None
        try:
            values = self._source.pair_costs(
                tuple(item.pair for item in items)
            )
        except BaseException as caught:  # noqa: BLE001 - fanned out
            error = caught
        finally:
            self._cond.acquire()
        if error is not None:
            for item in items:
                item.error = error
                item.done = True
                self._inflight.pop(item.key, None)
        else:
            for item, value in zip(items, values.tolist()):
                item.value = value
                item.done = True
                self._inflight.pop(item.key, None)
        self._cond.notify_all()
