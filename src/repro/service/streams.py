"""Streaming progress for in-flight service requests.

Each admitted request gets an :class:`EventStream`; the worker thread's
per-request telemetry session carries a :class:`StreamSink` that
forwards every step record (``"type": "step"``) into the stream, tagged
with the request id.  Subscribers iterate :meth:`EventStream.events`
from any thread — records arrive in emission order while the request
runs and the iterator ends when the request finishes, so a protocol
client watching ``"stream": true`` output sees the construction
frontier live instead of a silent wait.
"""

from __future__ import annotations

import threading
from typing import Iterator

__all__ = ["EventStream", "StreamSink"]


class EventStream:
    """Thread-safe, ordered log of one request's step records."""

    def __init__(self, request_id: str) -> None:
        self.request_id = request_id
        self._records: list[dict] = []
        self._condition = threading.Condition()
        self._finished = False
        self._subscribers: set[object] = set()

    @property
    def subscribers(self) -> int:
        """Live :meth:`events` iterations over this stream.

        A subscriber counts from the iterator's first ``next()`` until
        it is exhausted, times out, or is closed — including closure by
        a client that disconnected mid-stream.  The chaos harness
        asserts this returns to zero after every scenario; a non-zero
        count with no live clients is a subscription leak.
        """
        with self._condition:
            return len(self._subscribers)

    @property
    def finished(self) -> bool:
        """True once the producing request completed (or failed)."""
        with self._condition:
            return self._finished

    def publish(self, record: dict) -> None:
        """Append one record and wake every waiting subscriber."""
        with self._condition:
            if self._finished:
                return
            self._records.append(record)
            self._condition.notify_all()

    def finish(self) -> None:
        """Mark the stream complete; iterators drain and stop."""
        with self._condition:
            self._finished = True
            self._condition.notify_all()

    def snapshot(self) -> tuple[dict, ...]:
        """Every record published so far."""
        with self._condition:
            return tuple(self._records)

    def events(self, timeout_s: float | None = None) -> Iterator[dict]:
        """Yield records in order until the stream finishes.

        ``timeout_s`` bounds each *wait* for the next record (not the
        whole iteration); on a timed-out wait the iterator stops early,
        which keeps protocol clients from hanging on a stuck worker.

        The subscription is dropped however the iteration ends —
        exhaustion, timeout, or generator close (a disconnecting client
        triggers ``GeneratorExit`` through the ``finally``), so dead
        clients never accumulate as phantom subscribers.
        """
        token = object()
        with self._condition:
            self._subscribers.add(token)
        try:
            position = 0
            while True:
                with self._condition:
                    while (
                        position >= len(self._records)
                        and not self._finished
                    ):
                        if not self._condition.wait(timeout=timeout_s):
                            return
                    if (
                        position >= len(self._records)
                        and self._finished
                    ):
                        return
                    record = self._records[position]
                position += 1
                yield record
        finally:
            with self._condition:
                self._subscribers.discard(token)


class StreamSink:
    """Telemetry sink that forwards step records into an event stream.

    Only ``"step"`` records are forwarded (span and metrics records stay
    in the per-request session); each forwarded record gains the
    producing ``request_id`` so multiplexed consumers can demux.
    """

    def __init__(self, stream: EventStream) -> None:
        self._stream = stream

    def emit(self, record: dict) -> None:
        if record.get("type") == "step":
            self._stream.publish(
                {**record, "request_id": self._stream.request_id}
            )

    def close(self) -> None:
        pass
