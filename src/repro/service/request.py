"""Request and response models of the advisor service.

A :class:`RecommendRequest` names a *registered* workload instead of
carrying one: registration is what lets the service keep compiled
workload packs, warm benefit tables, and what-if cache entries resident
between requests.  The :class:`RecommendResponse` carries the selection
result plus the per-request observability gauges (``service.*``,
``whatif.*`` deltas, ``evaluation.*``, ``resilience.*``) so callers can
see queueing, degradation, and warm-table reuse without scraping logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.steps import SelectionResult, STATUS_DEGRADED
from repro.core.sweep import SweepResult, normalize_budget_shares
from repro.exceptions import BudgetError, ExperimentError

__all__ = [
    "RecommendRequest",
    "RecommendResponse",
    "SweepRequest",
    "SweepResponse",
]


@dataclass(frozen=True)
class RecommendRequest:
    """One recommendation request against a registered workload.

    Parameters
    ----------
    workload:
        Name of a workload previously registered with
        :meth:`~repro.service.AdvisorService.register_workload`.
    budget_share / budget_bytes:
        Exactly one of: the Eq. 10 share ``w``, or absolute bytes.
    algorithm:
        One of the advisor algorithms (``extend`` by default — the
        service's warm benefit tables accelerate the extend variants).
    cost_kernel:
        ``"scalar"`` / ``"vectorized"`` / ``None`` (service default).
    deadline_s:
        Per-request wall-clock budget, measured from *submission* (queue
        wait counts against it).  ``None`` uses the service default.
        On expiry the request degrades to a tagged best-so-far result
        instead of failing.
    parallelism:
        Worker threads for candidate evaluation within this request.
    candidate_width:
        Maximum index width for the two-step algorithms' candidate set.
    request_id:
        Caller-chosen correlation id; auto-assigned when ``None``.
    """

    workload: str
    budget_share: float | None = None
    budget_bytes: float | None = None
    algorithm: str = "extend"
    cost_kernel: str | None = None
    deadline_s: float | None = None
    parallelism: int = 1
    candidate_width: int = 4
    request_id: str | None = None

    def __post_init__(self) -> None:
        if not self.workload:
            raise ExperimentError("request needs a workload name")
        if self.parallelism < 1:
            raise BudgetError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )
        if self.deadline_s is not None and self.deadline_s < 0:
            raise BudgetError(
                f"deadline_s must be >= 0, got {self.deadline_s}"
            )


@dataclass(frozen=True)
class RecommendResponse:
    """The outcome of one service request."""

    request_id: str
    workload: str
    workload_version: int
    status: str
    warm: bool
    """True when the request ran against already-populated warm benefit
    tables for its cost kernel (i.e. it was not the first extend-family
    request since the workload was (re-)registered)."""
    wall_seconds: float
    queue_seconds: float
    result: SelectionResult
    indexes: tuple[str, ...]
    gauges: dict[str, float] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """True when the run returned a tagged best-so-far result."""
        return self.status == STATUS_DEGRADED

    def to_dict(self) -> dict:
        """JSON-safe rendering for the line protocol."""
        return {
            "request_id": self.request_id,
            "workload": self.workload,
            "workload_version": self.workload_version,
            "status": self.status,
            "warm": self.warm,
            "wall_seconds": self.wall_seconds,
            "queue_seconds": self.queue_seconds,
            "algorithm": self.result.algorithm,
            "total_cost": self.result.total_cost,
            "memory": self.result.memory,
            "budget": self.result.budget,
            "whatif_calls": self.result.whatif_calls,
            "indexes": list(self.indexes),
            "gauges": dict(self.gauges),
        }


@dataclass(frozen=True)
class SweepRequest:
    """One multi-budget frontier request against a registered workload.

    The sweep is admission-controlled as *one* request (one concurrency
    slot, one deadline covering all points) and runs through the shared
    sweep engine of :mod:`repro.core.sweep`: budget shares execute
    descending over the registration's resident warm benefit store, so
    a frontier costs roughly one recommendation's worth of backend
    calls — and a repeat sweep over a warm registration costs none.

    Parameters
    ----------
    workload:
        Name of a registered workload.
    budget_shares:
        The Eq. 10 shares to answer; strict request inputs — each must
        lie in ``(0, 1]``, duplicates are rejected.
    cost_kernel / deadline_s / parallelism / request_id:
        As on :class:`RecommendRequest`.  On deadline expiry the sweep
        degrades to a tagged *partial* frontier of the points already
        answered instead of failing.
    """

    workload: str
    budget_shares: tuple[float, ...] = ()
    cost_kernel: str | None = None
    deadline_s: float | None = None
    parallelism: int = 1
    request_id: str | None = None

    def __post_init__(self) -> None:
        if not self.workload:
            raise ExperimentError("request needs a workload name")
        object.__setattr__(
            self,
            "budget_shares",
            normalize_budget_shares(self.budget_shares),
        )
        if self.parallelism < 1:
            raise BudgetError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )
        if self.deadline_s is not None and self.deadline_s < 0:
            raise BudgetError(
                f"deadline_s must be >= 0, got {self.deadline_s}"
            )


@dataclass(frozen=True)
class SweepResponse:
    """The outcome of one frontier request."""

    request_id: str
    workload: str
    workload_version: int
    status: str
    partial: bool
    """True when the sweep was truncated (deadline expiry or a
    mid-sweep worker failure) — the frontier covers only the
    budget shares listed in ``sweep.points``."""
    warm: bool
    wall_seconds: float
    queue_seconds: float
    sweep: SweepResult
    indexes: dict[float, tuple[str, ...]] = field(default_factory=dict)
    """Recommended index labels per answered budget share."""
    gauges: dict[str, float] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """True when any point degraded or the frontier is partial."""
        return self.status == STATUS_DEGRADED

    def to_dict(self) -> dict:
        """JSON-safe rendering for the line protocol."""
        return {
            "request_id": self.request_id,
            "workload": self.workload,
            "workload_version": self.workload_version,
            "status": self.status,
            "partial": self.partial,
            "warm": self.warm,
            "wall_seconds": self.wall_seconds,
            "queue_seconds": self.queue_seconds,
            "points": [
                {
                    "budget_share": point.budget_share,
                    "status": point.result.status,
                    "total_cost": point.result.total_cost,
                    "memory": point.result.memory,
                    "budget": point.result.budget,
                    "whatif_calls": point.whatif_calls,
                    "indexes": list(
                        self.indexes.get(point.budget_share, ())
                    ),
                }
                for point in self.sweep.points
            ],
            "frontier": [
                {"budget_share": fp.memory, "total_cost": fp.cost}
                for fp in self.sweep.frontier
            ],
            "skipped_shares": list(self.sweep.skipped_shares),
            "notes": list(self.sweep.notes),
            "gauges": dict(self.gauges),
        }
