"""Network-free JSON-lines protocol for the advisor service.

``python -m repro serve`` runs :func:`serve_loop` over stdin/stdout:
one JSON object per input line, one (or more, when streaming) JSON
objects per output line.  No sockets are opened — transport is the
caller's problem (pipes, ssh, a supervisor), which keeps the daemon
trivially sandboxable and testable.

Operations (``"op"`` key)::

    {"op": "register", "workload": "w1", "queries": ["SELECT ...", ...]}
    {"op": "update",   "workload": "w1", "queries": [["SELECT ...", 5.0]]}
    {"op": "evict",    "workload": "w1"}
    {"op": "recommend", "workload": "w1", "budget_share": 0.3,
     "algorithm": "extend", "deadline_s": 2.0, "stream": true}
    {"op": "sweep",     "workload": "w1", "budget_shares": [0.1, 0.3],
     "stream": true}                      # or "budget_sweep": "0.1:1.0:10"
    {"op": "stats"}
    {"op": "health"}
    {"op": "ready"}
    {"op": "snapshot"}
    {"op": "shutdown"}

``queries`` entries are SQL template strings or ``[sql, frequency]``
pairs.  Every response carries ``"ok"`` plus an echoed ``"id"`` when
the request had one — including error responses: even a line that does
not parse as JSON has its ``"id"`` salvaged textually when possible,
so request/response correlation survives malformed input.  With
``"stream": true`` a recommend emits each step event as
``{"ok": true, "op": "event", ...}`` lines before the final response,
so a client sees the construction frontier live.

Errors never kill the loop: they come back as
``{"ok": false, "error": <class>, "code": <stable-tag>, "message": ...}``.
``error`` is the Python class name (informative, may change);
``code`` is the machine-stable tag clients should switch on::

    parse_error        line was not valid JSON
    invalid_request    parsed, but the request is malformed or invalid
    unknown_op         the "op" value is not an operation the daemon speaks
    unknown_workload   referenced workload name is not registered
    overloaded         admission queue full (carries "retry_after_s")
    draining           service is shutting down gracefully
    watchdog_timeout   the watchdog cancelled the request
    snapshot_error     a durability snapshot failed
    invalid_budget     the memory budget is invalid
    deadline_exceeded  an explicit deadline check fired
    internal_error     anything else (a bug — report it)

``overloaded`` errors carry ``retry_after_s``, the service's estimate
of seconds until an admission slot frees up; well-behaved clients
sleep that long before retrying.

A client that disconnects (broken pipe on our stdout) ends the loop
gracefully: in-flight streamed requests are still driven to their
terminal outcome (so service counters stay consistent), nothing is
emitted to the dead pipe, and the service shuts down as usual.
"""

from __future__ import annotations

import json
import re
from typing import IO

from repro.exceptions import (
    BudgetError,
    DeadlineExceededError,
    ReproError,
    ServiceDrainingError,
    ServiceError,
    ServiceOverloadedError,
    SnapshotError,
    UnknownOperationError,
    UnknownWorkloadError,
    WatchdogTimeoutError,
)
from repro.core.sweep import parse_budget_sweep
from repro.service.request import RecommendRequest, SweepRequest

__all__ = ["error_code", "serve_loop"]

_REQUEST_FIELDS = (
    "workload",
    "budget_share",
    "budget_bytes",
    "algorithm",
    "cost_kernel",
    "deadline_s",
    "parallelism",
    "candidate_width",
    "request_id",
)

_SWEEP_FIELDS = (
    "workload",
    "budget_shares",
    "cost_kernel",
    "deadline_s",
    "parallelism",
    "request_id",
)

# Most-derived classes first; resolution walks the error's MRO, so a
# new ServiceError subclass automatically degrades to "invalid_request"
# until it gets a code of its own.
_CODE_BY_TYPE: dict[type, str] = {
    json.JSONDecodeError: "parse_error",
    UnknownOperationError: "unknown_op",
    UnknownWorkloadError: "unknown_workload",
    ServiceOverloadedError: "overloaded",
    ServiceDrainingError: "draining",
    WatchdogTimeoutError: "watchdog_timeout",
    SnapshotError: "snapshot_error",
    BudgetError: "invalid_budget",
    DeadlineExceededError: "deadline_exceeded",
    TypeError: "invalid_request",
    ReproError: "invalid_request",
}

# Textual "id" salvage for lines that fail JSON parsing: string or
# numeric values only, good enough to correlate an error response with
# the (malformed) request that caused it.
_ID_SALVAGE = re.compile(
    r'"id"\s*:\s*("(?:[^"\\]|\\.)*"|-?\d+(?:\.\d+)?)'
)


class _ClientDisconnected(Exception):
    """Our output pipe is gone; stop serving (module-internal)."""


def error_code(error: BaseException) -> str:
    """The stable protocol ``code`` tag for an exception."""
    for cls in type(error).__mro__:
        code = _CODE_BY_TYPE.get(cls)
        if code is not None:
            return code
    return "internal_error"


def _error_payload(error: BaseException) -> dict:
    payload = {
        "ok": False,
        "error": type(error).__name__,
        "code": error_code(error),
        "message": str(error),
    }
    retry_after = getattr(error, "retry_after_s", None)
    if retry_after is not None:
        payload["retry_after_s"] = retry_after
    return payload


def _salvage_id(line: str):
    match = _ID_SALVAGE.search(line)
    if match is None:
        return None
    try:
        return json.loads(match.group(1))
    except json.JSONDecodeError:  # pragma: no cover - regex is stricter
        return None


def _queries(message: dict) -> list:
    queries = message.get("queries")
    if not isinstance(queries, list) or not queries:
        raise ServiceError(
            f"{message.get('op')} needs a non-empty 'queries' list"
        )
    return [
        tuple(entry) if isinstance(entry, list) else entry
        for entry in queries
    ]


def _workload_name(message: dict) -> str:
    name = message.get("workload")
    if not isinstance(name, str) or not name:
        raise ServiceError(
            f"{message.get('op')} needs a 'workload' name"
        )
    return name


def _recommend_request(
    message: dict, defaults: dict | None
) -> RecommendRequest:
    fields = dict(defaults or {})
    fields.update(
        {
            key: message[key]
            for key in _REQUEST_FIELDS
            if message.get(key) is not None
        }
    )
    fields["workload"] = _workload_name(message)
    return RecommendRequest(**fields)


def _sweep_request(message: dict, defaults: dict | None) -> SweepRequest:
    fields = {
        key: value
        for key, value in (defaults or {}).items()
        if key in _SWEEP_FIELDS
    }
    fields.update(
        {
            key: message[key]
            for key in _SWEEP_FIELDS
            if message.get(key) is not None
        }
    )
    spec = message.get("budget_sweep")
    if spec is not None:
        if fields.get("budget_shares"):
            raise ServiceError(
                "pass either 'budget_shares' or 'budget_sweep', not both"
            )
        if not isinstance(spec, str):
            raise ServiceError(
                "'budget_sweep' must be a 'low:high:steps' string"
            )
        fields["budget_shares"] = parse_budget_sweep(spec)
    shares = fields.get("budget_shares")
    if isinstance(shares, list):
        fields["budget_shares"] = tuple(shares)
    elif shares is None:
        raise ServiceError(
            "sweep needs 'budget_shares' (a list of shares) or "
            "'budget_sweep' ('low:high:steps')"
        )
    fields["workload"] = _workload_name(message)
    return SweepRequest(**fields)


def _handle(
    service, message: dict, emit, defaults: dict | None
) -> bool:
    """Process one message; returns False on shutdown."""
    op = message.get("op")
    if op == "register":
        registration = service.register_workload(
            _workload_name(message), _queries(message)
        )
        emit(
            {
                "ok": True,
                "op": op,
                "workload": registration.name,
                "version": registration.version,
                "queries": len(registration.workload),
            }
        )
    elif op == "update":
        registration = service.update_workload(
            _workload_name(message), _queries(message)
        )
        emit(
            {
                "ok": True,
                "op": op,
                "workload": registration.name,
                "version": registration.version,
                "queries": len(registration.workload),
            }
        )
    elif op == "evict":
        name = _workload_name(message)
        invalidated = service.evict_workload(name)
        emit(
            {
                "ok": True,
                "op": op,
                "workload": name,
                "invalidated_cache_entries": invalidated,
            }
        )
    elif op == "recommend":
        request = _recommend_request(message, defaults)
        if message.get("stream"):
            ticket = service.submit(request)
            try:
                for event in ticket.stream.events():
                    emit({"ok": True, "op": "event", **event})
            except _ClientDisconnected:
                # Nobody left to tell, but the admitted request must
                # still reach its terminal outcome before we tear the
                # service down, or its slot accounting would be torn.
                ticket.outcome()
                raise
            response = ticket.result()
        else:
            response = service.recommend(request)
        emit({"ok": True, "op": op, **response.to_dict()})
    elif op == "sweep":
        request = _sweep_request(message, defaults)
        if message.get("stream"):
            ticket = service.submit_sweep(request)
            try:
                for event in ticket.stream.events():
                    emit({"ok": True, "op": "event", **event})
            except _ClientDisconnected:
                ticket.outcome()
                raise
            response = ticket.result()
        else:
            response = service.sweep(request)
        emit({"ok": True, "op": op, **response.to_dict()})
    elif op == "stats":
        emit(
            {
                "ok": True,
                "op": op,
                "workloads": list(service.workloads()),
                "gauges": service.gauges(),
            }
        )
    elif op == "health":
        emit({"ok": True, "op": op, **service.health()})
    elif op == "ready":
        emit({"ok": True, "op": op, **service.ready()})
    elif op == "snapshot":
        path = service.snapshot_now()
        emit(
            {
                "ok": True,
                "op": op,
                "path": str(path),
                "sequence": service.statistics.snapshot_sequence,
            }
        )
    elif op == "shutdown":
        emit({"ok": True, "op": op})
        return False
    else:
        raise UnknownOperationError(f"unknown op {op!r}")
    return True


def serve_loop(
    service,
    input_stream: IO[str],
    output_stream: IO[str],
    *,
    request_defaults: dict | None = None,
) -> int:
    """Serve JSON-lines requests until shutdown or end of input.

    ``request_defaults`` pre-fills recommend-request fields (e.g. the
    CLI's ``--parallelism``) that individual messages may override.
    Returns the number of messages handled.  The service is closed on
    exit (draining in-flight requests), whatever ended the loop — end
    of input, a ``shutdown`` op, or the client's disconnect.
    """
    handled = 0
    try:
        for line in input_stream:
            line = line.strip()
            if not line:
                continue
            handled += 1
            correlation = None
            emit = _emitter(output_stream, lambda: correlation)
            try:
                try:
                    message = json.loads(line)
                    if not isinstance(message, dict):
                        raise ServiceError(
                            "each input line must be a JSON object"
                        )
                    correlation = message.get("id")
                    if not _handle(
                        service, message, emit, request_defaults
                    ):
                        break
                except json.JSONDecodeError as error:
                    correlation = _salvage_id(line)
                    emit(_error_payload(error))
                except (ReproError, TypeError) as error:
                    # TypeError covers unexpected RecommendRequest
                    # fields; anything else is a genuine bug and
                    # should crash loud.
                    emit(_error_payload(error))
            except _ClientDisconnected:
                break
    finally:
        service.close()
    return handled


def _emitter(output_stream: IO[str], correlation):
    def emit(payload: dict) -> None:
        identifier = correlation()
        if identifier is not None:
            payload = {"id": identifier, **payload}
        try:
            json.dump(payload, output_stream, separators=(",", ":"))
            output_stream.write("\n")
            output_stream.flush()
        except (BrokenPipeError, ValueError) as error:
            # BrokenPipeError: the reader hung up.  ValueError: the
            # stream object was closed under us.  Either way the
            # client is gone.
            raise _ClientDisconnected(str(error)) from error

    return emit
