"""Network-free JSON-lines protocol for the advisor service.

``python -m repro serve`` runs :func:`serve_loop` over stdin/stdout:
one JSON object per input line, one (or more, when streaming) JSON
objects per output line.  No sockets are opened — transport is the
caller's problem (pipes, ssh, a supervisor), which keeps the daemon
trivially sandboxable and testable.

Operations (``"op"`` key)::

    {"op": "register", "workload": "w1", "queries": ["SELECT ...", ...]}
    {"op": "update",   "workload": "w1", "queries": [["SELECT ...", 5.0]]}
    {"op": "evict",    "workload": "w1"}
    {"op": "recommend", "workload": "w1", "budget_share": 0.3,
     "algorithm": "extend", "deadline_s": 2.0, "stream": true}
    {"op": "stats"}
    {"op": "shutdown"}

``queries`` entries are SQL template strings or ``[sql, frequency]``
pairs.  Every response carries ``"ok"`` plus an echoed ``"id"`` when
the request had one.  With ``"stream": true`` a recommend emits each
step event as ``{"ok": true, "op": "event", ...}`` lines before the
final response, so a client sees the construction frontier live.
Errors never kill the loop: they come back as
``{"ok": false, "error": <class>, "message": ...}`` —
``ServiceOverloadedError`` is the backpressure signal.
"""

from __future__ import annotations

import json
from typing import IO

from repro.exceptions import ReproError, ServiceError
from repro.service.request import RecommendRequest

__all__ = ["serve_loop"]

_REQUEST_FIELDS = (
    "workload",
    "budget_share",
    "budget_bytes",
    "algorithm",
    "cost_kernel",
    "deadline_s",
    "parallelism",
    "candidate_width",
    "request_id",
)


def _queries(message: dict) -> list:
    queries = message.get("queries")
    if not isinstance(queries, list) or not queries:
        raise ServiceError(
            f"{message.get('op')} needs a non-empty 'queries' list"
        )
    return [
        tuple(entry) if isinstance(entry, list) else entry
        for entry in queries
    ]


def _workload_name(message: dict) -> str:
    name = message.get("workload")
    if not isinstance(name, str) or not name:
        raise ServiceError(
            f"{message.get('op')} needs a 'workload' name"
        )
    return name


def _recommend_request(
    message: dict, defaults: dict | None
) -> RecommendRequest:
    fields = dict(defaults or {})
    fields.update(
        {
            key: message[key]
            for key in _REQUEST_FIELDS
            if message.get(key) is not None
        }
    )
    fields["workload"] = _workload_name(message)
    return RecommendRequest(**fields)


def _handle(
    service, message: dict, emit, defaults: dict | None
) -> bool:
    """Process one message; returns False on shutdown."""
    op = message.get("op")
    if op == "register":
        registration = service.register_workload(
            _workload_name(message), _queries(message)
        )
        emit(
            {
                "ok": True,
                "op": op,
                "workload": registration.name,
                "version": registration.version,
                "queries": len(registration.workload),
            }
        )
    elif op == "update":
        registration = service.update_workload(
            _workload_name(message), _queries(message)
        )
        emit(
            {
                "ok": True,
                "op": op,
                "workload": registration.name,
                "version": registration.version,
                "queries": len(registration.workload),
            }
        )
    elif op == "evict":
        name = _workload_name(message)
        invalidated = service.evict_workload(name)
        emit(
            {
                "ok": True,
                "op": op,
                "workload": name,
                "invalidated_cache_entries": invalidated,
            }
        )
    elif op == "recommend":
        request = _recommend_request(message, defaults)
        if message.get("stream"):
            ticket = service.submit(request)
            for event in ticket.stream.events():
                emit({"ok": True, "op": "event", **event})
            response = ticket.result()
        else:
            response = service.recommend(request)
        emit({"ok": True, "op": op, **response.to_dict()})
    elif op == "stats":
        emit(
            {
                "ok": True,
                "op": op,
                "workloads": list(service.workloads()),
                "gauges": service.gauges(),
            }
        )
    elif op == "shutdown":
        emit({"ok": True, "op": op})
        return False
    else:
        raise ServiceError(f"unknown op {op!r}")
    return True


def serve_loop(
    service,
    input_stream: IO[str],
    output_stream: IO[str],
    *,
    request_defaults: dict | None = None,
) -> int:
    """Serve JSON-lines requests until shutdown or end of input.

    ``request_defaults`` pre-fills recommend-request fields (e.g. the
    CLI's ``--parallelism``) that individual messages may override.
    Returns the number of messages handled.  The service is closed on
    exit (waiting for in-flight requests), whatever ended the loop.
    """
    handled = 0
    try:
        for line in input_stream:
            line = line.strip()
            if not line:
                continue
            handled += 1
            correlation = None
            emit = _emitter(output_stream, lambda: correlation)
            try:
                message = json.loads(line)
                if not isinstance(message, dict):
                    raise ServiceError(
                        "each input line must be a JSON object"
                    )
                correlation = message.get("id")
                if not _handle(
                    service, message, emit, request_defaults
                ):
                    break
            except json.JSONDecodeError as error:
                emit(
                    {
                        "ok": False,
                        "error": "JSONDecodeError",
                        "message": str(error),
                    }
                )
            except (ReproError, TypeError) as error:
                # TypeError covers unexpected RecommendRequest fields;
                # anything else is a genuine bug and should crash loud.
                emit(
                    {
                        "ok": False,
                        "error": type(error).__name__,
                        "message": str(error),
                    }
                )
    finally:
        service.close()
    return handled


def _emitter(output_stream: IO[str], correlation):
    def emit(payload: dict) -> None:
        identifier = correlation()
        if identifier is not None:
            payload = {"id": identifier, **payload}
        json.dump(payload, output_stream, separators=(",", ":"))
        output_stream.write("\n")
        output_stream.flush()

    return emit

