"""Durable snapshots of the advisor service's resident tuning state.

A long-running :class:`~repro.service.AdvisorService` accumulates
expensive state — registered workloads, their warm benefit stores of
priced cost columns, and the shared what-if caches those columns were
priced from.  A crash or restart would throw all of it away and force
every client back through a cold start.  This module writes that state
to disk and brings it back:

* **Versioned** — the envelope carries a format name and version; a
  reader refusing an unknown version falls back to a cold start instead
  of misinterpreting bytes.
* **Checksummed** — a SHA-256 digest over the canonical payload JSON
  detects torn or bit-flipped files.
* **Atomic** — snapshots are written to a temp file in the same
  directory, fsynced, and ``os.replace``d into place, so a crash
  mid-write leaves the previous snapshot intact (and a stray temp file,
  which restore ignores).

Restore is **never fatal**: a missing, truncated, corrupt, version-skewed
or schema-mismatched snapshot is logged, counted, and discarded — the
service boots cold.  A successful restore is exact: cost columns come
back bit-identical (JSON floats round-trip ``float64`` exactly through
``repr``), so a post-restart warm request selects the same steps a
pre-crash warm request would have.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import ExperimentError, SnapshotError
from repro.persistence import schema_to_dict
from repro.workload.query import Query, QueryKind, Workload

__all__ = [
    "RestoreReport",
    "SNAPSHOT_FILENAME",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "read_snapshot",
    "restore_registry",
    "schema_fingerprint",
    "snapshot_path",
    "write_snapshot",
]

logger = logging.getLogger("repro.service.durability")

SNAPSHOT_FORMAT = "repro-service-snapshot"
SNAPSHOT_VERSION = 1
SNAPSHOT_FILENAME = "service-snapshot.json"

_RESTORE_OK = "ok"
_RESTORE_MISSING = "missing"


@dataclass(frozen=True)
class RestoreReport:
    """What a restore attempt found and did.

    ``reason`` is ``"ok"`` on success, ``"missing"`` when no snapshot
    exists (a normal first boot), and otherwise a short machine-stable
    tag of why the snapshot was discarded (``"corrupt-json"``,
    ``"checksum-mismatch"``, ``"version-skew"``, ``"schema-mismatch"``,
    ``"malformed-payload"``).
    """

    restored: bool
    reason: str
    sequence: int = 0
    workloads: int = 0
    warm_columns: int = 0

    @property
    def corrupt(self) -> bool:
        """True when a snapshot existed but had to be discarded."""
        return not self.restored and self.reason != _RESTORE_MISSING


def schema_fingerprint(schema) -> str:
    """Stable digest of a schema's full content.

    Snapshots embed it so a restore against a *different* schema (same
    directory reused, schema drifted between releases) is detected as
    skew instead of producing warm columns that misprice everything.
    """
    canonical = json.dumps(
        schema_to_dict(schema), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def snapshot_path(directory: str | Path) -> Path:
    """Where the current snapshot of a service directory lives."""
    return Path(directory) / SNAPSHOT_FILENAME


def _workload_payload(registration, stacks=None) -> dict:
    """One registration (queries, in workload order, plus warm columns).

    Query *order* is significant: warm-store position arrays index into
    the workload's query sequence, so restore must rebuild it verbatim
    (the what-if cache export below is position-keyed against it too).

    When ``stacks`` (the service's :class:`~repro.advisor.KernelStacks`)
    is given, the shared what-if caches are exported scoped to this
    registration's queries, one section per built kernel — that is what
    lets a restored service answer a repeat request with *zero* backend
    calls, not just zero warm-store misses.
    """
    warm = {}
    for kernel, store in sorted(dict(registration.warm_stores).items()):
        warm[kernel] = [
            {
                "attributes": list(attributes),
                "positions": [int(p) for p in positions],
                "costs": [float(c) for c in costs],
            }
            for attributes, positions, costs in store.entries()
        ]
    queries = tuple(registration.workload)
    whatif = {}
    if stacks is not None:
        for kernel in sorted(stacks.built_kernels()):
            _, optimizer = stacks.stack(kernel)
            entries = optimizer.export_cache(queries)
            if entries["cost"] or entries["maintenance"]:
                whatif[kernel] = entries
    return {
        "name": registration.name,
        "version": registration.version,
        "served": registration.served,
        "queries": [
            {
                "query_id": query.query_id,
                "table": query.table_name,
                "attributes": sorted(query.attributes),
                "frequency": query.frequency,
                "kind": query.kind.value,
            }
            for query in registration.workload
        ],
        "warm": warm,
        "whatif": whatif,
    }


def write_snapshot(
    directory: str | Path, *, schema, registry, sequence: int, stacks=None
) -> Path:
    """Atomically write one snapshot; returns the snapshot path.

    Raises :class:`~repro.exceptions.SnapshotError` when the directory
    cannot be created or the file cannot be written — a service that
    was *asked* to persist must not pretend it did.
    """
    directory = Path(directory)
    payload = {
        "schema_fingerprint": schema_fingerprint(schema),
        "sequence": sequence,
        "workloads": [
            _workload_payload(registration, stacks)
            for registration in registry.registrations()
        ],
    }
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    envelope = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "checksum": hashlib.sha256(body.encode("utf-8")).hexdigest(),
        "payload": payload,
    }
    target = snapshot_path(directory)
    temporary = directory / f".{SNAPSHOT_FILENAME}.{sequence}.tmp"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(
                envelope, handle, sort_keys=True, separators=(",", ":")
            )
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, target)
    except OSError as error:
        try:
            temporary.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise SnapshotError(
            f"cannot write snapshot to {target}: {error}"
        ) from error
    return target


def read_snapshot(
    directory: str | Path,
) -> tuple[dict | None, str]:
    """Read and verify a snapshot; ``(payload, reason)``.

    ``payload`` is ``None`` unless the file exists, parses, carries the
    supported format/version, and matches its checksum.  Every failure
    mode maps to a stable ``reason`` tag (see :class:`RestoreReport`)
    and is logged — never raised.
    """
    path = snapshot_path(directory)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None, _RESTORE_MISSING
    except OSError as error:
        logger.warning("snapshot %s unreadable: %s", path, error)
        return None, "unreadable"
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as error:
        logger.warning(
            "snapshot %s is corrupt (bad JSON, likely a partial "
            "write): %s",
            path,
            error,
        )
        return None, "corrupt-json"
    if not isinstance(envelope, dict) or not isinstance(
        envelope.get("payload"), dict
    ):
        logger.warning("snapshot %s has no payload object", path)
        return None, "malformed-payload"
    if (
        envelope.get("format") != SNAPSHOT_FORMAT
        or envelope.get("version") != SNAPSHOT_VERSION
    ):
        logger.warning(
            "snapshot %s has format %r version %r; this build reads "
            "%r version %r — discarding",
            path,
            envelope.get("format"),
            envelope.get("version"),
            SNAPSHOT_FORMAT,
            SNAPSHOT_VERSION,
        )
        return None, "version-skew"
    payload = envelope["payload"]
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    if digest != envelope.get("checksum"):
        logger.warning(
            "snapshot %s failed its checksum — discarding", path
        )
        return None, "checksum-mismatch"
    return payload, _RESTORE_OK


def restore_registry(
    directory: str | Path, *, schema, registry, stacks=None
) -> RestoreReport:
    """Restore registrations and warm stores from a snapshot, if sane.

    Corruption of any flavour (including a schema fingerprint that no
    longer matches) degrades to a cold start: nothing is installed into
    ``registry`` and the report says why.  On success every snapshotted
    workload is re-registered at its old version with its warm cost
    columns re-frozen bit-identically.
    """
    payload, reason = read_snapshot(directory)
    if payload is None:
        return RestoreReport(restored=False, reason=reason)
    if payload.get("schema_fingerprint") != schema_fingerprint(schema):
        logger.warning(
            "snapshot in %s was written for a different schema — "
            "discarding",
            directory,
        )
        return RestoreReport(restored=False, reason="schema-mismatch")
    try:
        workloads = payload["workloads"]
        sequence = int(payload["sequence"])
        restored_columns = 0
        for entry in workloads:
            queries = [
                Query(
                    query_id=record["query_id"],
                    table_name=record["table"],
                    attributes=frozenset(record["attributes"]),
                    frequency=record["frequency"],
                    kind=QueryKind(record["kind"]),
                )
                for record in entry["queries"]
            ]
            registration = registry.restore(
                entry["name"],
                Workload(schema, queries),
                version=int(entry["version"]),
                served=int(entry["served"]),
            )
            for kernel, columns in entry["warm"].items():
                store = registration.warm_store(kernel)
                for column in columns:
                    store.put(
                        tuple(column["attributes"]),
                        np.array(column["positions"], dtype=np.intp),
                        np.array(column["costs"], dtype=np.float64),
                    )
                    restored_columns += 1
            if stacks is not None:
                for kernel, cached in entry.get("whatif", {}).items():
                    _, optimizer = stacks.stack(kernel)
                    optimizer.import_cache(queries, cached)
    except (
        KeyError,
        TypeError,
        ValueError,
        AttributeError,
        ExperimentError,
    ) as error:
        # A checksum-valid snapshot with impossible content can only
        # come from a writer bug or a handcrafted file; either way the
        # contract is the same — log, discard, cold start.  Workloads
        # already installed are evicted so the registry is not left
        # half-restored.
        logger.warning(
            "snapshot in %s has malformed content (%s) — discarding",
            directory,
            error,
        )
        for name in registry.names():
            registry.evict(name)
        return RestoreReport(restored=False, reason="malformed-payload")
    logger.info(
        "restored %d workload(s), %d warm column(s) from snapshot "
        "sequence %d in %s",
        len(workloads),
        restored_columns,
        sequence,
        directory,
    )
    return RestoreReport(
        restored=True,
        reason=_RESTORE_OK,
        sequence=sequence,
        workloads=len(workloads),
        warm_columns=restored_columns,
    )
