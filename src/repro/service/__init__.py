"""Advisor-as-a-service: a concurrent, deadline-aware daemon.

The :class:`AdvisorService` keeps compiled workloads, warm benefit
tables, and the shared what-if cache resident across requests, and
serves concurrent ``recommend`` requests through a bounded thread-pool
executor with fail-fast admission control.  The JSON-lines protocol in
:mod:`repro.service.protocol` exposes the same surface over
stdin/stdout (``python -m repro serve``) without opening any sockets.

Crash tolerance lives in :mod:`repro.service.durability` (versioned,
checksummed, atomically-written snapshots restored at startup —
:class:`RestoreReport` says what a restore found) and is exercised by
the seeded chaos harness in :mod:`repro.service.chaos`
(``python -m repro.service.chaos``).
"""

from repro.service.coalescer import (
    CoalescerStatistics,
    PricingCoalescer,
    waiter_deadline,
)
from repro.service.daemon import (
    AdvisorService,
    ServiceStatistics,
    ServiceTicket,
)
from repro.service.durability import RestoreReport
from repro.service.registry import (
    WorkloadRegistration,
    WorkloadRegistry,
)
from repro.service.request import (
    RecommendRequest,
    RecommendResponse,
    SweepRequest,
    SweepResponse,
)
from repro.service.streams import EventStream, StreamSink
from repro.service.protocol import error_code, serve_loop

__all__ = [
    "AdvisorService",
    "CoalescerStatistics",
    "EventStream",
    "PricingCoalescer",
    "RecommendRequest",
    "RecommendResponse",
    "RestoreReport",
    "ServiceStatistics",
    "ServiceTicket",
    "StreamSink",
    "SweepRequest",
    "SweepResponse",
    "WorkloadRegistration",
    "WorkloadRegistry",
    "error_code",
    "serve_loop",
    "waiter_deadline",
]
