"""Advisor-as-a-service: a concurrent, deadline-aware daemon.

The :class:`AdvisorService` keeps compiled workloads, warm benefit
tables, and the shared what-if cache resident across requests, and
serves concurrent ``recommend`` requests through a bounded thread-pool
executor with fail-fast admission control.  The JSON-lines protocol in
:mod:`repro.service.protocol` exposes the same surface over
stdin/stdout (``python -m repro serve``) without opening any sockets.
"""

from repro.service.daemon import (
    AdvisorService,
    ServiceStatistics,
    ServiceTicket,
)
from repro.service.registry import (
    WorkloadRegistration,
    WorkloadRegistry,
)
from repro.service.request import RecommendRequest, RecommendResponse
from repro.service.streams import EventStream, StreamSink
from repro.service.protocol import serve_loop

__all__ = [
    "AdvisorService",
    "EventStream",
    "RecommendRequest",
    "RecommendResponse",
    "ServiceStatistics",
    "ServiceTicket",
    "StreamSink",
    "WorkloadRegistration",
    "WorkloadRegistry",
    "serve_loop",
]
