"""Seeded chaos harness for the advisor service.

Robustness claims that are only exercised by whatever failures happen
to occur in production are not claims at all.  This module *scripts*
the failures — deterministically, from a single seed — and asserts the
service's invariants after every scenario:

* every admitted request reaches **exactly one** terminal outcome
  (a ``completed``/``degraded`` response or an error);
* the ``service.*`` counters stay consistent (``in_flight`` and
  ``queue_depth`` return to zero, ``admitted == completed + failed``);
* no event stream retains phantom subscribers after its clients died;
* the worker pool is back at full strength (hung workers replaced);
* restored warm stores are bit-identical to what was snapshotted, or
  the service is *cleanly* cold — never half-restored.

Scenarios (``SCENARIOS``):

``worker_death``
    Worker executions die mid-request (an exploding cost backend) and
    one genuinely hangs until the watchdog abandons its thread.
``shard_worker_death``
    Every process of a :class:`~repro.cost.shard.ShardedCostSource`
    pool is SIGKILLed between requests; the next cold request must
    still complete with a configuration and cost identical to the
    healthy baseline, the ``resilience.*`` gauges on its response must
    record the degradation (a transient failure and a retry), and the
    shard statistics must show exactly one lost batch and one pool
    rebuild.
``sweep_worker_death``
    A multi-budget frontier sweep's worker dies mid-sweep (an
    exploding backend call aimed, by a fault-free probe run, inside a
    later point's pricing window).  The sweep must degrade to a
    *tagged partial frontier* — the already-answered budget prefix,
    ``partial`` flagged, the unanswered shares listed as skipped — not
    crash, and the service must answer a repeat sweep over the same
    registration cleanly afterwards.
``malformed_lines``
    The JSON-lines loop is fed truncated JSON, binary junk, non-object
    lines, and unknown ops; every line must produce exactly one
    response, errors must carry stable ``code`` tags, and ``id``
    correlation must survive even unparseable lines.
``client_disconnect``
    Streaming clients vanish mid-stream (broken pipe on the protocol,
    closed generators on the API); subscriptions must not leak and the
    abandoned requests must still reach terminal outcomes.
``corrupt_snapshot``
    A snapshot is truncated, bit-flipped, or version-skewed between
    runs; restart must detect it, fall back to a cold start, and keep
    serving.  The un-corrupted control restart must restore warm
    columns bit-identically.
``clock_skew``
    The service clock (a :class:`~repro.resilience.faults.ManualClock`)
    jumps forward mid-request via injected latency spikes from a
    :class:`~repro.resilience.faults.FaultInjectingCostSource`;
    requests past their deadline must degrade (not crash, not hang) and
    a manual watchdog sweep over a skewed clock must cancel only
    genuinely in-flight overdue work.
``coalescer_waiter_storm``
    A storm of concurrent cold requests fuses its pricing into shared
    coalescer batches, and the shard pool is SIGKILLed while those
    fused batches are in flight.  Every waiter must reach exactly one
    terminal outcome (the resilient retry heals the lost batch for all
    of them at once), the recommendations must stay bit-identical to a
    healthy baseline, and the ``coalescer.*`` gauges must show the
    storm actually coalesced (fused batches, nonzero cross-request
    dedup).

Scenarios use ``max_concurrency=1`` where the *report* depends on call
order, so one seed always yields one report —
``python -m repro.service.chaos --seed 7`` twice prints identical
JSON.  Run it via ``main()`` (exit 1 on any violated invariant).
"""

from __future__ import annotations

import argparse
import io
import json
import os
import random
import signal
import sys
import tempfile
import threading
import time
from concurrent.futures import TimeoutError as _FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path

from repro.cost.model import CostModel
from repro.cost.shard import ShardedCostSource
from repro.cost.whatif import AnalyticalCostSource
from repro.exceptions import WatchdogTimeoutError
from repro.resilience.faults import (
    FaultInjectingCostSource,
    ManualClock,
)
from repro.service.daemon import AdvisorService
from repro.service.protocol import serve_loop
from repro.service.request import RecommendRequest, SweepRequest
from repro.workload.enterprise import (
    EnterpriseConfig,
    generate_enterprise_workload,
)
from repro.workload.generator import GeneratorConfig, generate_workload

__all__ = ["ChaosHarness", "ScenarioReport", "SCENARIOS", "main"]

SCENARIOS = (
    "worker_death",
    "shard_worker_death",
    "sweep_worker_death",
    "malformed_lines",
    "client_disconnect",
    "corrupt_snapshot",
    "clock_skew",
    "coalescer_waiter_storm",
)

_BUDGET_SHARE = 0.3
_OUTCOME_WAIT_S = 30.0

# Sweep-chaos grid: on the enterprise workload below, at least one
# budget past the first still prices fresh candidates (tight budgets
# reject the wide indexes the big-budget pass priced and fall back to
# narrow ones it never saw), which is what gives the scripted death a
# non-empty window to land in.  The uniform generator workloads are
# warm-covered after the first point and would make the scenario
# vacuous.
_SWEEP_SHARES = (0.1, 0.05, 0.02, 0.01)


@dataclass
class ScenarioReport:
    """What one scenario did and which invariants (if any) it broke."""

    scenario: str
    seed: int
    admitted: int = 0
    completed: int = 0
    degraded: int = 0
    errored: int = 0
    details: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "admitted": self.admitted,
            "completed": self.completed,
            "degraded": self.degraded,
            "errored": self.errored,
            "details": self.details,
            "violations": list(self.violations),
        }


class _ExplodingSource:
    """Scalar analytic source whose scripted calls die or hang.

    ``die_on`` calls raise ``RuntimeError`` — *not* a ``ReproError``,
    so it models the worker's own code dying rather than a backend
    politely failing.  The ``hang_on`` call blocks on ``gate`` until
    the scenario releases it (after the watchdog already abandoned the
    worker).
    """

    parallel_safe = True

    def __init__(
        self,
        schema,
        *,
        die_on: frozenset[int],
        hang_on: int | None,
        gate: threading.Event,
        hang_started: threading.Event,
    ) -> None:
        self._inner = AnalyticalCostSource(CostModel(schema))
        self._die_on = die_on
        self._hang_on = hang_on
        self._gate = gate
        self._hang_started = hang_started
        self._calls = 0
        self._lock = threading.Lock()

    def _chaos(self) -> None:
        with self._lock:
            self._calls += 1
            calls = self._calls
        if calls == self._hang_on:
            self._hang_started.set()
            self._gate.wait()
        if calls in self._die_on:
            raise RuntimeError(
                f"chaos: worker execution died at call #{calls}"
            )

    def query_cost(self, query, index):
        self._chaos()
        return self._inner.query_cost(query, index)

    def maintenance_cost(self, query, index):
        self._chaos()
        return self._inner.maintenance_cost(query, index)

    def multi_index_cost(self, query, indexes):
        self._chaos()
        return self._inner.multi_index_cost(query, indexes)


class _DroppingOutput(io.StringIO):
    """An output stream whose client hangs up after ``lines`` lines.

    The pipe breaks on the flush that ends a response line — where a
    real SIGPIPE surfaces for a line-buffered writer.
    """

    def __init__(self, lines: int) -> None:
        super().__init__()
        self._lines = lines

    def flush(self) -> None:
        if self._lines <= 0:
            raise BrokenPipeError("chaos: client hung up")
        self._lines -= 1
        super().flush()


def _outcome(ticket, report: ScenarioReport):
    """A ticket's terminal outcome, or (None, None) after recording a
    never-finished violation."""
    try:
        return ticket.outcome(timeout_s=_OUTCOME_WAIT_S)
    except (TimeoutError, _FutureTimeoutError):
        report.violations.append(
            f"request {ticket.request_id} never reached a terminal "
            "outcome"
        )
        return None, None


class ChaosHarness:
    """Runs seeded failure scenarios against a real service."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        # A small but non-trivial deterministic workload: enough
        # queries that a selection run makes many backend calls (so
        # mid-request faults land mid-request), small enough that a
        # full scenario sweep stays in CI-seconds territory.
        self._workload = generate_workload(
            GeneratorConfig(
                tables=3,
                attributes_per_table=8,
                queries_per_table=5,
                seed=1909,
            )
        )
        self._schema = self._workload.schema

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(self, scenario: str) -> ScenarioReport:
        """Run one scenario by name; returns its report."""
        if scenario not in SCENARIOS:
            raise ValueError(
                f"unknown chaos scenario {scenario!r}; pick one of "
                f"{', '.join(SCENARIOS)}"
            )
        return getattr(self, f"_run_{scenario}")()

    def run_all(self) -> list[ScenarioReport]:
        """Run every scenario; returns the reports in order."""
        return [self.run(scenario) for scenario in SCENARIOS]

    # ------------------------------------------------------------------
    # Shared invariant checking
    # ------------------------------------------------------------------

    def _settle_and_check(
        self, service, tickets, report: ScenarioReport
    ) -> None:
        """Drain the service and assert the cross-scenario invariants."""
        for ticket in tickets:
            response, error = _outcome(ticket, report)
            if response is None and error is None:
                continue
            if error is not None:
                report.errored += 1
            elif response.status == "degraded":
                report.degraded += 1
                report.completed += 1
            elif response.status == "completed":
                report.completed += 1
            else:
                report.violations.append(
                    f"request {ticket.request_id} finished with "
                    f"unknown status {response.status!r}"
                )
            if ticket.stream.subscribers != 0:
                report.violations.append(
                    f"stream {ticket.request_id} leaked "
                    f"{ticket.stream.subscribers} subscriber(s)"
                )
            if not ticket.stream.finished:
                report.violations.append(
                    f"stream {ticket.request_id} was never finished"
                )
        service.close()
        statistics = service.statistics
        if statistics.in_flight != 0:
            report.violations.append(
                f"in_flight stuck at {statistics.in_flight}"
            )
        if statistics.queue_depth != 0:
            report.violations.append(
                f"queue_depth stuck at {statistics.queue_depth}"
            )
        if (
            statistics.admitted
            != statistics.completed + statistics.failed
        ):
            report.violations.append(
                f"admitted ({statistics.admitted}) != completed "
                f"({statistics.completed}) + failed "
                f"({statistics.failed})"
            )
        report.admitted = statistics.admitted
        if report.completed != statistics.completed:
            report.violations.append(
                f"ticket outcomes saw {report.completed} completions "
                f"but counters say {statistics.completed}"
            )
        if report.errored != statistics.failed:
            report.violations.append(
                f"ticket outcomes saw {report.errored} errors "
                f"but counters say {statistics.failed}"
            )

    # ------------------------------------------------------------------
    # Scenarios
    # ------------------------------------------------------------------

    def _run_worker_death(self) -> ScenarioReport:
        report = ScenarioReport("worker_death", self.seed)
        rng = random.Random(self.seed)
        gate = threading.Event()
        hang_started = threading.Event()
        # A cold selection run against the chaos workload makes ~110
        # backend calls (warm ones make none), and a dead request's
        # already-priced columns stay in the warm store, so successive
        # requests keep advancing the shared call counter through the
        # cold-pricing window.  Deaths land early in that window, the
        # hang later (disjoint ranges: a call dies or hangs, never
        # both), so every scripted fault is guaranteed to fire.
        die_on = frozenset(
            rng.sample(range(2, 60), rng.randint(2, 3))
        )
        hang_on = rng.randint(61, 90)
        source = _ExplodingSource(
            self._schema,
            die_on=die_on,
            hang_on=hang_on,
            gate=gate,
            hang_started=hang_started,
        )
        # Serial on purpose: the fault schedule is call-order keyed, so
        # one worker keeps which-request-hits-which-fault reproducible.
        # Time is manual and the watchdog swept by hand: deadlines then
        # only expire when the scenario says so, which makes the cancel
        # count exact instead of racing the background sweeper.
        clock = ManualClock()
        service = AdvisorService(
            self._schema,
            max_concurrency=1,
            queue_depth=16,
            cost_source=source,
            clock=clock,
            watchdog_grace_s=1.0,
            watchdog_interval_s=0.0,
            drain_timeout_s=5.0,
        )
        tickets: list = []
        try:
            service.register_workload("chaos", self._workload)
            tickets = [
                service.submit(
                    RecommendRequest(
                        workload="chaos",
                        budget_share=_BUDGET_SHARE,
                        deadline_s=5.0,
                        request_id=f"death-{i}",
                    )
                )
                for i in range(6)
            ]
            if not hang_started.wait(timeout=_OUTCOME_WAIT_S):
                report.violations.append(
                    "the scripted hang was never reached"
                )
            # Jump simulated time past deadline + grace and sweep: the
            # one hung worker must be cancelled, the queued requests
            # (not yet started) must be left to degrade on their own.
            clock.advance(10.0)
            cancelled = service.run_watchdog_once()
            if cancelled != 1:
                report.violations.append(
                    f"watchdog sweep cancelled {cancelled} requests, "
                    "expected exactly the 1 hung one"
                )
            outcomes = [
                _outcome(ticket, report) for ticket in tickets
            ]
            watchdogged = sum(
                1
                for _, error in outcomes
                if isinstance(error, WatchdogTimeoutError)
            )
            died = sum(
                1
                for _, error in outcomes
                if isinstance(error, RuntimeError)
            )
            report.details["die_on"] = sorted(die_on)
            report.details["hang_on"] = hang_on
            report.details["watchdog_cancelled"] = watchdogged
            report.details["worker_deaths"] = died
            if died == 0:
                report.violations.append(
                    "no request died from the exploding backend"
                )
            if watchdogged != 1:
                report.violations.append(
                    "expected exactly 1 watchdog cancel, saw "
                    f"{watchdogged}"
                )
            statistics = service.statistics
            if statistics.watchdog_cancelled != 1:
                report.violations.append(
                    "watchdog_cancelled counter is "
                    f"{statistics.watchdog_cancelled}, expected 1"
                )
            # The abandoned worker is still parked on the gate, yet the
            # pool must already be back at full strength.
            alive = service.health()["pool"]["alive"]
            report.details["pool_alive"] = alive
            if alive != 1:
                report.violations.append(
                    f"pool has {alive} live worker(s) after the "
                    "watchdog abandonment, expected 1"
                )
        finally:
            gate.set()
            self._settle_and_check(service, tickets, report)
        return report

    def _run_shard_worker_death(self) -> ScenarioReport:
        report = ScenarioReport("shard_worker_death", self.seed)
        rng = random.Random(self.seed)
        # The service-built sharded flavour keeps its production
        # dispatch floor (2048 pairs) and would price this deliberately
        # small workload locally; injecting the source with a floor of
        # 1 forces every batch of the chaos workload through the real
        # process pool.
        source = ShardedCostSource(
            self._schema, shards=2, min_dispatch_pairs=1
        )
        service = AdvisorService(
            self._schema,
            max_concurrency=1,
            queue_depth=4,
            cost_source=source,
            drain_timeout_s=5.0,
        )
        tickets: list = []
        try:
            # Warm stores are per-registration: two names for the same
            # workload guarantee the post-kill request prices cold
            # through the pool instead of being answered from memory.
            service.register_workload("shard-warm", self._workload)
            service.register_workload("shard-cold", self._workload)
            baseline_ticket = service.submit(
                RecommendRequest(
                    workload="shard-warm",
                    budget_share=_BUDGET_SHARE,
                    request_id="shard-death-0",
                )
            )
            tickets.append(baseline_ticket)
            baseline = baseline_ticket.result(
                timeout_s=_OUTCOME_WAIT_S
            )
            if source.statistics.dispatches == 0:
                report.violations.append(
                    "baseline request never dispatched to the shard "
                    "pool; scenario vacuous"
                )
            # Massacre: SIGKILL every pool process (order scripted by
            # the seed) and wait until the pool really is a graveyard,
            # so the kill can never race the next request.
            victims = source.worker_pids()
            rng.shuffle(victims)
            for pid in victims:
                os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + _OUTCOME_WAIT_S
            while (
                source.alive_workers()
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            report.details["workers_killed"] = len(victims)
            if source.alive_workers():
                report.violations.append(
                    f"{source.alive_workers()} worker(s) survived "
                    "SIGKILL"
                )
            # The facade cache is content-addressed and shared across
            # requests, so re-pricing the same queries would never
            # reach the (dead) pool.  Dropping it forces the cold
            # request to genuinely price through the backend.
            _, optimizer = service.kernel_stacks.stack("vectorized")
            optimizer.clear_cache()
            cold_ticket = service.submit(
                RecommendRequest(
                    workload="shard-cold",
                    budget_share=_BUDGET_SHARE,
                    request_id="shard-death-1",
                )
            )
            tickets.append(cold_ticket)
            cold = cold_ticket.result(timeout_s=_OUTCOME_WAIT_S)
            # The request must complete *correctly*: same configuration
            # and bit-identical cost as the healthy baseline run.
            if cold.status != "completed":
                report.violations.append(
                    "post-kill request finished "
                    f"{cold.status!r}, expected a clean completion"
                )
            if cold.warm:
                report.violations.append(
                    "post-kill request was answered warm; the pool "
                    "was never exercised"
                )
            if cold.indexes != baseline.indexes:
                report.violations.append(
                    "post-kill recommendation differs from the "
                    "healthy baseline configuration"
                )
            if cold.result.total_cost != baseline.result.total_cost:
                report.violations.append(
                    "post-kill total cost "
                    f"{cold.result.total_cost!r} is not bit-identical "
                    f"to the baseline {baseline.result.total_cost!r}"
                )
            # Degradation must be *visible*: the response gauges carry
            # the resilience counters that absorbed the dead pool.
            retries = cold.gauges.get(
                "resilience.retries", 0.0
            ) - baseline.gauges.get("resilience.retries", 0.0)
            transients = cold.gauges.get(
                "resilience.transient_failures", 0.0
            ) - baseline.gauges.get(
                "resilience.transient_failures", 0.0
            )
            fallbacks = cold.gauges.get(
                "resilience.fallback_calls", 0.0
            ) - baseline.gauges.get(
                "resilience.fallback_calls", 0.0
            )
            statistics = source.statistics
            report.details["resilience_retries"] = retries
            report.details["resilience_transient_failures"] = transients
            report.details["worker_failures"] = statistics.worker_failures
            report.details["pool_rebuilds"] = statistics.pool_rebuilds
            report.details["pool_starts"] = statistics.pool_starts
            if transients < 1:
                report.violations.append(
                    "killing the whole pool recorded no "
                    "resilience.transient_failures on the response"
                )
            if retries < 1:
                report.violations.append(
                    "the lost batch was never retried against a "
                    "rebuilt pool (resilience.retries gauge flat)"
                )
            if fallbacks:
                report.violations.append(
                    "the retry should have healed the primary; "
                    f"{fallbacks:.0f} call(s) leaked to the fallback "
                    "chain"
                )
            if statistics.worker_failures != 1:
                report.violations.append(
                    "expected exactly 1 lost batch, shard statistics "
                    f"counted {statistics.worker_failures}"
                )
            if statistics.pool_rebuilds != 1:
                report.violations.append(
                    "expected exactly 1 pool rebuild, shard "
                    f"statistics counted {statistics.pool_rebuilds}"
                )
        finally:
            self._settle_and_check(service, tickets, report)
            source.close()
        return report

    def _run_sweep_worker_death(self) -> ScenarioReport:
        report = ScenarioReport("sweep_worker_death", self.seed)
        rng = random.Random(self.seed)
        workload = generate_enterprise_workload(
            EnterpriseConfig(scale=0.05, seed=500)
        )
        schema = workload.schema

        def _source(die_on: frozenset[int] = frozenset()):
            return _ExplodingSource(
                schema,
                die_on=die_on,
                hang_on=None,
                gate=threading.Event(),
                hang_started=threading.Event(),
            )

        # Probe pass: a fault-free twin service runs the exact sweep
        # the victim will run and reports each point's backend-call
        # delta, which maps the raw-call windows the death can be
        # aimed into.  Both services are deterministic from the same
        # cold state, so the victim replays the probe's call sequence
        # call for call.
        probe_source = _source()
        with AdvisorService(
            schema,
            max_concurrency=1,
            queue_depth=4,
            cost_source=probe_source,
        ) as probe:
            probe.register_workload("sweep-probe", workload)
            probed = probe.sweep(
                SweepRequest(
                    workload="sweep-probe",
                    budget_shares=_SWEEP_SHARES,
                )
            )
        ordered = sorted(
            probed.sweep.points,
            key=lambda point: point.execution_order,
        )
        if probe_source._calls != sum(
            point.whatif_calls for point in ordered
        ):
            report.violations.append(
                "facade call deltas no longer map 1:1 onto raw "
                f"backend calls ({probe_source._calls} raw vs "
                f"{sum(p.whatif_calls for p in ordered)} facade); "
                "the death window cannot be aimed"
            )
            return report
        # Vacuity guard: the death must land *mid-sweep*, i.e. in a
        # point past the first — which requires such a point to make
        # backend calls at all.
        eligible = [
            position
            for position, point in enumerate(ordered)
            if position >= 1 and point.whatif_calls > 0
        ]
        report.details["point_calls"] = [
            point.whatif_calls for point in ordered
        ]
        if not eligible:
            report.violations.append(
                "no sweep point past the first prices anything on "
                "this workload; scenario vacuous"
            )
            return report
        target = rng.choice(eligible)
        window_start = sum(
            point.whatif_calls for point in ordered[:target]
        )
        die_call = rng.randint(
            window_start + 1,
            window_start + ordered[target].whatif_calls,
        )
        expected_shares = [
            point.budget_share for point in ordered[:target]
        ]
        report.details["death_point"] = target
        report.details["die_call"] = die_call

        source = _source(die_on=frozenset({die_call}))
        service = AdvisorService(
            schema,
            max_concurrency=1,
            queue_depth=4,
            cost_source=source,
            drain_timeout_s=5.0,
        )
        tickets: list = []
        try:
            service.register_workload("sweep-chaos", workload)
            ticket = service.submit_sweep(
                SweepRequest(
                    workload="sweep-chaos",
                    budget_shares=_SWEEP_SHARES,
                    request_id="sweep-death-0",
                )
            )
            tickets.append(ticket)
            events = list(
                ticket.stream.events(timeout_s=_OUTCOME_WAIT_S)
            )
            point_events = [
                event
                for event in events
                if event.get("type") == "sweep_point"
            ]
            response, error = _outcome(ticket, report)
            if error is not None:
                report.violations.append(
                    "mid-sweep worker death failed the whole request "
                    f"({error!r}) instead of degrading to a partial "
                    "frontier"
                )
            elif response is not None:
                if not response.partial:
                    report.violations.append(
                        "sweep completed despite the scripted worker "
                        "death; the death never fired"
                    )
                if response.status != "degraded":
                    report.violations.append(
                        "partial frontier is not tagged degraded "
                        f"(status {response.status!r})"
                    )
                answered = [
                    point.budget_share
                    for point in sorted(
                        response.sweep.points,
                        key=lambda point: point.execution_order,
                    )
                ]
                report.details["answered_shares"] = answered
                if answered != expected_shares:
                    report.violations.append(
                        f"partial frontier answered {answered}, "
                        "expected exactly the pre-death prefix "
                        f"{expected_shares}"
                    )
                if sorted(
                    answered + list(response.sweep.skipped_shares),
                    reverse=True,
                ) != list(_SWEEP_SHARES):
                    report.violations.append(
                        "answered + skipped shares do not add back "
                        "up to the requested grid (skipped "
                        f"{list(response.sweep.skipped_shares)})"
                    )
                if not response.sweep.notes:
                    report.violations.append(
                        "partial frontier carries no note explaining "
                        "the truncation"
                    )
                if len(point_events) != len(answered):
                    report.violations.append(
                        f"stream published {len(point_events)} "
                        f"sweep_point events for {len(answered)} "
                        "answered points"
                    )
                if response.gauges.get("sweep.partial") != 1:
                    report.violations.append(
                        "sweep.partial gauge not set on the partial "
                        "response"
                    )
            # The service must survive its worker's death: the same
            # registration answers a repeat sweep cleanly (the
            # scripted death is one-shot, the completed prefix stayed
            # warm).
            repeat_ticket = service.submit_sweep(
                SweepRequest(
                    workload="sweep-chaos",
                    budget_shares=_SWEEP_SHARES,
                    request_id="sweep-death-1",
                )
            )
            tickets.append(repeat_ticket)
            repeat, repeat_error = _outcome(repeat_ticket, report)
            if repeat_error is not None:
                report.violations.append(
                    "repeat sweep after the worker death failed "
                    f"({repeat_error!r}); the service did not recover"
                )
            elif repeat is not None and (
                repeat.partial or repeat.status != "completed"
            ):
                report.violations.append(
                    "repeat sweep after the worker death finished "
                    f"{repeat.status!r} (partial={repeat.partial}), "
                    "expected a clean full frontier"
                )
        finally:
            self._settle_and_check(service, tickets, report)
        return report

    def _run_coalescer_waiter_storm(self) -> ScenarioReport:
        report = ScenarioReport("coalescer_waiter_storm", self.seed)
        rng = random.Random(self.seed)
        storm_size = 4
        # A dispatch floor of 1 forces every fused coalescer batch of
        # this deliberately small workload through the real process
        # pool, so the SIGKILL lands on work the waiters depend on.
        source = ShardedCostSource(
            self._schema, shards=2, min_dispatch_pairs=1
        )
        # A generous window guarantees the storm's racing cold misses
        # actually meet inside it and fuse (the point of the scenario);
        # the idle fast path keeps the serial baseline request quick.
        service = AdvisorService(
            self._schema,
            max_concurrency=storm_size,
            queue_depth=storm_size,
            cost_source=source,
            batch_window_ms=75.0,
            drain_timeout_s=5.0,
        )
        tickets: list = []
        try:
            # Separate registrations for the same workload: the storm
            # must price cold through the pool, not read the baseline
            # request's warm benefit tables.
            service.register_workload("storm-warm", self._workload)
            service.register_workload("storm-cold", self._workload)
            baseline_ticket = service.submit(
                RecommendRequest(
                    workload="storm-warm",
                    budget_share=_BUDGET_SHARE,
                    request_id="storm-0",
                )
            )
            tickets.append(baseline_ticket)
            baseline = baseline_ticket.result(timeout_s=_OUTCOME_WAIT_S)
            baseline_dispatches = source.statistics.dispatches
            if baseline_dispatches == 0:
                report.violations.append(
                    "baseline request never dispatched to the shard "
                    "pool; scenario vacuous"
                )
            # The facade cache is shared and content-addressed;
            # dropping it forces the storm to genuinely re-price
            # through coalescer -> resilient -> pool.
            _, optimizer = service.kernel_stacks.stack("vectorized")
            optimizer.clear_cache()
            coalescer = service.coalescer("vectorized")
            if coalescer is None:
                report.violations.append(
                    "service built no coalescer for the vectorized "
                    "stack; scenario vacuous"
                )
                return report
            before = coalescer.statistics.copy()

            # The assassin waits for the first storm batch to reach
            # the pool, then SIGKILLs every worker (seed-scripted
            # order) — mid-fused-batch, while the followers of that
            # batch are blocked on its shared work items.
            def _assassinate() -> None:
                deadline = time.monotonic() + _OUTCOME_WAIT_S
                while (
                    source.statistics.dispatches <= baseline_dispatches
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.001)
                victims = source.worker_pids()
                rng.shuffle(victims)
                for pid in victims:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:  # pragma: no cover
                        pass
                report.details["workers_killed"] = len(victims)

            assassin = threading.Thread(
                target=_assassinate, name="chaos-assassin", daemon=True
            )
            assassin.start()
            storm = [
                service.submit(
                    RecommendRequest(
                        workload="storm-cold",
                        budget_share=_BUDGET_SHARE,
                        request_id=f"storm-{position + 1}",
                    )
                )
                for position in range(storm_size)
            ]
            tickets.extend(storm)
            responses = [
                ticket.result(timeout_s=_OUTCOME_WAIT_S)
                for ticket in storm
            ]
            assassin.join(timeout=_OUTCOME_WAIT_S)
            report.details["storm_waiters"] = storm_size
            for response in responses:
                if response.status != "completed":
                    report.violations.append(
                        f"storm request {response.request_id} "
                        f"finished {response.status!r}, expected a "
                        "clean completion"
                    )
                if response.indexes != baseline.indexes:
                    report.violations.append(
                        f"storm request {response.request_id} "
                        "recommendation differs from the healthy "
                        "baseline configuration"
                    )
                if (
                    response.result.total_cost
                    != baseline.result.total_cost
                ):
                    report.violations.append(
                        f"storm request {response.request_id} total "
                        f"cost {response.result.total_cost!r} is not "
                        "bit-identical to the baseline "
                        f"{baseline.result.total_cost!r}"
                    )
                if "coalescer.batches" not in response.gauges:
                    report.violations.append(
                        f"storm request {response.request_id} "
                        "response carries no coalescer.* gauges"
                    )
            storm_stats = coalescer.statistics.copy()
            fused = storm_stats.batches - before.batches
            deduped = (
                storm_stats.deduped_pairs - before.deduped_pairs
            )
            # Raw batch/failure counts depend on where exactly the
            # kill lands relative to in-flight batches; the report
            # keeps only their seed-stable truth values.
            report.details["storm_coalesced"] = fused >= 1
            report.details["storm_deduped"] = deduped > 0
            report.details["batch_lost"] = (
                source.statistics.worker_failures >= 1
            )
            report.details["pool_rebuilt"] = (
                source.statistics.pool_rebuilds >= 1
            )
            if fused < 1:
                report.violations.append(
                    "the storm never dispatched a fused coalescer "
                    "batch; scenario vacuous"
                )
            if deduped <= 0:
                report.violations.append(
                    "concurrent storm requests shared no work items "
                    "(coalescer.deduped_pairs flat); the storm never "
                    "coalesced"
                )
            if source.statistics.worker_failures < 1:
                report.violations.append(
                    "killing the pool mid-batch lost no shard batch "
                    "(worker_failures flat); the kill missed"
                )
            if source.statistics.pool_rebuilds < 1:
                report.violations.append(
                    "the lost batch never forced a pool rebuild"
                )
        finally:
            self._settle_and_check(service, tickets, report)
            source.close()
        return report

    def _run_malformed_lines(self) -> ScenarioReport:
        report = ScenarioReport("malformed_lines", self.seed)
        rng = random.Random(self.seed)
        recommend = json.dumps(
            {
                "id": "good-1",
                "op": "recommend",
                "workload": "chaos",
                "budget_share": _BUDGET_SHARE,
            }
        )
        truncated_with_id = json.dumps(
            {"id": "cut-1", "op": "recommend", "workload": "chaos"}
        )
        # Cut after the id field but before the closing brace, so the
        # line is unparseable yet the id is salvageable.
        truncated_with_id = truncated_with_id[
            : rng.randint(20, len(truncated_with_id) - 2)
        ]
        junk = "".join(
            chr(rng.randint(0x20, 0x2F)) for _ in range(16)
        )
        lines = [
            recommend,
            truncated_with_id,
            junk,
            "[1,2,3]",
            json.dumps({"id": 9, "op": "frobnicate"}),
            json.dumps({"id": 10, "op": "recommend", "workload": "no"}),
            json.dumps({"op": "shutdown"}),
        ]
        service = AdvisorService(
            self._schema, max_concurrency=1, queue_depth=4
        )
        service.register_workload("chaos", self._workload)
        output = io.StringIO()
        handled = serve_loop(
            service,
            io.StringIO("\n".join(lines) + "\n"),
            output,
        )
        responses = [
            json.loads(line)
            for line in output.getvalue().splitlines()
        ]
        report.details["handled"] = handled
        report.details["codes"] = [
            response.get("code")
            for response in responses
            if not response.get("ok")
        ]
        if handled != len(lines):
            report.violations.append(
                f"loop handled {handled} of {len(lines)} lines"
            )
        if len(responses) != len(lines):
            report.violations.append(
                f"{len(lines)} lines produced {len(responses)} "
                "responses (want exactly one each)"
            )
        for response in responses:
            if not response.get("ok") and "code" not in response:
                report.violations.append(
                    f"error response without code: {response}"
                )
        by_id = {
            response.get("id"): response for response in responses
        }
        if "cut-1" not in by_id:
            report.violations.append(
                "truncated line's id was not salvaged into its error"
            )
        elif by_id["cut-1"].get("code") != "parse_error":
            report.violations.append(
                "truncated line's error is not a parse_error"
            )
        if by_id.get(9, {}).get("code") != "unknown_op":
            report.violations.append("unknown op has no unknown_op code")
        if by_id.get(10, {}).get("code") != "unknown_workload":
            report.violations.append(
                "unknown workload has no unknown_workload code"
            )
        if not by_id.get("good-1", {}).get("ok"):
            report.violations.append(
                "valid request drowned among the malformed ones"
            )
        statistics = service.statistics
        report.admitted = statistics.admitted
        report.completed = statistics.completed
        report.errored = statistics.failed
        if statistics.in_flight != 0:
            report.violations.append(
                f"in_flight stuck at {statistics.in_flight}"
            )
        if (
            statistics.admitted
            != statistics.completed + statistics.failed
        ):
            report.violations.append("admission counters inconsistent")
        return report

    def _run_client_disconnect(self) -> ScenarioReport:
        report = ScenarioReport("client_disconnect", self.seed)
        rng = random.Random(self.seed)
        # Protocol level: the client hangs up a couple of lines into a
        # streamed recommend; the loop must end gracefully and the
        # request must still be driven to its terminal outcome.
        lines = [
            json.dumps(
                {
                    "id": "s",
                    "op": "recommend",
                    "workload": "chaos",
                    "budget_share": _BUDGET_SHARE,
                    "stream": True,
                }
            ),
            json.dumps({"id": "mid", "op": "stats"}),
            json.dumps({"id": "late", "op": "stats"}),
        ]
        service = AdvisorService(
            self._schema, max_concurrency=1, queue_depth=4
        )
        service.register_workload("chaos", self._workload)
        # Lines produce >= 3 flushes in total, so a 1-2 line budget
        # guarantees the disconnect fires mid-conversation.
        drop_after = rng.randint(1, 2)
        output = _DroppingOutput(drop_after)
        handled = serve_loop(
            service,
            io.StringIO("\n".join(lines) + "\n"),
            output,
        )
        report.details["drop_after_lines"] = drop_after
        report.details["handled"] = handled
        if handled >= len(lines):
            report.violations.append(
                "loop outlived the client's disconnect "
                f"(handled {handled} of {len(lines)} lines)"
            )
        statistics = service.statistics
        report.admitted = statistics.admitted
        report.completed = statistics.completed
        report.degraded = statistics.degraded
        report.errored = statistics.failed
        if statistics.in_flight != 0:
            report.violations.append(
                f"in_flight stuck at {statistics.in_flight} after "
                "client disconnect"
            )
        if (
            statistics.admitted
            != statistics.completed + statistics.failed
        ):
            report.violations.append(
                "disconnected client's request lost from the counters"
            )
        # API level: N subscribers attach to one stream and every one
        # of them dies mid-iteration; no subscription may survive.
        streamers = rng.randint(4, 8)
        with AdvisorService(
            self._schema, max_concurrency=1, queue_depth=4
        ) as direct:
            direct.register_workload("chaos", self._workload)
            ticket = direct.submit(
                RecommendRequest(
                    workload="chaos",
                    budget_share=_BUDGET_SHARE,
                    request_id="leak-check",
                )
            )
            failures: list[str] = []

            def doomed_client(events_before_death: int) -> None:
                iterator = ticket.stream.events(timeout_s=5.0)
                try:
                    for _ in range(events_before_death):
                        next(iterator, None)
                finally:
                    # A real disconnect closes the generator through
                    # GC; close() is its deterministic equivalent.
                    iterator.close()

            threads = [
                threading.Thread(
                    target=doomed_client, args=(rng.randint(0, 6),)
                )
                for _ in range(streamers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=_OUTCOME_WAIT_S)
                if thread.is_alive():
                    failures.append("streaming client never exited")
            ticket.result(timeout_s=_OUTCOME_WAIT_S)
            report.violations.extend(failures)
            report.details["streamers"] = streamers
            if ticket.stream.subscribers != 0:
                report.violations.append(
                    f"{ticket.stream.subscribers} phantom "
                    f"subscriber(s) after {streamers} dead clients"
                )
        return report

    def _run_corrupt_snapshot(self) -> ScenarioReport:
        report = ScenarioReport("corrupt_snapshot", self.seed)
        rng = random.Random(self.seed)
        with tempfile.TemporaryDirectory(
            prefix="repro-chaos-"
        ) as tmp:
            directory = Path(tmp)
            # Seed service: register, warm up, snapshot on drain.
            with AdvisorService(
                self._schema,
                max_concurrency=1,
                queue_depth=4,
                snapshot_dir=directory,
            ) as seeder:
                seeder.register_workload("chaos", self._workload)
                seeder.recommend(
                    RecommendRequest(
                        workload="chaos", budget_share=_BUDGET_SHARE
                    )
                )
                baseline = {
                    kernel: store.entries()
                    for kernel, store in seeder.registry.get(
                        "chaos"
                    ).warm_stores.items()
                }
            snapshot = directory / "service-snapshot.json"
            pristine = snapshot.read_bytes()
            report.admitted += 1
            report.completed += 1

            # Control: an uncorrupted restart restores bit-identically.
            with AdvisorService(
                self._schema, snapshot_dir=directory
            ) as restarted:
                restore = restarted.restore_report
                if restore is None or not restore.restored:
                    report.violations.append(
                        "clean restart did not restore the snapshot"
                    )
                else:
                    restored = restarted.registry.get("chaos")
                    for kernel, entries in baseline.items():
                        back = restored.warm_store(kernel).entries()
                        if not _entries_identical(entries, back):
                            report.violations.append(
                                f"restored {kernel} warm store is "
                                "not bit-identical"
                            )
                response = restarted.recommend(
                    RecommendRequest(
                        workload="chaos", budget_share=_BUDGET_SHARE
                    )
                )
                report.admitted += 1
                report.completed += 1
                if not response.warm:
                    report.violations.append(
                        "restored warm store did not make the "
                        "first post-restart request warm"
                    )

            corruptions = ("truncate", "bitflip", "version_skew")
            report.details["corruptions"] = list(corruptions)
            for corruption in corruptions:
                corrupted = _corrupt(pristine, corruption, rng)
                snapshot.write_bytes(corrupted)
                with AdvisorService(
                    self._schema, snapshot_dir=directory
                ) as victim:
                    restore = victim.restore_report
                    if restore is None or restore.restored:
                        report.violations.append(
                            f"{corruption}: corrupt snapshot was "
                            "restored anyway"
                        )
                        continue
                    if not restore.corrupt:
                        report.violations.append(
                            f"{corruption}: not detected as corrupt "
                            f"(reason={restore.reason!r})"
                        )
                    if victim.workloads():
                        report.violations.append(
                            f"{corruption}: cold start is not clean — "
                            f"workloads {victim.workloads()} survived"
                        )
                    if victim.statistics.snapshot_corruptions != 1:
                        report.violations.append(
                            f"{corruption}: corruption not counted"
                        )
                    # The service must still *work* after discarding.
                    victim.register_workload("chaos", self._workload)
                    response = victim.recommend(
                        RecommendRequest(
                            workload="chaos",
                            budget_share=_BUDGET_SHARE,
                        )
                    )
                    report.admitted += 1
                    report.completed += 1
                    if response.warm:
                        report.violations.append(
                            f"{corruption}: cold start claims warmth"
                        )
        return report

    def _run_clock_skew(self) -> ScenarioReport:
        report = ScenarioReport("clock_skew", self.seed)
        rng = random.Random(self.seed)
        clock = ManualClock()
        # Latency spikes on the injected source *are* the skew: every
        # spiked backend call jumps the shared service clock far past
        # any request deadline.
        source = FaultInjectingCostSource(
            AnalyticalCostSource(CostModel(self._schema)),
            spike_rate=0.05,
            spike_latency_s=float(rng.randint(30, 90)),
            seed=self.seed,
            clock=clock,
        )
        service = AdvisorService(
            self._schema,
            max_concurrency=1,
            queue_depth=8,
            cost_source=source,
            clock=clock,
            watchdog_interval_s=0.0,  # swept manually, on skewed time
            watchdog_grace_s=5.0,
        )
        tickets = []
        try:
            service.register_workload("chaos", self._workload)
            tickets = [
                service.submit(
                    RecommendRequest(
                        workload="chaos",
                        budget_share=_BUDGET_SHARE,
                        deadline_s=10.0,
                        request_id=f"skew-{i}",
                    )
                )
                for i in range(4)
            ]
            for ticket in tickets:
                _outcome(ticket, report)
            # All requests are terminal, so a watchdog sweep on the
            # (badly skewed) clock must find nothing to cancel.
            cancelled = service.run_watchdog_once()
            if cancelled != 0:
                report.violations.append(
                    f"watchdog cancelled {cancelled} finished "
                    "request(s) under clock skew"
                )
            spikes = source.statistics.injected_latency_spikes
            report.details["injected_spikes"] = spikes
            report.details["clock_end"] = clock.now
            if spikes == 0:
                report.violations.append(
                    "seed produced no latency spikes; scenario vacuous"
                )
            degraded = service.statistics.degraded
            if spikes and degraded == 0:
                report.violations.append(
                    "clock jumped past deadlines but nothing degraded"
                )
        finally:
            self._settle_and_check(service, tickets, report)
        return report


def _entries_identical(left, right) -> bool:
    """Bit-identical warm-store contents (keys, positions, costs)."""
    if len(left) != len(right):
        return False
    for (key_l, pos_l, cost_l), (key_r, pos_r, cost_r) in zip(
        left, right
    ):
        if key_l != key_r:
            return False
        if pos_l.tolist() != pos_r.tolist():
            return False
        if cost_l.tobytes() != cost_r.tobytes():
            return False
    return True


def _corrupt(pristine: bytes, corruption: str, rng) -> bytes:
    if corruption == "truncate":
        # Keep at least the last three bytes off ("}" and the trailing
        # newline), so the result can never be complete JSON.
        return pristine[: rng.randint(1, len(pristine) - 3)]
    if corruption == "bitflip":
        # Flip a bit inside the payload region (past the envelope
        # keys) so the checksum, not the JSON parser, must catch it.
        data = bytearray(pristine)
        position = rng.randint(len(data) // 2, len(data) - 2)
        data[position] ^= 0x01
        return bytes(data)
    if corruption == "version_skew":
        envelope = json.loads(pristine.decode("utf-8"))
        envelope["version"] = 999
        return json.dumps(envelope).encode("utf-8")
    raise ValueError(f"unknown corruption {corruption!r}")


def main(argv=None) -> int:
    """CLI: run scenarios, print one JSON report line per scenario.

    Exits 0 only when every invariant of every scenario held.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.chaos",
        description="seeded chaos scenarios for the advisor service",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed"
    )
    parser.add_argument(
        "--scenario",
        choices=SCENARIOS + ("all",),
        default="all",
        help="which scenario to run (default: all)",
    )
    arguments = parser.parse_args(argv)
    harness = ChaosHarness(seed=arguments.seed)
    if arguments.scenario == "all":
        reports = harness.run_all()
    else:
        reports = [harness.run(arguments.scenario)]
    ok = True
    for report in reports:
        print(json.dumps(report.to_dict(), sort_keys=True))
        ok = ok and report.ok
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
