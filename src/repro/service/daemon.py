"""The advisor service: bounded concurrency, deadlines, residency.

An :class:`AdvisorService` is one schema's long-lived recommendation
daemon.  Everything expensive stays resident between requests — the
per-kernel what-if stacks (shared :class:`~repro.cost.whatif.WhatIfOptimizer`
caches, compiled workload packs of the vectorized kernel) and the
per-workload warm benefit tables — so the second request for a
registered workload skips nearly all cost-model work of the first.

Admission is fail-fast: at most ``max_concurrency`` requests execute
while up to ``queue_depth`` more wait; a submit beyond that raises
:class:`~repro.exceptions.ServiceOverloadedError` *synchronously*
(carrying a ``retry_after_s`` backoff hint) instead of queueing
unboundedly.  Every request's deadline starts at submission, so queue
wait counts against it and an overloaded service degrades to tagged
best-so-far results rather than missing deadlines silently.

The service is crash-tolerant and restartable:

* With a ``snapshot_dir`` the registered workloads and their warm
  benefit stores are persisted (checksummed, atomic) on an interval, on
  demand, and on drain, and restored at construction — see
  :mod:`repro.service.durability`.
* A per-request **watchdog** abandons and replaces any worker thread
  that exceeds its request deadline by more than ``watchdog_grace_s``,
  resolving the request with
  :class:`~repro.exceptions.WatchdogTimeoutError` — one hung pricing
  call can never wedge a pool slot forever.
* :meth:`drain` implements graceful shutdown: stop admission, expire
  every in-flight deadline so running algorithms degrade to best-so-far
  at their next step boundary, force-resolve whatever is still stuck
  after ``drain_timeout_s``, snapshot, and return.
* :meth:`health` and :meth:`ready` report queue depth, pool liveness,
  snapshot age, and circuit-breaker states for supervisors.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeoutError
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.advisor import (
    ALGORITHMS,
    COST_KERNELS,
    KernelStacks,
    coerce_budget,
    run_selection,
)
from repro.core.evaluation import EvaluationConfig
from repro.core.steps import STATUS_DEGRADED
from repro.core.sweep import sweep_select
from repro.cost.whatif import CostSource
from repro.exceptions import (
    ExperimentError,
    ServiceDrainingError,
    ServiceError,
    ServiceOverloadedError,
    SnapshotError,
    WatchdogTimeoutError,
)
from repro.resilience import Deadline, ResiliencePolicy
from repro.service import durability
from repro.service.coalescer import (
    CoalescerStatistics,
    PricingCoalescer,
    waiter_deadline,
)
from repro.service.registry import (
    WorkloadRegistration,
    WorkloadRegistry,
)
from repro.service.request import (
    RecommendRequest,
    RecommendResponse,
    SweepRequest,
    SweepResponse,
)
from repro.service.streams import EventStream, StreamSink
from repro.telemetry import Telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.workload.query import Query, Workload
from repro.workload.schema import Schema
from repro.workload.sql import workload_from_sql

__all__ = ["AdvisorService", "ServiceStatistics", "ServiceTicket"]

logger = logging.getLogger("repro.service")

_RETRY_AFTER_FLOOR_S = 0.05
_RETRY_AFTER_DEFAULT_LATENCY_S = 0.5
_RECENT_LATENCY_WINDOW = 32


@dataclass
class ServiceStatistics:
    """Lifetime counters of one service (the ``service.*`` gauges)."""

    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    degraded: int = 0
    failed: int = 0
    warm_requests: int = 0
    in_flight: int = 0
    queue_depth: int = 0
    peak_in_flight: int = 0
    peak_queue_depth: int = 0
    queue_wait_seconds_total: float = 0.0
    wall_seconds_total: float = 0.0
    watchdog_cancelled: int = 0
    drain_forced: int = 0
    snapshot_writes: int = 0
    snapshot_restores: int = 0
    snapshot_corruptions: int = 0
    snapshot_sequence: int = 0

    def copy(self) -> ServiceStatistics:
        """Point-in-time copy (the live object mutates in place)."""
        return ServiceStatistics(**vars(self))

    @property
    def warm_request_rate(self) -> float:
        """Share of completed requests served from warm tables."""
        return (
            self.warm_requests / self.completed if self.completed else 0.0
        )

    def publish(self, registry, prefix: str = "service") -> None:
        """Bridge the counters into a telemetry registry as gauges."""
        registry.gauge(f"{prefix}.admitted").set(self.admitted)
        registry.gauge(f"{prefix}.rejected").set(self.rejected)
        registry.gauge(f"{prefix}.completed").set(self.completed)
        registry.gauge(f"{prefix}.degraded").set(self.degraded)
        registry.gauge(f"{prefix}.failed").set(self.failed)
        registry.gauge(f"{prefix}.warm_requests").set(
            self.warm_requests
        )
        registry.gauge(f"{prefix}.warm_request_rate").set(
            self.warm_request_rate
        )
        registry.gauge(f"{prefix}.in_flight").set(self.in_flight)
        registry.gauge(f"{prefix}.queue_depth").set(self.queue_depth)
        registry.gauge(f"{prefix}.peak_in_flight").set(
            self.peak_in_flight
        )
        registry.gauge(f"{prefix}.peak_queue_depth").set(
            self.peak_queue_depth
        )
        registry.gauge(f"{prefix}.queue_wait_seconds_total").set(
            self.queue_wait_seconds_total
        )
        registry.gauge(f"{prefix}.wall_seconds_total").set(
            self.wall_seconds_total
        )
        registry.gauge(f"{prefix}.watchdog_cancelled").set(
            self.watchdog_cancelled
        )
        registry.gauge(f"{prefix}.drain_forced").set(self.drain_forced)
        registry.gauge(f"{prefix}.snapshot_writes").set(
            self.snapshot_writes
        )
        registry.gauge(f"{prefix}.snapshot_restores").set(
            self.snapshot_restores
        )
        registry.gauge(f"{prefix}.snapshot_corruptions").set(
            self.snapshot_corruptions
        )
        registry.gauge(f"{prefix}.snapshot_sequence").set(
            self.snapshot_sequence
        )


class ServiceTicket:
    """Handle of one admitted request: result future + event stream."""

    def __init__(
        self, request_id: str, stream: EventStream, future: Future
    ) -> None:
        self.request_id = request_id
        self.stream = stream
        self._future = future

    def done(self) -> bool:
        """True once the request finished (successfully or not)."""
        return self._future.done()

    def result(self, timeout_s: float | None = None) -> RecommendResponse:
        """Block until the response is ready (re-raises failures)."""
        return self._future.result(timeout=timeout_s)

    def outcome(
        self, timeout_s: float | None = None
    ) -> tuple[RecommendResponse | None, BaseException | None]:
        """The terminal outcome without re-raising.

        Exactly one of the pair is non-``None`` once the request
        finished; used by the chaos harness to assert the
        one-terminal-response-per-request invariant.
        """
        error = self._future.exception(timeout=timeout_s)
        if error is not None:
            return None, error
        return self._future.result(timeout=0), None


class _RequestRecord:
    """Book-keeping of one admitted request (service-internal)."""

    __slots__ = (
        "request_id",
        "stream",
        "future",
        "deadline",
        "submitted_at",
        "worker",
        "terminal",
    )

    def __init__(
        self,
        request_id: str,
        stream: EventStream,
        future: Future,
        deadline: Deadline,
        submitted_at: float,
    ) -> None:
        self.request_id = request_id
        self.stream = stream
        self.future = future
        self.deadline = deadline
        self.submitted_at = submitted_at
        self.worker: threading.Thread | None = None
        self.terminal = False


class _WorkerPool:
    """Fixed-capacity pool whose hung members can be replaced.

    Unlike :class:`~concurrent.futures.ThreadPoolExecutor`, a worker
    stuck inside a task can be *abandoned*: the watchdog marks it, a
    replacement thread is spawned immediately (capacity is restored),
    and the abandoned thread exits on its own the moment its hung call
    ever returns — without consuming a shutdown sentinel or picking up
    further tasks.  Tasks must not raise; a task that does is logged
    and the worker survives (simulated worker death in the chaos
    harness exercises exactly this).
    """

    def __init__(
        self, size: int, *, name_prefix: str = "repro-service"
    ) -> None:
        self._name_prefix = name_prefix
        self._tasks: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._abandoned: set[int] = set()
        self._abandoned_total = 0
        self._spawned = 0
        self._closed = False
        for _ in range(size):
            self._spawn_worker()

    def _spawn_worker(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._spawned += 1
            thread = threading.Thread(
                target=self._work,
                name=f"{self._name_prefix}-worker-{self._spawned}",
                daemon=True,
            )
            self._threads.append(thread)
        thread.start()

    def _work(self) -> None:
        me = threading.current_thread()
        while True:
            task = self._tasks.get()
            if task is None:
                return
            try:
                task()
            except BaseException:  # noqa: BLE001 - pool must survive
                logger.exception(
                    "worker task raised; the worker survives"
                )
            with self._lock:
                if me.ident in self._abandoned:
                    self._abandoned.discard(me.ident)
                    return

    def submit(self, task: Callable[[], None]) -> None:
        self._tasks.put(task)

    def abandon(self, thread: threading.Thread) -> bool:
        """Mark ``thread`` hung and spawn a replacement.

        Returns False when the thread was already abandoned (or never
        started); the caller must have resolved the thread's current
        request before calling, since its eventual result is discarded.
        """
        with self._lock:
            ident = thread.ident
            if ident is None or ident in self._abandoned:
                return False
            self._abandoned.add(ident)
            self._abandoned_total += 1
            closed = self._closed
        if not closed:
            self._spawn_worker()
        return True

    def alive_workers(self) -> int:
        """Threads currently serving the pool (alive, not abandoned)."""
        with self._lock:
            return sum(
                1
                for thread in self._threads
                if thread.is_alive()
                and thread.ident not in self._abandoned
            )

    @property
    def abandoned_total(self) -> int:
        """Workers ever abandoned by the watchdog (lifetime count)."""
        with self._lock:
            return self._abandoned_total

    def shutdown(
        self, *, wait: bool = True, timeout_s: float | None = None
    ) -> None:
        with self._lock:
            already = self._closed
            self._closed = True
            live = [
                thread
                for thread in self._threads
                if thread.is_alive()
                and thread.ident not in self._abandoned
            ]
        if not already:
            for _ in live:
                self._tasks.put(None)
        if wait:
            end = (
                None
                if timeout_s is None
                else time.monotonic() + timeout_s
            )
            for thread in live:
                thread.join(
                    timeout=None
                    if end is None
                    else max(0.0, end - time.monotonic())
                )


class AdvisorService:
    """A concurrent, deadline-aware recommendation daemon for one schema.

    Parameters
    ----------
    schema:
        The schema every registered workload must belong to.
    max_concurrency:
        Worker threads executing requests (>= 1).
    queue_depth:
        Requests allowed to wait beyond the executing ones (>= 0);
        admission capacity is ``max_concurrency + queue_depth``.
    default_deadline_s:
        Deadline for requests that do not carry their own (``None`` =
        unlimited).  Deadlines start at submission.
    cost_source:
        Primary what-if backend shared by all requests; defaults to the
        per-kernel analytic model.  Flaky sources are wrapped with
        retries, a circuit breaker, and the analytic fallback exactly
        as in :class:`~repro.advisor.IndexAdvisor`.
    resilience:
        Retry/breaker policy for the shared cost stacks.
    cost_kernel:
        Kernel flavour used when a request does not pick one.
    shards:
        Worker-process count for the ``"sharded"`` kernel flavour;
        ``None`` picks a machine-sized default.
    coalesce:
        Enable the cross-request pricing coalescer (default on): for
        every pair-batch-capable kernel stack a
        :class:`~repro.service.coalescer.PricingCoalescer` slots
        between the what-if facade and the resilient source, so
        concurrent requests' pricing work is content-deduplicated and
        fused into shared backend batches.  Kernels without
        ``pair_costs`` (the scalar flavour) run uncoalesced either
        way.  Results are bit-identical to the uncoalesced path.
    batch_window_ms:
        Micro-batch window of the coalescer in milliseconds: how long
        the first enqueued pair waits for concurrent company before
        the fused batch dispatches.  Skipped entirely when the service
        is idle, so a serial client never pays it.
    coalesce_max_pairs:
        Fused-batch cap: a window closes early once this many pairs
        are pending.
    whatif_cache_entries:
        Optional LRU bound on each kernel's long-lived what-if cost
        cache (``None`` = unbounded); evictions surface as the
        ``whatif.evictions`` gauge.
    clock:
        Monotonic time source (injectable for deterministic tests);
        feeds deadlines, the queue/wall timings, and snapshot age.
        The background watchdog/snapshot threads pace themselves on
        real time regardless (a manual clock cannot wake a thread);
        deterministic tests disable them and call
        :meth:`run_watchdog_once` / :meth:`snapshot_now` directly.
    snapshot_dir:
        Directory for durable snapshots of registrations and warm
        benefit stores; restored (when present and sane) at
        construction.  ``None`` disables durability.
    snapshot_interval_s:
        Period of the background snapshot thread; ``None``/``0`` means
        snapshots happen only on demand and on drain.
    drain_timeout_s:
        How long :meth:`drain` waits for in-flight requests after
        expiring their deadlines before force-resolving them.
    watchdog_grace_s:
        Extra wall-clock slack past a request's deadline before the
        watchdog abandons its worker.
    watchdog_interval_s:
        Sweep period of the background watchdog thread; ``0`` disables
        the thread (sweeps then only happen via
        :meth:`run_watchdog_once`, which deterministic tests call).
    """

    def __init__(
        self,
        schema: Schema,
        *,
        max_concurrency: int = 2,
        queue_depth: int = 8,
        default_deadline_s: float | None = None,
        cost_source: CostSource | None = None,
        resilience: ResiliencePolicy | None = None,
        cost_kernel: str = "vectorized",
        shards: int | None = None,
        coalesce: bool = True,
        batch_window_ms: float = 2.0,
        coalesce_max_pairs: int = 32768,
        whatif_cache_entries: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        snapshot_dir: str | Path | None = None,
        snapshot_interval_s: float | None = None,
        drain_timeout_s: float = 10.0,
        watchdog_grace_s: float = 2.0,
        watchdog_interval_s: float = 0.1,
    ) -> None:
        if max_concurrency < 1:
            raise ServiceError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if queue_depth < 0:
            raise ServiceError(
                f"queue_depth must be >= 0, got {queue_depth}"
            )
        if cost_kernel not in COST_KERNELS:
            raise ExperimentError(
                f"unknown cost kernel {cost_kernel!r}; pick one of "
                f"{', '.join(COST_KERNELS)}"
            )
        if drain_timeout_s < 0:
            raise ServiceError(
                f"drain_timeout_s must be >= 0, got {drain_timeout_s}"
            )
        if watchdog_grace_s < 0:
            raise ServiceError(
                f"watchdog_grace_s must be >= 0, got {watchdog_grace_s}"
            )
        if batch_window_ms < 0:
            raise ServiceError(
                f"batch_window_ms must be >= 0, got {batch_window_ms}"
            )
        if coalesce_max_pairs < 1:
            raise ServiceError(
                "coalesce_max_pairs must be >= 1, got "
                f"{coalesce_max_pairs}"
            )
        if whatif_cache_entries is not None and whatif_cache_entries < 1:
            raise ServiceError(
                "whatif_cache_entries must be >= 1 or None, got "
                f"{whatif_cache_entries}"
            )
        self._schema = schema
        self._max_concurrency = max_concurrency
        self._queue_depth = queue_depth
        self._capacity = max_concurrency + queue_depth
        self._default_deadline_s = default_deadline_s
        self._default_kernel = cost_kernel
        self._clock = clock
        self._drain_timeout_s = drain_timeout_s
        self._watchdog_grace_s = watchdog_grace_s
        self._coalesce = coalesce
        self._batch_window_ms = batch_window_ms
        self._coalesce_max_pairs = coalesce_max_pairs
        self._coalescers: dict[str, PricingCoalescer] = {}

        def _wrap_facade_source(resilient, kernel: str):
            # Only pair-batch-capable stacks coalesce: without a fused
            # dispatch entry point there is nothing to fuse into, and
            # the scalar flavour's callers expect untouched semantics.
            if (
                not self._coalesce
                or getattr(resilient, "pair_costs", None) is None
            ):
                return resilient
            coalescer = PricingCoalescer(
                resilient,
                window_s=batch_window_ms / 1000.0,
                max_pairs=coalesce_max_pairs,
            )
            self._coalescers[kernel] = coalescer
            return coalescer

        self._stacks = KernelStacks(
            schema,
            cost_source=cost_source,
            policy=resilience,
            shards=shards,
            facade_source_wrapper=_wrap_facade_source,
            whatif_cache_entries=whatif_cache_entries,
        )
        self._registry = WorkloadRegistry(schema, self._stacks)
        self._pool = _WorkerPool(max_concurrency)
        self._lock = threading.Lock()
        self._statistics = ServiceStatistics()
        self._active: dict[str, _RequestRecord] = {}
        self._recent_wall: deque[float] = deque(
            maxlen=_RECENT_LATENCY_WINDOW
        )
        self._request_counter = 0
        self._draining = False
        self._closed = False
        self._stop_event = threading.Event()

        # -- durability -------------------------------------------------
        self._snapshot_dir = (
            Path(snapshot_dir) if snapshot_dir is not None else None
        )
        self._snapshot_lock = threading.Lock()
        self._snapshot_sequence = 0
        self._last_snapshot_at: float | None = None
        self._restore_report: durability.RestoreReport | None = None
        if self._snapshot_dir is not None:
            report = durability.restore_registry(
                self._snapshot_dir,
                schema=schema,
                registry=self._registry,
                stacks=self._stacks,
            )
            self._restore_report = report
            if report.restored:
                self._statistics.snapshot_restores += 1
                self._statistics.snapshot_sequence = report.sequence
                self._snapshot_sequence = report.sequence
                self._last_snapshot_at = self._clock()
            elif report.corrupt:
                self._statistics.snapshot_corruptions += 1
        self._snapshot_thread: threading.Thread | None = None
        if (
            self._snapshot_dir is not None
            and snapshot_interval_s
            and snapshot_interval_s > 0
        ):
            self._snapshot_thread = threading.Thread(
                target=self._snapshot_loop,
                args=(snapshot_interval_s,),
                name="repro-service-snapshot",
                daemon=True,
            )
            self._snapshot_thread.start()

        # -- watchdog ---------------------------------------------------
        self._watchdog_thread: threading.Thread | None = None
        if watchdog_interval_s and watchdog_interval_s > 0:
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop,
                args=(watchdog_interval_s,),
                name="repro-service-watchdog",
                daemon=True,
            )
            self._watchdog_thread.start()

    # ------------------------------------------------------------------
    # Workload lifecycle
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The schema this service recommends for."""
        return self._schema

    @property
    def registry(self) -> WorkloadRegistry:
        """The registered-workload table (exposed for inspection)."""
        return self._registry

    @property
    def kernel_stacks(self) -> KernelStacks:
        """The shared per-kernel cost stacks (exposed for accounting)."""
        return self._stacks

    @property
    def restore_report(self) -> durability.RestoreReport | None:
        """What the startup restore found (``None`` without durability)."""
        return self._restore_report

    def coalescer(self, kernel: str) -> PricingCoalescer | None:
        """The pricing coalescer of one kernel stack.

        ``None`` when coalescing is disabled, the stack has not been
        built yet, or the kernel cannot batch pairs (scalar flavour).
        """
        return self._coalescers.get(kernel)

    def _merged_coalescer_statistics(
        self,
    ) -> CoalescerStatistics | None:
        """Coalescer counters summed across the built kernel stacks
        (peaks take the max); ``None`` when nothing coalesces."""
        merged: CoalescerStatistics | None = None
        for coalescer in self._coalescers.values():
            statistics = coalescer.statistics.copy()
            if merged is None:
                merged = statistics
                continue
            merged.callers += statistics.callers
            merged.enqueued_pairs += statistics.enqueued_pairs
            merged.deduped_pairs += statistics.deduped_pairs
            merged.batches += statistics.batches
            merged.dispatched_pairs += statistics.dispatched_pairs
            merged.idle_fast_paths += statistics.idle_fast_paths
            merged.window_waits += statistics.window_waits
            merged.cap_closes += statistics.cap_closes
            merged.deadline_detaches += statistics.deadline_detaches
            merged.waiter_wait_seconds_total += (
                statistics.waiter_wait_seconds_total
            )
            merged.max_batch_pairs = max(
                merged.max_batch_pairs, statistics.max_batch_pairs
            )
            merged.peak_window_pairs = max(
                merged.peak_window_pairs, statistics.peak_window_pairs
            )
        return merged

    def workloads(self) -> tuple[str, ...]:
        """Names of all registered workloads, sorted."""
        return self._registry.names()

    def register_workload(
        self,
        name: str,
        workload: Workload
        | Sequence[str]
        | Sequence[tuple[str, float]]
        | Iterable[Query],
    ) -> WorkloadRegistration:
        """Make a workload resident under ``name``."""
        return self._registry.register(
            name, self._coerce_workload(workload)
        )

    def update_workload(
        self,
        name: str,
        workload: Workload
        | Sequence[str]
        | Sequence[tuple[str, float]]
        | Iterable[Query],
    ) -> WorkloadRegistration:
        """Replace a resident workload; bumps its version and clears
        only the cache entries of dropped-or-changed queries."""
        registration, _ = self._registry.update(
            name, self._coerce_workload(workload)
        )
        return registration

    def evict_workload(self, name: str) -> int:
        """Drop a resident workload; returns invalidated cache entries."""
        return self._registry.evict(name)

    def _coerce_workload(
        self,
        workload: Workload
        | Sequence[str]
        | Sequence[tuple[str, float]]
        | Iterable[Query],
    ) -> Workload:
        if isinstance(workload, Workload):
            return workload
        items = list(workload)
        if not items:
            raise ExperimentError("empty workload")
        if isinstance(items[0], Query):
            return Workload(self._schema, items)  # type: ignore[arg-type]
        return workload_from_sql(self._schema, items)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def submit(self, request: RecommendRequest) -> ServiceTicket:
        """Admit one request and start it as soon as a worker frees up.

        Validation (unknown workload/algorithm/kernel, bad budget) and
        admission rejections raise synchronously; everything that can
        only fail later surfaces through the ticket's future.
        """
        registration = self._registry.get(request.workload)
        if request.algorithm not in ALGORITHMS:
            raise ExperimentError(
                f"unknown algorithm {request.algorithm!r}; pick one of "
                f"{', '.join(ALGORITHMS)}"
            )
        kernel = request.cost_kernel or self._default_kernel
        if kernel not in COST_KERNELS:
            raise ExperimentError(
                f"unknown cost kernel {kernel!r}; pick one of "
                f"{', '.join(COST_KERNELS)}"
            )
        budget = coerce_budget(
            self._schema, request.budget_share, request.budget_bytes
        )
        # Capture the workload snapshot now: a concurrent
        # update_workload must not tear an admitted request.
        workload = registration.workload
        version = registration.version
        record = self._admit(request.request_id, request.deadline_s)
        self._pool.submit(
            lambda: self._run(
                record, request, registration, workload, version,
                kernel, budget,
            )
        )
        return ServiceTicket(record.request_id, record.stream, record.future)

    def submit_sweep(self, request: SweepRequest) -> ServiceTicket:
        """Admit one multi-budget frontier request.

        The whole sweep holds a single concurrency slot and a single
        deadline: admission control sees one request no matter how many
        budget shares it answers.  Execution runs through the shared
        sweep engine over the registration's resident warm benefit
        store, so a sweep over a warm registration re-prices nothing —
        and per-point progress streams on the ticket's event stream
        (``sweep_point`` records between the step events).
        """
        registration = self._registry.get(request.workload)
        kernel = request.cost_kernel or self._default_kernel
        if kernel not in COST_KERNELS:
            raise ExperimentError(
                f"unknown cost kernel {kernel!r}; pick one of "
                f"{', '.join(COST_KERNELS)}"
            )
        # Shares were range-checked by SweepRequest; coercing each one
        # against the schema keeps budget validation synchronous too.
        for share in request.budget_shares:
            coerce_budget(self._schema, share, None)
        workload = registration.workload
        version = registration.version
        record = self._admit(request.request_id, request.deadline_s)
        self._pool.submit(
            lambda: self._run_sweep(
                record, request, registration, workload, version, kernel,
            )
        )
        return ServiceTicket(record.request_id, record.stream, record.future)

    def _admit(
        self, request_id: str | None, deadline_s: float | None
    ) -> _RequestRecord:
        """Admission control shared by every request shape.

        Applies the capacity gate, registers the request record, and
        starts its deadline clock; raises synchronously when the
        service is closed, draining, or at capacity.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("submit() on a closed AdvisorService")
            if self._draining:
                raise ServiceDrainingError(
                    "service is draining and admits no new requests"
                )
            statistics = self._statistics
            if statistics.in_flight >= self._capacity:
                statistics.rejected += 1
                raise ServiceOverloadedError(
                    f"service at capacity ({self._max_concurrency} "
                    f"executing + {self._queue_depth} queued); "
                    "retry later",
                    retry_after_s=self._retry_after_hint(),
                )
            statistics.admitted += 1
            statistics.in_flight += 1
            statistics.peak_in_flight = max(
                statistics.peak_in_flight, statistics.in_flight
            )
            statistics.queue_depth = max(
                0, statistics.in_flight - self._max_concurrency
            )
            statistics.peak_queue_depth = max(
                statistics.peak_queue_depth, statistics.queue_depth
            )
            self._request_counter += 1
            resolved_id = request_id or f"req-{self._request_counter}"
            stream = EventStream(resolved_id)
            if deadline_s is None:
                deadline_s = self._default_deadline_s
            record = _RequestRecord(
                resolved_id,
                stream,
                Future(),
                Deadline(deadline_s, clock=self._clock),
                self._clock(),
            )
            self._active[resolved_id] = record
        return record

    def recommend(self, request: RecommendRequest) -> RecommendResponse:
        """Submit and block for the response (the synchronous path)."""
        return self.submit(request).result()

    def sweep(self, request: SweepRequest) -> SweepResponse:
        """Submit a frontier request and block for the response."""
        return self.submit_sweep(request).result()

    def subscribe(self, request_id: str) -> EventStream:
        """The live event stream of an in-flight request."""
        with self._lock:
            record = self._active.get(request_id)
        if record is None:
            raise ServiceError(
                f"no in-flight request with id {request_id!r}"
            )
        return record.stream

    def _retry_after_hint(self) -> float:
        """Estimated seconds until a slot frees (caller holds the lock).

        Queue-theoretic back-of-envelope: the ``queue_depth + 1``
        requests ahead of a retry drain at ``max_concurrency`` per
        mean recent request latency.  Deliberately coarse — it is a
        *hint*, floor-clamped so clients never busy-spin.
        """
        if self._recent_wall:
            latency = sum(self._recent_wall) / len(self._recent_wall)
        else:
            latency = _RETRY_AFTER_DEFAULT_LATENCY_S
        waiting = self._statistics.queue_depth + 1
        return round(
            max(
                _RETRY_AFTER_FLOOR_S,
                latency * waiting / self._max_concurrency,
            ),
            3,
        )

    def _run(
        self,
        record: _RequestRecord,
        request: RecommendRequest,
        registration: WorkloadRegistration,
        workload: Workload,
        version: int,
        kernel: str,
        budget: float,
    ) -> None:
        record.worker = threading.current_thread()
        started = self._clock()
        queue_seconds = max(0.0, started - record.submitted_at)
        telemetry = Telemetry(sinks=(StreamSink(record.stream),))
        try:
            resilient, optimizer = self._stacks.stack(kernel)
            warm_store = registration.warm_store(kernel)
            warm = len(warm_store) > 0
            before = optimizer.statistics.copy()
            # The waiter-deadline context lets every pricing call the
            # run makes consult this request's deadline inside the
            # coalescer (expired waiters detach from the micro-batch
            # window instead of sitting it out).
            with waiter_deadline(record.deadline):
                result = run_selection(
                    workload,
                    budget,
                    algorithm=request.algorithm,
                    optimizer=optimizer,
                    telemetry=telemetry,
                    candidate_width=request.candidate_width,
                    deadline=record.deadline,
                    evaluation=EvaluationConfig(
                        parallelism=request.parallelism
                    ),
                    warm_store=warm_store,
                )
            wall_seconds = max(0.0, self._clock() - started)
            telemetry.record_whatif(optimizer.statistics.since(before))
            telemetry.record_resilience(resilient.statistics)
            coalescer = self._coalescers.get(kernel)
            if coalescer is not None:
                coalescer.statistics.publish(telemetry.metrics)
            kernel_statistics = self._stacks.vectorized_statistics()
            if kernel_statistics is not None:
                telemetry.record_kernel(kernel_statistics)
            shard_statistics = self._stacks.shard_statistics()
            if shard_statistics is not None:
                telemetry.record_kernel(shard_statistics)
            lifetime = self._account_completion(
                record,
                registration,
                degraded=result.status == STATUS_DEGRADED,
                warm=warm,
                queue_seconds=queue_seconds,
                wall_seconds=wall_seconds,
            )
            if lifetime is None:
                # The watchdog (or drain) already resolved this request;
                # the late result is discarded, never double-counted.
                return
            metrics = telemetry.metrics
            lifetime.publish(metrics)
            metrics.gauge("service.queue_seconds").set(queue_seconds)
            metrics.gauge("service.wall_seconds").set(wall_seconds)
            metrics.gauge("service.warm").set(1 if warm else 0)
            metrics.gauge("service.warm_table_hit_rate").set(
                metrics.snapshot().get("evaluation.warm_hit_rate", 0.0)
            )
            metrics.gauge("service.breaker_state").set(
                resilient.statistics.breaker_state.value
            )
            gauges = {
                name: value
                for name, value in metrics.snapshot().items()
                if isinstance(value, (int, float))
            }
            schema = workload.schema
            indexes = tuple(
                index.label(schema)
                for index in sorted(
                    result.configuration,
                    key=lambda index: (
                        index.table_name,
                        index.attributes,
                    ),
                )
            )
            response = RecommendResponse(
                request_id=record.request_id,
                workload=request.workload,
                workload_version=version,
                status=result.status,
                warm=warm,
                wall_seconds=wall_seconds,
                queue_seconds=queue_seconds,
                result=result,
                indexes=indexes,
                gauges=gauges,
            )
            record.stream.finish()
            record.future.set_result(response)
        except BaseException as error:  # noqa: BLE001 - future carries it
            if not self._fail(record, error):
                logger.warning(
                    "late failure of already-resolved request %s: %r",
                    record.request_id,
                    error,
                )
        finally:
            telemetry.close()

    def _run_sweep(
        self,
        record: _RequestRecord,
        request: SweepRequest,
        registration: WorkloadRegistration,
        workload: Workload,
        version: int,
        kernel: str,
    ) -> None:
        record.worker = threading.current_thread()
        started = self._clock()
        queue_seconds = max(0.0, started - record.submitted_at)
        telemetry = Telemetry(sinks=(StreamSink(record.stream),))
        try:
            resilient, optimizer = self._stacks.stack(kernel)
            warm_store = registration.warm_store(kernel)
            warm = len(warm_store) > 0
            before = optimizer.statistics.copy()

            def on_point(point) -> None:
                # Per-point boundary events between the step events:
                # published straight on the stream (the protocol loop
                # forwards every stream record), so streaming clients
                # watch the frontier fill in point by point.
                record.stream.publish(
                    {
                        "type": "sweep_point",
                        "request_id": record.request_id,
                        "budget_share": point.budget_share,
                        "status": point.result.status,
                        "total_cost": point.result.total_cost,
                        "memory": point.result.memory,
                        "whatif_calls": point.whatif_calls,
                        "execution_order": point.execution_order,
                    }
                )

            # on_error="partial": a worker failure mid-sweep degrades
            # to the points already answered (a tagged partial
            # frontier); with nothing answered yet it propagates and
            # fails the request like any other worker death.
            with waiter_deadline(record.deadline):
                sweep_result = sweep_select(
                    workload,
                    optimizer,
                    request.budget_shares,
                    telemetry=telemetry,
                    warm_store=warm_store,
                    evaluation=EvaluationConfig(
                        parallelism=request.parallelism
                    ),
                    deadline=record.deadline,
                    on_error="partial",
                    point_callback=on_point,
                )
            wall_seconds = max(0.0, self._clock() - started)
            telemetry.record_whatif(optimizer.statistics.since(before))
            telemetry.record_resilience(resilient.statistics)
            coalescer = self._coalescers.get(kernel)
            if coalescer is not None:
                coalescer.statistics.publish(telemetry.metrics)
            kernel_statistics = self._stacks.vectorized_statistics()
            if kernel_statistics is not None:
                telemetry.record_kernel(kernel_statistics)
            shard_statistics = self._stacks.shard_statistics()
            if shard_statistics is not None:
                telemetry.record_kernel(shard_statistics)
            status = sweep_result.status
            lifetime = self._account_completion(
                record,
                registration,
                degraded=status == STATUS_DEGRADED,
                warm=warm,
                queue_seconds=queue_seconds,
                wall_seconds=wall_seconds,
            )
            if lifetime is None:
                return
            metrics = telemetry.metrics
            lifetime.publish(metrics)
            sweep_result.statistics.publish(metrics)
            metrics.gauge("service.queue_seconds").set(queue_seconds)
            metrics.gauge("service.wall_seconds").set(wall_seconds)
            metrics.gauge("service.warm").set(1 if warm else 0)
            metrics.gauge("service.warm_table_hit_rate").set(
                metrics.snapshot().get("evaluation.warm_hit_rate", 0.0)
            )
            metrics.gauge("service.breaker_state").set(
                resilient.statistics.breaker_state.value
            )
            gauges = {
                name: value
                for name, value in metrics.snapshot().items()
                if isinstance(value, (int, float))
            }
            schema = workload.schema
            indexes = {
                point.budget_share: tuple(
                    index.label(schema)
                    for index in sorted(
                        point.result.configuration,
                        key=lambda index: (
                            index.table_name,
                            index.attributes,
                        ),
                    )
                )
                for point in sweep_result.points
            }
            response = SweepResponse(
                request_id=record.request_id,
                workload=request.workload,
                workload_version=version,
                status=status,
                partial=sweep_result.partial,
                warm=warm,
                wall_seconds=wall_seconds,
                queue_seconds=queue_seconds,
                sweep=sweep_result,
                indexes=indexes,
                gauges=gauges,
            )
            record.stream.finish()
            record.future.set_result(response)
        except BaseException as error:  # noqa: BLE001 - future carries it
            if not self._fail(record, error):
                logger.warning(
                    "late failure of already-resolved request %s: %r",
                    record.request_id,
                    error,
                )
        finally:
            telemetry.close()

    def _account_completion(
        self,
        record: _RequestRecord,
        registration: WorkloadRegistration,
        *,
        degraded: bool,
        warm: bool,
        queue_seconds: float,
        wall_seconds: float,
    ) -> ServiceStatistics | None:
        """Mark a request completed; returns the lifetime counters, or
        ``None`` when the request already reached a terminal state."""
        with self._lock:
            if record.terminal:
                return None
            record.terminal = True
            statistics = self._statistics
            statistics.completed += 1
            if degraded:
                statistics.degraded += 1
            if warm:
                statistics.warm_requests += 1
            statistics.queue_wait_seconds_total += queue_seconds
            statistics.wall_seconds_total += wall_seconds
            self._recent_wall.append(wall_seconds)
            registration.served += 1
            self._release_slot(record)
            return statistics.copy()

    def _fail(
        self,
        record: _RequestRecord,
        error: BaseException,
        *,
        watchdog: bool = False,
        drain: bool = False,
    ) -> bool:
        """Resolve a request with an error; False if already terminal."""
        with self._lock:
            if record.terminal:
                return False
            record.terminal = True
            statistics = self._statistics
            statistics.failed += 1
            if watchdog:
                statistics.watchdog_cancelled += 1
            if drain:
                statistics.drain_forced += 1
            self._release_slot(record)
        record.stream.finish()
        record.future.set_exception(error)
        return True

    def _release_slot(self, record: _RequestRecord) -> None:
        """Free admission capacity (caller holds the lock)."""
        statistics = self._statistics
        statistics.in_flight -= 1
        statistics.queue_depth = max(
            0, statistics.in_flight - self._max_concurrency
        )
        self._active.pop(record.request_id, None)

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------

    def _watchdog_loop(self, interval_s: float) -> None:
        while not self._stop_event.wait(interval_s):
            try:
                self.run_watchdog_once()
            except Exception:  # pragma: no cover - must never die
                logger.exception("watchdog sweep failed")

    def run_watchdog_once(self) -> int:
        """One watchdog sweep; returns how many requests were cancelled.

        A request is overdue once the service clock passed its deadline
        by more than ``watchdog_grace_s`` *and* a worker picked it up
        (a queued overdue request costs nothing — it degrades the
        moment it starts).  Overdue requests are resolved with
        :class:`~repro.exceptions.WatchdogTimeoutError` and their
        workers abandoned and replaced, so a hung backend call can
        never wedge a pool slot.
        """
        now = self._clock()
        # Eligibility is snapshotted under the lock *before* the first
        # cancel: abandoning a worker spawns a replacement that starts
        # the next queued (likely also overdue) request immediately,
        # and that fresh start must wait for the next sweep instead of
        # being swept in the same pass it was born into.
        with self._lock:
            overdue = [
                record
                for record in self._active.values()
                if not record.terminal
                and record.worker is not None
                and record.deadline.expires_at is not None
                and now
                >= record.deadline.expires_at + self._watchdog_grace_s
            ]
        cancelled = 0
        for record in overdue:
            if self._cancel_overdue(record, watchdog=True):
                cancelled += 1
        return cancelled

    def _cancel_overdue(
        self,
        record: _RequestRecord,
        *,
        watchdog: bool = False,
        drain: bool = False,
    ) -> bool:
        reason = "drain timeout" if drain else "watchdog"
        error = WatchdogTimeoutError(
            f"request {record.request_id!r} exceeded its deadline by "
            f"more than the {self._watchdog_grace_s}s grace period "
            f"({reason}); its worker was abandoned and replaced"
        )
        if not self._fail(
            record, error, watchdog=watchdog, drain=drain
        ):
            return False
        worker = record.worker
        if worker is not None and worker.is_alive():
            self._pool.abandon(worker)
            # The abandoned worker may still hold shard-pool futures;
            # drop the pool so its processes cannot be wedged by work
            # nobody will collect.  It rebuilds lazily on next use.
            self._stacks.reset_shard_pool()
        return True

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def _snapshot_loop(self, interval_s: float) -> None:
        while not self._stop_event.wait(interval_s):
            try:
                self.snapshot_now()
            except SnapshotError as error:  # pragma: no cover - disk full
                logger.warning("periodic snapshot failed: %s", error)

    def snapshot_now(self) -> Path:
        """Write a durable snapshot immediately; returns its path.

        Raises :class:`~repro.exceptions.SnapshotError` when no
        ``snapshot_dir`` was configured or the write failed.
        """
        if self._snapshot_dir is None:
            raise SnapshotError(
                "no snapshot directory configured for this service"
            )
        with self._snapshot_lock:
            with self._lock:
                self._snapshot_sequence += 1
                sequence = self._snapshot_sequence
            path = durability.write_snapshot(
                self._snapshot_dir,
                schema=self._schema,
                registry=self._registry,
                sequence=sequence,
                stacks=self._stacks,
            )
            with self._lock:
                self._statistics.snapshot_writes += 1
                self._statistics.snapshot_sequence = sequence
                self._last_snapshot_at = self._clock()
        return path

    def snapshot_age_seconds(self) -> float | None:
        """Seconds since the last snapshot write or restore (``None``
        when durability is off or nothing was ever written)."""
        with self._lock:
            last = self._last_snapshot_at
        if last is None:
            return None
        return max(0.0, self._clock() - last)

    # ------------------------------------------------------------------
    # Observability and shutdown
    # ------------------------------------------------------------------

    @property
    def statistics(self) -> ServiceStatistics:
        """Point-in-time copy of the lifetime counters."""
        with self._lock:
            return self._statistics.copy()

    def gauges(self) -> dict[str, float]:
        """The current ``service.*`` gauge values.

        ``service.breaker_state`` reports the worst (highest) breaker
        level across the kernel stacks built so far: 0 closed,
        1 half-open, 2 open.  ``service.snapshot_age_seconds`` is -1
        when no snapshot was ever written or restored.
        """
        registry = MetricsRegistry()
        self.statistics.publish(registry)
        breaker = 0
        for kernel in self._stacks.built_kernels():
            resilient, _ = self._stacks.stack(kernel)
            breaker = max(
                breaker, resilient.statistics.breaker_state.value
            )
        registry.gauge("service.breaker_state").set(breaker)
        age = self.snapshot_age_seconds()
        registry.gauge("service.snapshot_age_seconds").set(
            -1.0 if age is None else age
        )
        registry.gauge("service.pool_alive").set(
            self._pool.alive_workers()
        )
        registry.gauge("service.pool_abandoned").set(
            self._pool.abandoned_total
        )
        coalescer = self._merged_coalescer_statistics()
        if coalescer is not None:
            coalescer.publish(registry)
        return {
            name: value
            for name, value in registry.snapshot().items()
            if isinstance(value, (int, float))
        }

    def health(self) -> dict:
        """Liveness report for supervisors (the ``health`` protocol op).

        JSON-safe: status, admission pressure, worker-pool liveness,
        watchdog counters, snapshot freshness, per-kernel circuit
        breaker states, and (when the sharded kernel is built) shard
        worker-pool liveness.
        """
        with self._lock:
            statistics = self._statistics.copy()
            closed = self._closed
            draining = self._draining
        if closed:
            status = "closed"
        elif draining:
            status = "draining"
        else:
            status = "ok"
        breakers = {}
        for kernel in self._stacks.built_kernels():
            resilient, _ = self._stacks.stack(kernel)
            breakers[kernel] = (
                resilient.statistics.breaker_state.name.lower()
            )
        age = self.snapshot_age_seconds()
        shard_source = self._stacks.shard_source()
        shards = None
        if shard_source is not None:
            shard_statistics = shard_source.statistics
            shards = {
                "workers": shard_source.shards,
                "alive": shard_source.alive_workers(),
                "pool_starts": shard_statistics.pool_starts,
                "pool_rebuilds": shard_statistics.pool_rebuilds,
                "pool_resets": shard_statistics.pool_resets,
                "worker_failures": shard_statistics.worker_failures,
            }
        return {
            "status": status,
            "in_flight": statistics.in_flight,
            "queue_depth": statistics.queue_depth,
            "admitted": statistics.admitted,
            "completed": statistics.completed,
            "failed": statistics.failed,
            "pool": {
                "size": self._max_concurrency,
                "alive": self._pool.alive_workers(),
                "abandoned": self._pool.abandoned_total,
            },
            "watchdog": {
                "enabled": self._watchdog_thread is not None,
                "grace_s": self._watchdog_grace_s,
                "cancelled": statistics.watchdog_cancelled,
            },
            "snapshots": {
                "enabled": self._snapshot_dir is not None,
                "directory": (
                    str(self._snapshot_dir)
                    if self._snapshot_dir is not None
                    else None
                ),
                "sequence": statistics.snapshot_sequence,
                "age_seconds": age,
                "writes": statistics.snapshot_writes,
                "restores": statistics.snapshot_restores,
                "corruptions": statistics.snapshot_corruptions,
            },
            "breakers": breakers,
            "shards": shards,
            "coalescer": {
                "enabled": self._coalesce,
                "window_ms": self._batch_window_ms,
                "max_pairs": self._coalesce_max_pairs,
                "kernels": {
                    kernel: {
                        "batches": coalescer.statistics.batches,
                        "dedup_rate": round(
                            coalescer.statistics.dedup_rate, 6
                        ),
                        "pending_pairs": coalescer.pending_pairs(),
                        "deadline_detaches": (
                            coalescer.statistics.deadline_detaches
                        ),
                    }
                    for kernel, coalescer in sorted(
                        self._coalescers.items()
                    )
                },
            },
        }

    def ready(self) -> dict:
        """Admission readiness (the ``ready`` protocol op).

        ``{"ready": bool, "reason": str}`` — ready means a submit right
        now would not be refused for lifecycle reasons (it may still be
        refused for overload, which is backpressure, not unreadiness).
        """
        with self._lock:
            closed = self._closed
            draining = self._draining
        if closed:
            return {"ready": False, "reason": "closed"}
        if draining:
            return {"ready": False, "reason": "draining"}
        if self._pool.alive_workers() < 1:
            return {"ready": False, "reason": "no live workers"}
        return {"ready": True, "reason": "ok"}

    @staticmethod
    def _await_records(
        records: list[_RequestRecord], timeout_s: float
    ) -> list[_RequestRecord]:
        """Wait up to ``timeout_s`` total for the records' futures;
        returns those still unresolved.

        Paces on real time on purpose: it waits for real worker
        threads, which an injected manual clock cannot advance.
        """
        end = time.monotonic() + max(0.0, timeout_s)
        pending: list[_RequestRecord] = []
        for record in records:
            remaining = end - time.monotonic()
            if remaining > 0:
                try:
                    record.future.exception(timeout=remaining)
                except _FutureTimeoutError:
                    pass
            if not record.future.done():
                pending.append(record)
        return pending

    def drain(self, timeout_s: float | None = None) -> ServiceStatistics:
        """Gracefully wind down: stop admission, degrade, snapshot.

        1. Admission stops (`submit` raises
           :class:`~repro.exceptions.ServiceDrainingError`).
        2. In-flight requests get up to ``timeout_s`` (default
           ``drain_timeout_s``) to finish naturally.
        3. Whatever is still running then has its deadline expired, so
           the algorithms return tagged best-so-far results at their
           next step boundary; they get ``watchdog_grace_s`` to do so.
        4. Requests *still* unresolved — genuinely hung workers — are
           force-resolved with
           :class:`~repro.exceptions.WatchdogTimeoutError` and their
           workers abandoned.
        5. With durability configured, a final snapshot is written.

        Idempotent; returns the post-drain lifetime counters.
        """
        timeout = (
            self._drain_timeout_s if timeout_s is None else timeout_s
        )
        with self._lock:
            self._draining = True
            records = list(self._active.values())
        pending = self._await_records(records, timeout)
        if pending:
            for record in pending:
                record.deadline.expire_now()
            pending = self._await_records(
                pending, self._watchdog_grace_s
            )
        for record in pending:
            self._cancel_overdue(record, drain=True)
        if self._snapshot_dir is not None:
            try:
                self.snapshot_now()
            except SnapshotError as error:
                logger.warning("drain snapshot failed: %s", error)
        return self.statistics

    def close(self, wait: bool = True) -> None:
        """Stop admitting requests and shut the worker pool down.

        ``wait=True`` performs a full :meth:`drain` first (finish or
        degrade in-flight work, final snapshot); ``wait=False`` only
        snapshots current state and returns without joining workers.
        """
        with self._lock:
            if self._closed:
                return
            self._draining = True
        if wait:
            self.drain()
        elif self._snapshot_dir is not None:
            try:
                self.snapshot_now()
            except SnapshotError as error:
                logger.warning("close snapshot failed: %s", error)
        with self._lock:
            self._closed = True
        self._stop_event.set()
        self._pool.shutdown(
            wait=wait, timeout_s=self._drain_timeout_s
        )
        self._stacks.close()

    def __enter__(self) -> AdvisorService:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
