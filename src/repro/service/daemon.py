"""The advisor service: bounded concurrency, deadlines, residency.

An :class:`AdvisorService` is one schema's long-lived recommendation
daemon.  Everything expensive stays resident between requests — the
per-kernel what-if stacks (shared :class:`~repro.cost.whatif.WhatIfOptimizer`
caches, compiled workload packs of the vectorized kernel) and the
per-workload warm benefit tables — so the second request for a
registered workload skips nearly all cost-model work of the first.

Admission is fail-fast: at most ``max_concurrency`` requests execute
while up to ``queue_depth`` more wait; a submit beyond that raises
:class:`~repro.exceptions.ServiceOverloadedError` *synchronously*
instead of queueing unboundedly.  Every request's deadline starts at
submission, so queue wait counts against it and an overloaded service
degrades to tagged best-so-far results rather than missing deadlines
silently.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.advisor import (
    ALGORITHMS,
    COST_KERNELS,
    KernelStacks,
    coerce_budget,
    run_selection,
)
from repro.core.evaluation import EvaluationConfig
from repro.core.steps import STATUS_DEGRADED
from repro.cost.whatif import CostSource
from repro.exceptions import (
    ExperimentError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.resilience import Deadline, ResiliencePolicy
from repro.service.registry import (
    WorkloadRegistration,
    WorkloadRegistry,
)
from repro.service.request import RecommendRequest, RecommendResponse
from repro.service.streams import EventStream, StreamSink
from repro.telemetry import Telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.workload.query import Query, Workload
from repro.workload.schema import Schema
from repro.workload.sql import workload_from_sql

__all__ = ["AdvisorService", "ServiceStatistics", "ServiceTicket"]


@dataclass
class ServiceStatistics:
    """Lifetime counters of one service (the ``service.*`` gauges)."""

    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    degraded: int = 0
    failed: int = 0
    warm_requests: int = 0
    in_flight: int = 0
    queue_depth: int = 0
    peak_in_flight: int = 0
    peak_queue_depth: int = 0
    queue_wait_seconds_total: float = 0.0
    wall_seconds_total: float = 0.0

    def copy(self) -> ServiceStatistics:
        """Point-in-time copy (the live object mutates in place)."""
        return ServiceStatistics(**vars(self))

    @property
    def warm_request_rate(self) -> float:
        """Share of completed requests served from warm tables."""
        return (
            self.warm_requests / self.completed if self.completed else 0.0
        )

    def publish(self, registry, prefix: str = "service") -> None:
        """Bridge the counters into a telemetry registry as gauges."""
        registry.gauge(f"{prefix}.admitted").set(self.admitted)
        registry.gauge(f"{prefix}.rejected").set(self.rejected)
        registry.gauge(f"{prefix}.completed").set(self.completed)
        registry.gauge(f"{prefix}.degraded").set(self.degraded)
        registry.gauge(f"{prefix}.failed").set(self.failed)
        registry.gauge(f"{prefix}.warm_requests").set(
            self.warm_requests
        )
        registry.gauge(f"{prefix}.warm_request_rate").set(
            self.warm_request_rate
        )
        registry.gauge(f"{prefix}.in_flight").set(self.in_flight)
        registry.gauge(f"{prefix}.queue_depth").set(self.queue_depth)
        registry.gauge(f"{prefix}.peak_in_flight").set(
            self.peak_in_flight
        )
        registry.gauge(f"{prefix}.peak_queue_depth").set(
            self.peak_queue_depth
        )
        registry.gauge(f"{prefix}.queue_wait_seconds_total").set(
            self.queue_wait_seconds_total
        )
        registry.gauge(f"{prefix}.wall_seconds_total").set(
            self.wall_seconds_total
        )


class ServiceTicket:
    """Handle of one admitted request: result future + event stream."""

    def __init__(
        self, request_id: str, stream: EventStream, future: Future
    ) -> None:
        self.request_id = request_id
        self.stream = stream
        self._future = future

    def done(self) -> bool:
        """True once the request finished (successfully or not)."""
        return self._future.done()

    def result(self, timeout_s: float | None = None) -> RecommendResponse:
        """Block until the response is ready (re-raises failures)."""
        return self._future.result(timeout=timeout_s)


class AdvisorService:
    """A concurrent, deadline-aware recommendation daemon for one schema.

    Parameters
    ----------
    schema:
        The schema every registered workload must belong to.
    max_concurrency:
        Worker threads executing requests (>= 1).
    queue_depth:
        Requests allowed to wait beyond the executing ones (>= 0);
        admission capacity is ``max_concurrency + queue_depth``.
    default_deadline_s:
        Deadline for requests that do not carry their own (``None`` =
        unlimited).  Deadlines start at submission.
    cost_source:
        Primary what-if backend shared by all requests; defaults to the
        per-kernel analytic model.  Flaky sources are wrapped with
        retries, a circuit breaker, and the analytic fallback exactly
        as in :class:`~repro.advisor.IndexAdvisor`.
    resilience:
        Retry/breaker policy for the shared cost stacks.
    cost_kernel:
        Kernel flavour used when a request does not pick one.
    clock:
        Monotonic time source (injectable for deterministic tests);
        feeds both deadlines and the queue/wall timings.
    """

    def __init__(
        self,
        schema: Schema,
        *,
        max_concurrency: int = 2,
        queue_depth: int = 8,
        default_deadline_s: float | None = None,
        cost_source: CostSource | None = None,
        resilience: ResiliencePolicy | None = None,
        cost_kernel: str = "vectorized",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_concurrency < 1:
            raise ServiceError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if queue_depth < 0:
            raise ServiceError(
                f"queue_depth must be >= 0, got {queue_depth}"
            )
        if cost_kernel not in COST_KERNELS:
            raise ExperimentError(
                f"unknown cost kernel {cost_kernel!r}; pick one of "
                f"{', '.join(COST_KERNELS)}"
            )
        self._schema = schema
        self._max_concurrency = max_concurrency
        self._queue_depth = queue_depth
        self._capacity = max_concurrency + queue_depth
        self._default_deadline_s = default_deadline_s
        self._default_kernel = cost_kernel
        self._clock = clock
        self._stacks = KernelStacks(
            schema, cost_source=cost_source, policy=resilience
        )
        self._registry = WorkloadRegistry(schema, self._stacks)
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency,
            thread_name_prefix="repro-service",
        )
        self._lock = threading.Lock()
        self._statistics = ServiceStatistics()
        self._active: dict[str, EventStream] = {}
        self._request_counter = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Workload lifecycle
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The schema this service recommends for."""
        return self._schema

    @property
    def registry(self) -> WorkloadRegistry:
        """The registered-workload table (exposed for inspection)."""
        return self._registry

    @property
    def kernel_stacks(self) -> KernelStacks:
        """The shared per-kernel cost stacks (exposed for accounting)."""
        return self._stacks

    def workloads(self) -> tuple[str, ...]:
        """Names of all registered workloads, sorted."""
        return self._registry.names()

    def register_workload(
        self,
        name: str,
        workload: Workload
        | Sequence[str]
        | Sequence[tuple[str, float]]
        | Iterable[Query],
    ) -> WorkloadRegistration:
        """Make a workload resident under ``name``."""
        return self._registry.register(
            name, self._coerce_workload(workload)
        )

    def update_workload(
        self,
        name: str,
        workload: Workload
        | Sequence[str]
        | Sequence[tuple[str, float]]
        | Iterable[Query],
    ) -> WorkloadRegistration:
        """Replace a resident workload; bumps its version and clears
        only the cache entries of dropped-or-changed queries."""
        registration, _ = self._registry.update(
            name, self._coerce_workload(workload)
        )
        return registration

    def evict_workload(self, name: str) -> int:
        """Drop a resident workload; returns invalidated cache entries."""
        return self._registry.evict(name)

    def _coerce_workload(
        self,
        workload: Workload
        | Sequence[str]
        | Sequence[tuple[str, float]]
        | Iterable[Query],
    ) -> Workload:
        if isinstance(workload, Workload):
            return workload
        items = list(workload)
        if not items:
            raise ExperimentError("empty workload")
        if isinstance(items[0], Query):
            return Workload(self._schema, items)  # type: ignore[arg-type]
        return workload_from_sql(self._schema, items)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def submit(self, request: RecommendRequest) -> ServiceTicket:
        """Admit one request and start it as soon as a worker frees up.

        Validation (unknown workload/algorithm/kernel, bad budget) and
        admission rejections raise synchronously; everything that can
        only fail later surfaces through the ticket's future.
        """
        registration = self._registry.get(request.workload)
        if request.algorithm not in ALGORITHMS:
            raise ExperimentError(
                f"unknown algorithm {request.algorithm!r}; pick one of "
                f"{', '.join(ALGORITHMS)}"
            )
        kernel = request.cost_kernel or self._default_kernel
        if kernel not in COST_KERNELS:
            raise ExperimentError(
                f"unknown cost kernel {kernel!r}; pick one of "
                f"{', '.join(COST_KERNELS)}"
            )
        budget = coerce_budget(
            self._schema, request.budget_share, request.budget_bytes
        )
        # Capture the workload snapshot now: a concurrent
        # update_workload must not tear an admitted request.
        workload = registration.workload
        version = registration.version
        with self._lock:
            if self._closed:
                raise ServiceError("submit() on a closed AdvisorService")
            statistics = self._statistics
            if statistics.in_flight >= self._capacity:
                statistics.rejected += 1
                raise ServiceOverloadedError(
                    f"service at capacity ({self._max_concurrency} "
                    f"executing + {self._queue_depth} queued); "
                    "retry later"
                )
            statistics.admitted += 1
            statistics.in_flight += 1
            statistics.peak_in_flight = max(
                statistics.peak_in_flight, statistics.in_flight
            )
            statistics.queue_depth = max(
                0, statistics.in_flight - self._max_concurrency
            )
            statistics.peak_queue_depth = max(
                statistics.peak_queue_depth, statistics.queue_depth
            )
            self._request_counter += 1
            request_id = (
                request.request_id or f"req-{self._request_counter}"
            )
            stream = EventStream(request_id)
            self._active[request_id] = stream
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self._default_deadline_s
        )
        deadline = Deadline(deadline_s, clock=self._clock)
        submitted_at = self._clock()
        future = self._executor.submit(
            self._execute,
            request,
            registration,
            workload,
            version,
            kernel,
            budget,
            request_id,
            stream,
            deadline,
            submitted_at,
        )
        return ServiceTicket(request_id, stream, future)

    def recommend(self, request: RecommendRequest) -> RecommendResponse:
        """Submit and block for the response (the synchronous path)."""
        return self.submit(request).result()

    def subscribe(self, request_id: str) -> EventStream:
        """The live event stream of an in-flight request."""
        with self._lock:
            stream = self._active.get(request_id)
        if stream is None:
            raise ServiceError(
                f"no in-flight request with id {request_id!r}"
            )
        return stream

    def _execute(
        self,
        request: RecommendRequest,
        registration: WorkloadRegistration,
        workload: Workload,
        version: int,
        kernel: str,
        budget: float,
        request_id: str,
        stream: EventStream,
        deadline: Deadline,
        submitted_at: float,
    ) -> RecommendResponse:
        started = self._clock()
        queue_seconds = max(0.0, started - submitted_at)
        telemetry = Telemetry(sinks=(StreamSink(stream),))
        try:
            resilient, optimizer = self._stacks.stack(kernel)
            warm_store = registration.warm_store(kernel)
            warm = len(warm_store) > 0
            before = optimizer.statistics.copy()
            result = run_selection(
                workload,
                budget,
                algorithm=request.algorithm,
                optimizer=optimizer,
                telemetry=telemetry,
                candidate_width=request.candidate_width,
                deadline=deadline,
                evaluation=EvaluationConfig(
                    parallelism=request.parallelism
                ),
                warm_store=warm_store,
            )
            wall_seconds = max(0.0, self._clock() - started)
            telemetry.record_whatif(optimizer.statistics.since(before))
            telemetry.record_resilience(resilient.statistics)
            kernel_statistics = self._stacks.vectorized_statistics()
            if kernel_statistics is not None:
                telemetry.record_kernel(kernel_statistics)
            with self._lock:
                statistics = self._statistics
                statistics.completed += 1
                if result.status == STATUS_DEGRADED:
                    statistics.degraded += 1
                if warm:
                    statistics.warm_requests += 1
                statistics.queue_wait_seconds_total += queue_seconds
                statistics.wall_seconds_total += wall_seconds
                registration.served += 1
                lifetime = statistics.copy()
            metrics = telemetry.metrics
            lifetime.publish(metrics)
            metrics.gauge("service.queue_seconds").set(queue_seconds)
            metrics.gauge("service.wall_seconds").set(wall_seconds)
            metrics.gauge("service.warm").set(1 if warm else 0)
            metrics.gauge("service.warm_table_hit_rate").set(
                metrics.snapshot().get("evaluation.warm_hit_rate", 0.0)
            )
            metrics.gauge("service.breaker_state").set(
                resilient.statistics.breaker_state.value
            )
            gauges = {
                name: value
                for name, value in metrics.snapshot().items()
                if isinstance(value, (int, float))
            }
            schema = workload.schema
            indexes = tuple(
                index.label(schema)
                for index in sorted(
                    result.configuration,
                    key=lambda index: (
                        index.table_name,
                        index.attributes,
                    ),
                )
            )
            return RecommendResponse(
                request_id=request_id,
                workload=request.workload,
                workload_version=version,
                status=result.status,
                warm=warm,
                wall_seconds=wall_seconds,
                queue_seconds=queue_seconds,
                result=result,
                indexes=indexes,
                gauges=gauges,
            )
        except BaseException:
            with self._lock:
                self._statistics.failed += 1
            raise
        finally:
            telemetry.close()
            stream.finish()
            with self._lock:
                statistics = self._statistics
                statistics.in_flight -= 1
                statistics.queue_depth = max(
                    0, statistics.in_flight - self._max_concurrency
                )
                self._active.pop(request_id, None)

    # ------------------------------------------------------------------
    # Observability and shutdown
    # ------------------------------------------------------------------

    @property
    def statistics(self) -> ServiceStatistics:
        """Point-in-time copy of the lifetime counters."""
        with self._lock:
            return self._statistics.copy()

    def gauges(self) -> dict[str, float]:
        """The current ``service.*`` gauge values.

        ``service.breaker_state`` reports the worst (highest) breaker
        level across the kernel stacks built so far: 0 closed,
        1 half-open, 2 open.
        """
        registry = MetricsRegistry()
        self.statistics.publish(registry)
        breaker = 0
        for kernel in self._stacks.built_kernels():
            resilient, _ = self._stacks.stack(kernel)
            breaker = max(
                breaker, resilient.statistics.breaker_state.value
            )
        registry.gauge("service.breaker_state").set(breaker)
        return {
            name: value
            for name, value in registry.snapshot().items()
            if isinstance(value, (int, float))
        }

    def close(self, wait: bool = True) -> None:
        """Stop admitting requests and shut the worker pool down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> AdvisorService:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
