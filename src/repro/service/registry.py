"""Registered-workload lifecycle and scoped cache invalidation.

The service's whole reason to exist is residency: what-if cache
entries, compiled workload packs, and warm benefit tables survive
between requests.  That makes workload *change* the dangerous
operation — this module owns it.  ``update`` and ``evict`` invalidate
the shared what-if caches *scoped to the affected queries* (via
``WhatIfOptimizer.clear_cache(queries)``), so the entries and counters
of every other registered workload survive untouched; warm benefit
tables are reset wholesale on any change because their columns are a
function of the entire workload.

Invalidation is content-keyed, like the caches: a query that appears
verbatim in both the old and new version of a workload keeps its
entries across an ``update``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.advisor import KernelStacks
from repro.core.evaluation import WarmBenefitStore
from repro.exceptions import ServiceError, UnknownWorkloadError
from repro.workload.query import Query, Workload

__all__ = ["WorkloadRegistration", "WorkloadRegistry"]


@dataclass
class WorkloadRegistration:
    """One resident workload plus its per-kernel warm benefit tables."""

    name: str
    workload: Workload
    version: int = 1
    served: int = 0
    """Completed recommend requests against this registration."""
    warm_stores: dict[str, WarmBenefitStore] = field(
        default_factory=dict
    )

    def warm_store(self, kernel: str) -> WarmBenefitStore:
        """The warm benefit table of one cost-kernel flavour.

        Per-kernel for the same reason the what-if stacks are: scalar
        and vectorized costs agree only to 1e-9, and warm columns must
        be bit-identical to what cold pricing would have produced.
        """
        store = self.warm_stores.get(kernel)
        if store is None:
            # setdefault: concurrent first requests for one kernel must
            # agree on a single store object.
            store = self.warm_stores.setdefault(
                kernel, WarmBenefitStore()
            )
        return store


class WorkloadRegistry:
    """Named workloads sharing one schema and one set of kernel stacks."""

    def __init__(self, schema, stacks: KernelStacks) -> None:
        self._schema = schema
        self._stacks = stacks
        self._lock = threading.Lock()
        self._registrations: dict[str, WorkloadRegistration] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._registrations)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._registrations))

    def registrations(self) -> tuple[WorkloadRegistration, ...]:
        """All registrations, sorted by name (for snapshots)."""
        with self._lock:
            return tuple(
                registration
                for _, registration in sorted(
                    self._registrations.items()
                )
            )

    def get(self, name: str) -> WorkloadRegistration:
        with self._lock:
            registration = self._registrations.get(name)
        if registration is None:
            raise UnknownWorkloadError(
                f"no workload registered under {name!r}"
            )
        return registration

    def register(
        self, name: str, workload: Workload
    ) -> WorkloadRegistration:
        """Register a new workload; rejects duplicates and foreign
        schemas (use :meth:`update` to replace)."""
        self._check_schema(workload)
        with self._lock:
            if name in self._registrations:
                raise ServiceError(
                    f"workload {name!r} is already registered; "
                    "use update_workload to replace it"
                )
            registration = WorkloadRegistration(
                name=name, workload=workload
            )
            self._registrations[name] = registration
            return registration

    def restore(
        self,
        name: str,
        workload: Workload,
        *,
        version: int,
        served: int = 0,
    ) -> WorkloadRegistration:
        """Reinstall a registration from a durability snapshot.

        Unlike :meth:`register` the restored registration keeps its
        pre-crash version (so clients correlating on
        ``workload_version`` see continuity) and served count.  Only
        valid into a name that is not currently registered — restore
        happens at service startup, before any client traffic.
        """
        self._check_schema(workload)
        if version < 1:
            raise ServiceError(
                f"restored version must be >= 1, got {version}"
            )
        with self._lock:
            if name in self._registrations:
                raise ServiceError(
                    f"workload {name!r} is already registered; "
                    "cannot restore over it"
                )
            registration = WorkloadRegistration(
                name=name,
                workload=workload,
                version=version,
                served=served,
            )
            self._registrations[name] = registration
            return registration

    def update(
        self, name: str, workload: Workload
    ) -> tuple[WorkloadRegistration, int]:
        """Replace a registered workload in place.

        Returns the bumped registration and the number of shared-cache
        entries invalidated.  Only entries of *dropped or changed*
        queries are cleared — queries carried over verbatim keep their
        cached costs, which is what makes small workload drift cheap.
        """
        self._check_schema(workload)
        with self._lock:
            registration = self._registrations.get(name)
            if registration is None:
                raise UnknownWorkloadError(
                    f"no workload registered under {name!r}"
                )
            carried = {query.cache_key for query in workload}
            stale = [
                query
                for query in registration.workload
                if query.cache_key not in carried
            ]
            invalidated = self._invalidate(stale)
            registration.workload = workload
            registration.version += 1
            # Replace (not clear) the warm stores: a request admitted
            # against the old version may still be writing old-workload
            # columns, which must not leak into the new version's store.
            registration.warm_stores = {}
            return registration, invalidated

    def evict(self, name: str) -> int:
        """Drop a registration; returns invalidated cache entries."""
        with self._lock:
            registration = self._registrations.pop(name, None)
            if registration is None:
                raise UnknownWorkloadError(
                    f"no workload registered under {name!r}"
                )
            return self._invalidate(list(registration.workload))

    def _invalidate(self, queries: list[Query]) -> int:
        # Clears by query content key across every kernel stack built so
        # far.  A query shared verbatim by another registration loses
        # its entries too — a repricing hiccup, never a correctness
        # problem, since the caches are content-keyed and deterministic.
        if not queries:
            return 0
        removed = 0
        for kernel in self._stacks.built_kernels():
            _, optimizer = self._stacks.stack(kernel)
            removed += optimizer.clear_cache(queries)
        return removed

    def _check_schema(self, workload: Workload) -> None:
        if workload.schema is not self._schema:
            raise ServiceError(
                "workload schema differs from the service schema; "
                "one AdvisorService serves exactly one schema"
            )
