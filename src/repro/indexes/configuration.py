"""Index configurations — the selections ``I*`` of the paper.

A configuration is an immutable set of :class:`~repro.indexes.index.Index`
objects together with convenience accessors for memory accounting and
per-query applicability.  Algorithms produce configurations; cost models
and the execution engine consume them.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.exceptions import ConfigurationError
from repro.indexes.index import Index
from repro.indexes.memory import configuration_memory
from repro.workload.query import Query
from repro.workload.schema import Schema

__all__ = ["IndexConfiguration"]


class IndexConfiguration:
    """An immutable set of selected indexes ``I*``.

    Duplicate indexes are rejected rather than silently collapsed so that
    algorithm bugs (selecting the same index twice) surface early.
    """

    def __init__(self, indexes: Iterable[Index] = ()) -> None:
        index_list = list(indexes)
        self._indexes: frozenset[Index] = frozenset(index_list)
        if len(self._indexes) != len(index_list):
            raise ConfigurationError(
                "duplicate indexes in configuration"
            )

    # ------------------------------------------------------------------
    # Set-like behaviour
    # ------------------------------------------------------------------

    @property
    def indexes(self) -> frozenset[Index]:
        """The selected indexes."""
        return self._indexes

    def __iter__(self) -> Iterator[Index]:
        return iter(self._indexes)

    def __len__(self) -> int:
        return len(self._indexes)

    def __contains__(self, index: Index) -> bool:
        return index in self._indexes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IndexConfiguration):
            return NotImplemented
        return self._indexes == other._indexes

    def __hash__(self) -> int:
        return hash(self._indexes)

    @property
    def is_empty(self) -> bool:
        """Whether no index is selected."""
        return not self._indexes

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def with_index(self, index: Index) -> "IndexConfiguration":
        """A new configuration with ``index`` added."""
        if index in self._indexes:
            raise ConfigurationError(f"{index!r} already selected")
        return IndexConfiguration(self._indexes | {index})

    def without_index(self, index: Index) -> "IndexConfiguration":
        """A new configuration with ``index`` removed."""
        if index not in self._indexes:
            raise ConfigurationError(f"{index!r} not in configuration")
        return IndexConfiguration(self._indexes - {index})

    def with_replaced(
        self, old: Index, new: Index
    ) -> "IndexConfiguration":
        """A new configuration with ``old`` morphed into ``new``.

        Used by Algorithm 1 Step (3b): appending an attribute to an
        existing index replaces it.
        """
        if old not in self._indexes:
            raise ConfigurationError(f"{old!r} not in configuration")
        if new in self._indexes:
            raise ConfigurationError(f"{new!r} already selected")
        return IndexConfiguration((self._indexes - {old}) | {new})

    # ------------------------------------------------------------------
    # Queries and memory
    # ------------------------------------------------------------------

    def applicable_to(self, query: Query) -> tuple[Index, ...]:
        """The selected indexes applicable to ``query``.

        Sorted deterministically (by table, then attribute order) so
        downstream tie-breaking is stable.
        """
        return tuple(
            sorted(
                (
                    index
                    for index in self._indexes
                    if index.is_applicable_to(query)
                ),
                key=lambda index: (index.table_name, index.attributes),
            )
        )

    def memory(self, schema: Schema) -> int:
        """Total memory ``P(I*)`` in bytes (Eq. 2)."""
        return configuration_memory(schema, self._indexes)

    def indexes_on_table(self, table_name: str) -> tuple[Index, ...]:
        """All selected indexes on the named table (deterministic order)."""
        return tuple(
            sorted(
                (
                    index
                    for index in self._indexes
                    if index.table_name == table_name
                ),
                key=lambda index: index.attributes,
            )
        )

    def created_against(
        self, baseline: "IndexConfiguration"
    ) -> frozenset[Index]:
        """Indexes present here but not in ``baseline`` (``I* \\ Ī*``)."""
        return self._indexes - baseline._indexes

    def dropped_against(
        self, baseline: "IndexConfiguration"
    ) -> frozenset[Index]:
        """Indexes present in ``baseline`` but not here (``Ī* \\ I*``)."""
        return baseline._indexes - self._indexes

    def label(self, schema: Schema | None = None) -> str:
        """Human-readable multi-index label."""
        return (
            "{"
            + ", ".join(
                sorted(index.label(schema) for index in self._indexes)
            )
            + "}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexConfiguration({len(self._indexes)} indexes)"
