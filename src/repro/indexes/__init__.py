"""Index substrate: index model, memory accounting, candidate generation."""

from repro.indexes.candidates import (
    CANDIDATE_HEURISTICS,
    all_permutation_candidates,
    candidates_h1m,
    candidates_h2m,
    candidates_h3m,
    single_attribute_candidates,
    syntactically_relevant_candidates,
)
from repro.indexes.configuration import IndexConfiguration
from repro.indexes.index import Index, canonical_index
from repro.indexes.memory import (
    configuration_memory,
    index_memory,
    relative_budget,
    single_attribute_total_memory,
)

__all__ = [
    "CANDIDATE_HEURISTICS",
    "Index",
    "IndexConfiguration",
    "all_permutation_candidates",
    "candidates_h1m",
    "candidates_h2m",
    "candidates_h3m",
    "canonical_index",
    "configuration_memory",
    "index_memory",
    "relative_budget",
    "single_attribute_candidates",
    "single_attribute_total_memory",
    "syntactically_relevant_candidates",
]
