"""Index memory model (paper Appendix B(ii)).

The memory consumed by a multi-attribute index ``k`` on a table with ``n``
rows is::

    p_k = ceil(ceil(log2(n)) * n / 8) + sum_{i in k} a_i * n

i.e. a packed position list of ``n`` row ids at ``ceil(log2 n)`` bits each,
plus one sorted value column per indexed attribute.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.exceptions import BudgetError
from repro.indexes.index import Index
from repro.workload.schema import Schema

__all__ = [
    "index_memory",
    "configuration_memory",
    "single_attribute_total_memory",
    "relative_budget",
]


def index_memory(schema: Schema, index: Index) -> int:
    """Memory footprint ``p_k`` in bytes of one index."""
    n = schema.table(index.table_name).row_count
    position_list = math.ceil(math.ceil(math.log2(n)) * n / 8) if n > 1 else 1
    values = sum(
        schema.value_size(attribute_id) * n
        for attribute_id in index.attributes
    )
    return position_list + values


def configuration_memory(schema: Schema, indexes: Iterable[Index]) -> int:
    """Total memory ``P(I*) = Σ p_k`` of a set of indexes (Eq. 2)."""
    return sum(index_memory(schema, index) for index in indexes)


def single_attribute_total_memory(schema: Schema) -> int:
    """Memory required to index every attribute individually.

    The denominator of the relative budget ``A(w)`` (Eq. 10).
    """
    return sum(
        index_memory(schema, Index(attribute.table_name, (attribute.id,)))
        for attribute in schema.iter_attributes()
    )


def relative_budget(schema: Schema, w: float) -> float:
    """Absolute budget ``A(w) = w * Σ_{single-attribute k} p_k`` (Eq. 10).

    ``w`` is the share of the memory needed to index every attribute once;
    the paper sweeps ``w`` between 0 and 1.
    """
    if w < 0:
        raise BudgetError(f"relative budget share must be >= 0, got {w}")
    return w * single_attribute_total_memory(schema)
