"""Index candidate generation.

Two-step selection approaches (CoPhy and the rule-based heuristics) need a
candidate set ``I`` up front.  This module provides:

* :func:`syntactically_relevant_candidates` — the exhaustive set
  ``I_max``: for every query, every non-empty subset of its attributes up
  to a maximum width, in the canonical (most-selective-first) permutation,
  deduplicated across queries (see DESIGN.md §3.5 for why this matches the
  paper's reported ``|I_max|`` magnitudes),
* :func:`all_permutation_candidates` — the full permutation enumeration
  (exponentially larger; exposed for small-instance optimality tests),
* the candidate heuristics **H1-M**, **H2-M**, **H3-M** of Example 1 (iv),
  which rank attribute combinations by co-access frequency, combined
  selectivity, and their ratio, respectively,
* :func:`single_attribute_candidates` — one index per accessed attribute.
"""

from __future__ import annotations

from itertools import combinations, permutations
from typing import Callable, Sequence

from repro.exceptions import IndexDefinitionError
from repro.indexes.index import Index, canonical_index
from repro.workload.query import Workload
from repro.workload.stats import WorkloadStatistics

__all__ = [
    "syntactically_relevant_candidates",
    "all_permutation_candidates",
    "single_attribute_candidates",
    "candidates_h1m",
    "candidates_h2m",
    "candidates_h3m",
    "CANDIDATE_HEURISTICS",
]

DEFAULT_MAX_WIDTH = 4


def _deduplicate(candidates: Sequence[Index]) -> list[Index]:
    """Stable deduplication preserving first-seen order."""
    seen: set[Index] = set()
    unique: list[Index] = []
    for candidate in candidates:
        if candidate not in seen:
            seen.add(candidate)
            unique.append(candidate)
    return unique


def syntactically_relevant_candidates(
    workload: Workload, max_width: int = DEFAULT_MAX_WIDTH
) -> list[Index]:
    """The exhaustive candidate set ``I_max``.

    For every query ``q_j`` and every non-empty attribute subset
    ``S ⊆ q_j`` with ``|S| <= max_width``, emit the canonical permutation
    of ``S`` (most selective attribute first).  Duplicates across queries
    are removed.  The result is deterministic: candidates are sorted by
    (table, attributes).
    """
    if max_width < 1:
        raise IndexDefinitionError(
            f"max_width must be >= 1, got {max_width}"
        )
    schema = workload.schema
    candidates: set[Index] = set()
    for query in workload:
        sorted_attributes = sorted(query.attributes)
        for width in range(1, min(max_width, len(sorted_attributes)) + 1):
            for subset in combinations(sorted_attributes, width):
                candidates.add(canonical_index(schema, subset))
    return sorted(
        candidates, key=lambda index: (index.table_name, index.attributes)
    )


def all_permutation_candidates(
    workload: Workload, max_width: int = DEFAULT_MAX_WIDTH
) -> list[Index]:
    """Every permutation of every query-attribute subset up to a width.

    Exponentially larger than :func:`syntactically_relevant_candidates`;
    only feasible for small instances.  Used by tests to confirm that the
    canonical permutation is (near-)best and by optimality studies.
    """
    if max_width < 1:
        raise IndexDefinitionError(
            f"max_width must be >= 1, got {max_width}"
        )
    schema = workload.schema
    candidates: set[Index] = set()
    for query in workload:
        sorted_attributes = sorted(query.attributes)
        for width in range(1, min(max_width, len(sorted_attributes)) + 1):
            for subset in combinations(sorted_attributes, width):
                for ordering in permutations(subset):
                    candidates.add(Index.of(schema, ordering))
    return sorted(
        candidates, key=lambda index: (index.table_name, index.attributes)
    )


def single_attribute_candidates(workload: Workload) -> list[Index]:
    """One single-attribute index per attribute accessed by the workload."""
    schema = workload.schema
    accessed: set[int] = set()
    for query in workload:
        accessed.update(query.attributes)
    return [
        Index.of(schema, (attribute_id,))
        for attribute_id in sorted(accessed)
    ]


# ----------------------------------------------------------------------
# Candidate heuristics of Example 1 (iv)
# ----------------------------------------------------------------------


def _ranked_candidates(
    statistics: WorkloadStatistics,
    total: int,
    max_width: int,
    key: Callable[[frozenset[int]], tuple],
) -> list[Index]:
    """Shared skeleton of H1-M / H2-M / H3-M.

    For each width ``m = 1..max_width``, rank the attribute combinations
    co-accessed by the workload with ``key`` (ascending) and keep the best
    ``h = total / max_width``; return canonical-permutation indexes.

    If a width has fewer co-accessed combinations than ``h``, the heuristic
    simply yields fewer candidates for that width (the paper's generator
    behaves the same for narrow workloads).
    """
    if total < max_width:
        raise IndexDefinitionError(
            f"candidate budget {total} below one per width "
            f"(max_width={max_width})"
        )
    schema = statistics.workload.schema
    per_width = total // max_width
    chosen: list[Index] = []
    for width in range(1, max_width + 1):
        ranked = sorted(
            statistics.accessed_combinations(width),
            key=key,
        )
        for combination in ranked[:per_width]:
            chosen.append(canonical_index(schema, combination))
    return _deduplicate(chosen)


def candidates_h1m(
    statistics: WorkloadStatistics,
    total: int,
    max_width: int = DEFAULT_MAX_WIDTH,
) -> list[Index]:
    """H1-M: most frequently co-accessed combinations per width.

    Ranks combinations by descending frequency-weighted occurrence count
    ``Σ_{j: {i_1..i_m} ⊆ q_j} b_j`` (ties broken deterministically).
    """
    occurrence_tables = {
        width: statistics.combination_occurrences(width)
        for width in range(1, max_width + 1)
    }

    def key(combination: frozenset[int]) -> tuple:
        table = occurrence_tables[len(combination)]
        return (-table[combination], tuple(sorted(combination)))

    return _ranked_candidates(statistics, total, max_width, key)


def candidates_h2m(
    statistics: WorkloadStatistics,
    total: int,
    max_width: int = DEFAULT_MAX_WIDTH,
) -> list[Index]:
    """H2-M: smallest combined selectivity ``Π s_i`` per width."""

    def key(combination: frozenset[int]) -> tuple:
        return (
            statistics.combined_selectivity(combination),
            tuple(sorted(combination)),
        )

    return _ranked_candidates(statistics, total, max_width, key)


def candidates_h3m(
    statistics: WorkloadStatistics,
    total: int,
    max_width: int = DEFAULT_MAX_WIDTH,
) -> list[Index]:
    """H3-M: best ratio of combined selectivity to occurrence count.

    Smaller is better: highly selective combinations that are accessed
    often rank first.
    """
    occurrence_tables = {
        width: statistics.combination_occurrences(width)
        for width in range(1, max_width + 1)
    }

    def key(combination: frozenset[int]) -> tuple:
        occurrences = occurrence_tables[len(combination)][combination]
        return (
            statistics.combined_selectivity(combination) / occurrences,
            tuple(sorted(combination)),
        )

    return _ranked_candidates(statistics, total, max_width, key)


CANDIDATE_HEURISTICS: dict[
    str, Callable[[WorkloadStatistics, int, int], list[Index]]
] = {
    "H1-M": candidates_h1m,
    "H2-M": candidates_h2m,
    "H3-M": candidates_h3m,
}
"""Name → candidate heuristic, as used by the experiment harnesses."""
