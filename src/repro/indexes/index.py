"""Multi-attribute index model.

A (multi-attribute) index ``k`` is an *ordered* tuple of attributes of a
single table (Section II-A).  Order matters: the usable part of an index
for a query is the longest *prefix* whose attributes the query accesses,
so ``(A, B)`` and ``(B, A)`` are different indexes with different value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import IndexDefinitionError
from repro.workload.query import Query
from repro.workload.schema import Schema

__all__ = ["Index", "canonical_index"]


@dataclass(frozen=True)
class Index:
    """An ordered multi-attribute index on one table.

    Attributes
    ----------
    table_name:
        The indexed table.
    attributes:
        Ordered global attribute ids ``(i_1, ..., i_K)``; the first entry
        is the leading attribute ``l(k)``.
    """

    table_name: str
    attributes: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise IndexDefinitionError("an index needs >= 1 attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise IndexDefinitionError(
                f"duplicate attributes in index {self.attributes}"
            )

    def __hash__(self) -> int:
        # Same field tuple the generated dataclass hash would use, but
        # cached: cost caches key on the index, so a cost-table sweep
        # hashes each candidate thousands of times.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((self.table_name, self.attributes))
            object.__setattr__(self, "_hash", value)
            return value

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, schema: Schema, attribute_ids: Iterable[int]) -> "Index":
        """Build an index, validating against the schema.

        All attributes must exist and belong to the same table.
        """
        attributes = tuple(attribute_ids)
        if not attributes:
            raise IndexDefinitionError("an index needs >= 1 attribute")
        tables = {
            schema.attribute(attribute_id).table_name
            for attribute_id in attributes
        }
        if len(tables) != 1:
            raise IndexDefinitionError(
                f"index attributes {attributes} span tables {sorted(tables)}"
            )
        return cls(table_name=tables.pop(), attributes=attributes)

    def extended_by(self, attribute_id: int) -> "Index":
        """A new index with ``attribute_id`` appended at the end.

        This is the "morphing" operation of Algorithm 1 Step (3b).  The
        caller is responsible for the attribute belonging to the same
        table (enforced when the index is used with a schema-aware cost
        model; :meth:`Index.of` validates eagerly).
        """
        if attribute_id in self.attributes:
            raise IndexDefinitionError(
                f"attribute {attribute_id} already in index "
                f"{self.attributes}"
            )
        return Index(self.table_name, self.attributes + (attribute_id,))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of attributes ``K``."""
        return len(self.attributes)

    @property
    def leading_attribute(self) -> int:
        """The first attribute ``l(k)``, which gates applicability."""
        return self.attributes[0]

    @property
    def attribute_set(self) -> frozenset[int]:
        """The attributes as an (unordered) set."""
        return frozenset(self.attributes)

    # ------------------------------------------------------------------
    # Query interplay
    # ------------------------------------------------------------------

    def is_applicable_to(self, query: Query) -> bool:
        """Whether the index can support the query at all.

        Following Section II-B, an index is applicable iff its *leading*
        attribute appears in the query (and it indexes the query's table).
        """
        return (
            self.table_name == query.table_name
            and self.leading_attribute in query.attributes
        )

    def usable_prefix(self, query: Query) -> tuple[int, ...]:
        """The longest index prefix fully contained in the query.

        This is ``U(q_j, k)`` of Appendix B(i): a composite index supports
        equality predicates only on a contiguous prefix of its attribute
        order.  Returns the empty tuple for inapplicable indexes.
        """
        if self.table_name != query.table_name:
            return ()
        usable: list[int] = []
        for attribute_id in self.attributes:
            if attribute_id not in query.attributes:
                break
            usable.append(attribute_id)
        return tuple(usable)

    def usable_prefix_length(self, query: Query) -> int:
        """Length of :meth:`usable_prefix` (0 if inapplicable)."""
        return len(self.usable_prefix(query))

    def is_prefix_of(self, other: "Index") -> bool:
        """Whether this index is a (proper or equal) prefix of ``other``."""
        return (
            self.table_name == other.table_name
            and other.attributes[: self.width] == self.attributes
        )

    def label(self, schema: Schema | None = None) -> str:
        """Human-readable label, e.g. ``"STOCK(W_ID, I_ID)"``."""
        if schema is None:
            names = ", ".join(str(a) for a in self.attributes)
        else:
            names = ", ".join(
                schema.attribute(a).name for a in self.attributes
            )
        return f"{self.table_name}({names})"

    def __repr__(self) -> str:
        return f"Index({self.table_name}, {self.attributes})"


def canonical_index(schema: Schema, attribute_ids: Iterable[int]) -> Index:
    """The canonical ("presumably best") permutation of an attribute set.

    Orders attributes by descending distinct count — the most selective
    attribute leads, which minimizes the scanned range for every usable
    prefix — with ascending attribute id as the tie-breaker.  Section IV-B
    mentions this representative-permutation reduction; we also use it to
    define the exhaustive candidate set ``I_max`` (see DESIGN.md §3.5).
    """
    ordered = sorted(
        attribute_ids,
        key=lambda attribute_id: (
            -schema.distinct_values(attribute_id),
            attribute_id,
        ),
    )
    return Index.of(schema, ordered)
