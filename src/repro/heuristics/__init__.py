"""Rule-based and performance-based baseline heuristics H1–H5."""

from repro.heuristics.base import RankingHeuristic
from repro.heuristics.performance import (
    BenefitPerSizeHeuristic,
    PerformanceHeuristic,
)
from repro.heuristics.rules import (
    FrequencyHeuristic,
    SelectivityFrequencyHeuristic,
    SelectivityHeuristic,
)
from repro.heuristics.skyline import skyline_filter

__all__ = [
    "BenefitPerSizeHeuristic",
    "FrequencyHeuristic",
    "PerformanceHeuristic",
    "RankingHeuristic",
    "SelectivityFrequencyHeuristic",
    "SelectivityHeuristic",
    "skyline_filter",
]
