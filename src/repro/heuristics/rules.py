"""Rule-based heuristics H1–H3 (Definition 1).

These heuristics rank candidates using only workload statistics — no
what-if calls at all:

* **H1** — most used attributes: candidates whose attribute combination is
  co-accessed most often (frequency-weighted), descending.
* **H2** — smallest (combined) selectivity ``Π s_i``, ascending.
* **H3** — smallest ratio of combined selectivity to occurrence count,
  ascending.

For single-attribute candidates these reduce exactly to the paper's
``g_i``, ``s_i``, and ``s_i/g_i`` rankings; the combination-based scores
extend them to multi-attribute candidate sets the same way the candidate
heuristics H1-M/H2-M/H3-M do.
"""

from __future__ import annotations

from typing import Sequence

from repro.heuristics.base import RankingHeuristic
from repro.indexes.index import Index
from repro.workload.query import Workload

__all__ = [
    "FrequencyHeuristic",
    "SelectivityHeuristic",
    "SelectivityFrequencyHeuristic",
]


def _occurrences(workload: Workload, index: Index) -> float:
    """Frequency-weighted number of queries co-accessing all attributes."""
    attribute_set = index.attribute_set
    return sum(
        query.frequency
        for query in workload
        if query.table_name == index.table_name
        and attribute_set <= query.attributes
    )


def _combined_selectivity(workload: Workload, index: Index) -> float:
    """Product of the candidate attributes' selectivities."""
    product = 1.0
    for attribute_id in index.attributes:
        product *= workload.schema.selectivity(attribute_id)
    return product


class FrequencyHeuristic(RankingHeuristic):
    """H1: most frequently (co-)accessed candidates first."""

    name = "H1"

    def rank(
        self, workload: Workload, candidates: Sequence[Index]
    ) -> list[Index]:
        return sorted(
            candidates,
            key=lambda index: (
                -_occurrences(workload, index),
                index.width,
                index.table_name,
                index.attributes,
            ),
        )


class SelectivityHeuristic(RankingHeuristic):
    """H2: most selective (smallest ``Π s_i``) candidates first."""

    name = "H2"

    def rank(
        self, workload: Workload, candidates: Sequence[Index]
    ) -> list[Index]:
        return sorted(
            candidates,
            key=lambda index: (
                _combined_selectivity(workload, index),
                index.width,
                index.table_name,
                index.attributes,
            ),
        )


class SelectivityFrequencyHeuristic(RankingHeuristic):
    """H3: smallest selectivity-to-occurrences ratio first.

    Candidates never co-accessed rank last (their ratio is infinite).
    """

    name = "H3"

    def rank(
        self, workload: Workload, candidates: Sequence[Index]
    ) -> list[Index]:
        def score(index: Index) -> float:
            occurrences = _occurrences(workload, index)
            if occurrences == 0:
                return float("inf")
            return _combined_selectivity(workload, index) / occurrences

        return sorted(
            candidates,
            key=lambda index: (
                score(index),
                index.width,
                index.table_name,
                index.attributes,
            ),
        )
