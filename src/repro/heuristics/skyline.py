"""Skyline (dominated-candidate) pruning, as in Kimura et al.

The compression-aware SQL Server advisor first filters candidates for
being *efficient*: a candidate survives if for at least one query it is
not dominated — no other candidate serves that query at most as
expensively while using at most as much memory (with one inequality
strict).  The paper evaluates H4 with and without this filter (Fig. 5,
"(H4) with the skyline method").
"""

from __future__ import annotations

from typing import Sequence

from repro.cost.whatif import WhatIfOptimizer
from repro.indexes.index import Index
from repro.indexes.memory import index_memory
from repro.workload.query import Workload

__all__ = ["skyline_filter"]


def skyline_filter(
    workload: Workload,
    candidates: Sequence[Index],
    optimizer: WhatIfOptimizer,
) -> list[Index]:
    """Keep candidates that are Pareto-efficient for at least one query.

    For every query, the applicable candidates form (cost, memory)
    points; a candidate survives the filter if it lies on the skyline of
    at least one query.  Inapplicable candidates cannot be efficient for
    a query and candidates applicable to no query are dropped entirely.
    """
    schema = workload.schema
    footprints = {
        index: index_memory(schema, index) for index in candidates
    }
    survivors: set[Index] = set()
    for query in workload:
        applicable = [
            index
            for index in candidates
            if index.is_applicable_to(query)
        ]
        if not applicable:
            continue
        points = [
            (optimizer.index_cost(query, index), footprints[index], index)
            for index in applicable
        ]
        for cost, memory, index in points:
            if index in survivors:
                continue
            dominated = any(
                (other_cost <= cost and other_memory <= memory)
                and (other_cost < cost or other_memory < memory)
                for other_cost, other_memory, other in points
                if other != index
            )
            if not dominated:
                survivors.add(index)
    return [index for index in candidates if index in survivors]
