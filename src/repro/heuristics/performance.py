"""Performance-based heuristics H4 and H5 (Definition 1).

Both rank candidates by *individually measured* performance — each
candidate's workload benefit is estimated in isolation via what-if calls,
ignoring the presence of other selected indexes (the lack of explicit
index-interaction handling the paper criticizes):

* **H4** (cf. Kimura et al. / SQL Server): greedy by absolute benefit
  ``Σ_j b_j · max(0, f_j(0) − f_j(k))``, optionally after skyline
  pruning of dominated candidates.
* **H5** (cf. Valentin et al. / DB2 starting solution): greedy by
  benefit-per-size ratio.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.evaluation import price_columns
from repro.heuristics.base import RankingHeuristic
from repro.heuristics.skyline import skyline_filter
from repro.indexes.index import Index
from repro.indexes.memory import index_memory
from repro.workload.query import Workload

__all__ = ["PerformanceHeuristic", "BenefitPerSizeHeuristic"]


def _standalone_benefit(
    heuristic: RankingHeuristic, workload: Workload, index: Index
) -> float:
    """Workload benefit of ``index`` measured in isolation.

    Read queries contribute their cost reduction; write queries subtract
    the maintenance the index would impose on them.
    """
    optimizer = heuristic.optimizer
    benefit = 0.0
    for query in workload:
        if index.is_applicable_to(query):
            sequential = optimizer.sequential_cost(query)
            benefit += query.frequency * max(
                0.0, sequential - optimizer.index_cost(query, index)
            )
        if not query.is_select:
            benefit -= query.frequency * optimizer.maintenance_cost(
                query, index
            )
    return benefit


class PerformanceHeuristic(RankingHeuristic):
    """H4: greedy by individually measured benefit.

    Parameters
    ----------
    use_skyline:
        Apply the dominated-candidate filter first ("(H4) with the
        skyline method" in Fig. 5).
    """

    def __init__(
        self, optimizer, *, use_skyline: bool = False, **kwargs
    ) -> None:
        super().__init__(optimizer, **kwargs)
        self._use_skyline = use_skyline
        self.name = "H4+skyline" if use_skyline else "H4"

    def rank(
        self, workload: Workload, candidates: Sequence[Index]
    ) -> list[Index]:
        pool = list(candidates)
        if self.parallelism > 1 or getattr(
            self.optimizer, "supports_batch", False
        ):
            # Warm the exact applicable pairs the ranking loop prices —
            # threaded when asked, batched when the backend can.
            price_columns(
                self.optimizer,
                workload.queries,
                pool,
                parallelism=self.parallelism,
            )
        if self._use_skyline:
            pool = skyline_filter(workload, pool, self.optimizer)
        return sorted(
            pool,
            key=lambda index: (
                -_standalone_benefit(self, workload, index),
                index.width,
                index.table_name,
                index.attributes,
            ),
        )


class BenefitPerSizeHeuristic(RankingHeuristic):
    """H5: greedy by individually measured benefit-per-size ratio.

    This is the starting solution of the DB2 advisor; the paper uses it
    as a lower bound for Valentin et al.'s full approach (which then
    shuffles randomly).
    """

    name = "H5"

    def rank(
        self, workload: Workload, candidates: Sequence[Index]
    ) -> list[Index]:
        schema = workload.schema
        if self.parallelism > 1 or getattr(
            self.optimizer, "supports_batch", False
        ):
            price_columns(
                self.optimizer,
                workload.queries,
                candidates,
                parallelism=self.parallelism,
            )
        return sorted(
            candidates,
            key=lambda index: (
                -(
                    _standalone_benefit(self, workload, index)
                    / index_memory(schema, index)
                ),
                index.width,
                index.table_name,
                index.attributes,
            ),
        )
