"""Shared machinery of the rule-based selection heuristics (Definition 1).

All of H1–H5 share the same skeleton: rank a given candidate set by some
score, then greedily pick candidates in rank order while the memory
budget permits (candidates that no longer fit are skipped, later smaller
ones may still be taken).  They differ only in the ranking — and in
whether ranking needs what-if costs (H4/H5) or pure workload statistics
(H1–H3).

The final configuration is always priced with the shared what-if facade
under the one-index-per-query semantics, so results are comparable across
algorithms regardless of how a heuristic ranked internally.
"""

from __future__ import annotations

import abc
import time
from typing import Sequence

from repro.core.steps import (
    STATUS_COMPLETED,
    STATUS_DEGRADED,
    SelectionResult,
)
from repro.cost.whatif import WhatIfOptimizer
from repro.exceptions import BudgetError
from repro.indexes.configuration import IndexConfiguration
from repro.indexes.index import Index
from repro.indexes.memory import index_memory
from repro.resilience.deadline import Deadline
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.workload.query import Workload

__all__ = ["RankingHeuristic"]


class RankingHeuristic(abc.ABC):
    """Base class: rank candidates, then greedily fill the budget."""

    name = "ranking"

    def __init__(
        self,
        optimizer: WhatIfOptimizer,
        *,
        telemetry: Telemetry = NULL_TELEMETRY,
        parallelism: int = 1,
    ) -> None:
        self._optimizer = optimizer
        self._telemetry = telemetry
        self._parallelism = max(1, parallelism)

    @property
    def optimizer(self) -> WhatIfOptimizer:
        """The what-if facade used for final pricing (and by H4/H5 for
        ranking)."""
        return self._optimizer

    @property
    def parallelism(self) -> int:
        """Worker threads a subclass may use to pre-price candidates
        (see :func:`~repro.core.evaluation.price_columns`); ranking and
        the greedy fill stay serial and deterministic."""
        return self._parallelism

    @abc.abstractmethod
    def rank(
        self, workload: Workload, candidates: Sequence[Index]
    ) -> list[Index]:
        """Return the candidates in selection (best-first) order.

        Implementations may also *filter* (e.g. H4's skyline variant
        removes dominated candidates).
        """

    def select(
        self,
        workload: Workload,
        budget: float,
        candidates: Sequence[Index],
        *,
        deadline: Deadline | None = None,
    ) -> SelectionResult:
        """Greedy fill: take ranked candidates while the budget allows.

        With a ``deadline``, the fill stops taking candidates once the
        wall clock expires and the (feasible, fully priced) partial
        selection is returned with ``status="degraded"``.
        """
        if budget < 0:
            raise BudgetError(f"budget must be >= 0, got {budget}")
        deadline = deadline or Deadline.none()
        status = STATUS_COMPLETED
        telemetry = self._telemetry
        tracer = telemetry.tracer
        started = time.perf_counter()
        calls_before = self._optimizer.calls
        schema = workload.schema

        with tracer.span(
            "heuristic.select",
            algorithm=self.name,
            candidates=len(candidates),
        ) as run_span:
            with tracer.span("heuristic.rank"):
                ranked = self.rank(workload, list(candidates))
            if deadline.expired:
                status = STATUS_DEGRADED

            with tracer.span("heuristic.fill"):
                chosen: list[Index] = []
                used = 0
                for candidate in ranked:
                    if deadline.expired:
                        status = STATUS_DEGRADED
                        break
                    footprint = index_memory(schema, candidate)
                    if used + footprint > budget:
                        continue
                    chosen.append(candidate)
                    used += footprint

            configuration = IndexConfiguration(chosen)
            total_cost = self._optimizer.workload_cost(
                workload, configuration
            )
            if telemetry.enabled:
                run_span.annotate("selected", len(chosen))
                run_span.annotate("status", status)
                telemetry.metrics.counter(
                    f"heuristic.{self.name}.selected"
                ).increment(len(chosen))
                telemetry.record_whatif(self._optimizer.statistics)
        return SelectionResult(
            algorithm=self.name,
            configuration=configuration,
            total_cost=total_cost,
            memory=used,
            budget=budget,
            runtime_seconds=time.perf_counter() - started,
            whatif_calls=self._optimizer.calls - calls_before,
            status=status,
        )
