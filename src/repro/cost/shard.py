"""Process-sharded cost kernel: whole-enterprise pricing across cores.

The compiled kernel of :mod:`repro.cost.kernel` prices a cost table as
one numpy sweep — fast, but single-process: at the paper's full
enterprise scale (500 tables, 4 204 attributes, 2 271 templates) the
pair axis grows into the hundreds of thousands and one core becomes the
ceiling.  This module adds :class:`ShardedCostSource`, a drop-in
:class:`~repro.cost.whatif.CostSource` that partitions the pair axis of
a batch across a ``multiprocessing`` worker pool:

* **Shared read-only packs.**  Workers receive the parent's
  :class:`~repro.cost.kernel.CompiledWorkload` packs exactly once, at
  pool (re)build time — via fork inheritance on POSIX (zero copies) or
  one pickle per worker under ``spawn`` — never per task.  Per-task
  payloads are only row-index arrays and run-length-encoded candidate
  lists.
* **Bit-identical results.**  The kernel's batched ``f_j(k)`` sweeps
  are element-wise per pair (row-wise reductions only), so any
  partition of the pair axis concatenates to the unpartitioned result
  bit-for-bit.  Each worker holds its own
  :class:`~repro.cost.kernel.VectorizedCostSource` over the same schema
  (deterministically derived statistic tables) and prices the parent's
  pack rows through the same public entry points.
* **Same protocol.**  ``query_costs`` / ``pair_costs`` /
  ``sequential_costs`` / ``maintenance_costs`` mirror the vectorized
  source, so :class:`~repro.cost.whatif.WhatIfOptimizer` feature
  detection, :class:`~repro.resilience.ResilientCostSource` batch
  advertisement, and the service kernel stacks pick the backend up
  unchanged.
* **Graceful worker death.**  A killed or crashed worker breaks the
  pool; chunks that already completed keep their results, lost chunks
  are repriced serially on the in-process kernel (bit-identical), and
  the pool is lazily rebuilt.  Only when *no* chunk of a batch survived
  does the source raise
  :class:`~repro.exceptions.TransientCostSourceError`, so a wrapping
  :class:`~repro.resilience.ResilientCostSource` records the
  degradation and retries the batch against the rebuilt pool.

Batches below ``min_dispatch_pairs`` (and every scalar / maintenance /
multi-index call) are served by the in-process kernel directly —
process hops only ever pay off on big sweeps.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import groupby
from typing import Iterable, Sequence

import numpy as np

from repro.cost.kernel import CompiledWorkload, VectorizedCostSource
from repro.exceptions import TransientCostSourceError
from repro.indexes.index import Index
from repro.workload.query import Query
from repro.workload.schema import Schema

__all__ = [
    "ShardStatistics",
    "ShardedCostSource",
    "default_shard_count",
]

_DEFAULT_MIN_DISPATCH_PAIRS = 2048
"""Below this batch size the in-process kernel wins on overhead."""


def default_shard_count() -> int:
    """Worker count when the caller does not pick one: the machine's
    cores, clamped to [2, 8] (diminishing returns past the memory
    bandwidth of one socket)."""
    return max(2, min(8, os.cpu_count() or 2))


def _default_start_method() -> str:
    """``fork`` where available (zero-copy pack inheritance), else
    ``spawn`` (packs pickled once per worker at pool start)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass
class ShardStatistics:
    """Counters of the sharded backend (telemetry-bridgeable).

    ``dispatched_pairs`` counts pairs priced by pool workers,
    ``local_pairs`` pairs served by the in-process kernel (below the
    dispatch threshold or ``shards <= 1``), ``repriced_pairs`` pairs
    recovered serially after a worker failure.  ``packs_shipped``
    counts pack transfers at pool (re)builds — the per-task payload
    never carries a pack.
    """

    workers: int = 0
    dispatches: int = 0
    dispatched_pairs: int = 0
    local_pairs: int = 0
    pool_starts: int = 0
    pool_rebuilds: int = 0
    pool_resets: int = 0
    worker_failures: int = 0
    repriced_pairs: int = 0
    packs_shipped: int = 0

    def publish(self, registry, prefix: str = "kernel") -> None:
        """Bridge the counters into a telemetry
        :class:`~repro.telemetry.metrics.MetricsRegistry` as the
        ``kernel.shard_*`` gauges (see docs/OBSERVABILITY.md)."""
        registry.gauge(f"{prefix}.shard_workers").set(self.workers)
        registry.gauge(f"{prefix}.shard_dispatches").set(
            self.dispatches
        )
        registry.gauge(f"{prefix}.shard_dispatched_pairs").set(
            self.dispatched_pairs
        )
        registry.gauge(f"{prefix}.shard_local_pairs").set(
            self.local_pairs
        )
        registry.gauge(f"{prefix}.shard_pool_starts").set(
            self.pool_starts
        )
        registry.gauge(f"{prefix}.shard_pool_rebuilds").set(
            self.pool_rebuilds
        )
        registry.gauge(f"{prefix}.shard_pool_resets").set(
            self.pool_resets
        )
        registry.gauge(f"{prefix}.shard_worker_failures").set(
            self.worker_failures
        )
        registry.gauge(f"{prefix}.shard_repriced_pairs").set(
            self.repriced_pairs
        )
        registry.gauge(f"{prefix}.shard_packs_shipped").set(
            self.packs_shipped
        )


class _WorkerState:
    """One worker's kernel plus the parent's pack snapshot.

    Built once per worker (initializer) and shared by every task the
    worker serves; also used directly by the parent in ``inline`` mode
    so tests exercise the exact worker code path in-process.
    """

    def __init__(
        self, schema: Schema, packs: Sequence[CompiledWorkload]
    ) -> None:
        self.kernel = VectorizedCostSource(schema)
        self.packs = tuple(packs)

    def price(self, task: tuple) -> np.ndarray:
        """Price one chunk task; see ``_Chunk.payload`` for formats."""
        kind = task[0]
        if kind == "column":
            _, slot, rows, index = task
            return self.kernel.index_costs_on(
                self.packs[slot], rows, index
            )
        _, slot, rows, distinct, codes, lengths = task
        return self.kernel.pair_costs_on(
            self.packs[slot], rows, _decode_runs(distinct, codes, lengths)
        )


_STATE: _WorkerState | None = None


def _worker_init(
    schema: Schema, packs: tuple[CompiledWorkload, ...]
) -> None:
    """Pool initializer: build the per-worker kernel and install the
    parent's packs (inherited under fork, unpickled once under
    spawn)."""
    global _STATE
    _STATE = _WorkerState(schema, packs)


def _price_task(task: tuple) -> np.ndarray:
    """The pool task function (top-level so ``spawn`` can import it)."""
    assert _STATE is not None, "worker initializer did not run"
    return _STATE.price(task)


def _encode_runs(indexes: Sequence) -> tuple[list, list[int], list[int]]:
    """Run-length encode a per-pair index list by object identity.

    Cost-table pair lists are long runs of the same candidate object;
    shipping ``(distinct, codes, lengths)`` keeps task payloads small
    and — because decoding rebuilds runs of the *same* object — the
    worker-side kernel sees identical identity runs and tabulates the
    chunk exactly like the parent would.
    """
    distinct_of: dict[int, int] = {}
    distinct: list = []
    codes: list[int] = []
    lengths: list[int] = []
    for key, group in groupby(indexes, key=id):
        members = list(group)
        code = distinct_of.get(key)
        if code is None:
            code = len(distinct)
            distinct_of[key] = code
            distinct.append(members[0])
        codes.append(code)
        lengths.append(len(members))
    return distinct, codes, lengths


def _decode_runs(
    distinct: Sequence, codes: Sequence[int], lengths: Sequence[int]
) -> list:
    """Expand the run-length encoding back to a per-pair list."""
    indexes: list = []
    extend = indexes.extend
    for code, length in zip(codes, lengths):
        extend([distinct[code]] * length)
    return indexes


def _chunk_bounds(
    count: int, shards: int
) -> list[tuple[int, int]]:
    """Contiguous near-equal ``[start, end)`` split, no empty chunks."""
    shards = max(1, min(shards, count))
    base, extra = divmod(count, shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for position in range(shards):
        size = base + (1 if position < extra else 0)
        if size:
            bounds.append((start, start + size))
            start += size
    return bounds


@dataclass
class _Chunk:
    """One shard of a batch: result positions, pack rows, candidates."""

    positions: np.ndarray
    pack: CompiledWorkload
    rows: np.ndarray
    kind: str
    detail: object

    def payload(self, slots: dict[int, int]) -> tuple:
        """The picklable task tuple (pack referenced by pool slot)."""
        slot = slots[id(self.pack)]
        if self.kind == "column":
            return ("column", slot, self.rows, self.detail)
        distinct, codes, lengths = self.detail
        return ("pairs", slot, self.rows, distinct, codes, lengths)

    @property
    def size(self) -> int:
        return int(self.rows.size)


class ShardedCostSource:
    """Process-pool cost source sharding batches across workers.

    Construction is cheap: the pool starts lazily on the first batch
    that clears ``min_dispatch_pairs``.  ``shards <= 1`` degenerates to
    the in-process kernel (useful as a baseline and for the
    shard-count-1 equivalence property).  ``inline=True`` swaps the
    pool for an in-process :class:`_WorkerState` that runs the exact
    worker code path — the deterministic harness the shard-equivalence
    property suite runs at hundreds of examples without fork overhead.

    Thread-safe (``parallel_safe``): pack compilation is locked inside
    the kernel, pool lifecycle behind this source's own lock, and the
    numpy sweeps are pure.
    """

    parallel_safe = True

    def __init__(
        self,
        schema: Schema,
        *,
        shards: int | None = None,
        min_dispatch_pairs: int = _DEFAULT_MIN_DISPATCH_PAIRS,
        start_method: str | None = None,
        inline: bool = False,
    ) -> None:
        self._schema = schema
        self._kernel = VectorizedCostSource(schema)
        self._shards = max(
            1, shards if shards is not None else default_shard_count()
        )
        self._min_dispatch = max(1, min_dispatch_pairs)
        self._start_method = start_method or _default_start_method()
        self._inline = inline
        self._pool: ProcessPoolExecutor | None = None
        self._pool_broken = False
        self._inline_state: _WorkerState | None = None
        self._slots: dict[int, int] = {}
        self._pool_packs: tuple[CompiledWorkload, ...] = ()
        self._pool_lock = threading.Lock()
        self.statistics = ShardStatistics(workers=self._shards)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The schema every worker prices against."""
        return self._schema

    @property
    def shards(self) -> int:
        """Configured worker count."""
        return self._shards

    @property
    def kernel(self) -> VectorizedCostSource:
        """The in-process kernel (scalar paths, small batches,
        repricing)."""
        return self._kernel

    @property
    def kernel_statistics(self):
        """The in-process kernel's
        :class:`~repro.cost.kernel.KernelStatistics`."""
        return self._kernel.statistics

    def worker_pids(self) -> list[int]:
        """PIDs of live pool workers (empty before the first
        dispatch); the chaos harness SIGKILLs from this list."""
        with self._pool_lock:
            pool = self._pool
        processes = getattr(pool, "_processes", None) or {}
        return [
            pid
            for pid, process in processes.items()
            if process.is_alive()
        ]

    def alive_workers(self) -> int:
        """How many pool workers are currently alive."""
        return len(self.worker_pids())

    # ------------------------------------------------------------------
    # CostSource protocol (scalar paths delegate to the kernel)
    # ------------------------------------------------------------------

    def query_cost(self, query: Query, index: Index | None) -> float:
        """``f_j(k)`` for one pair (in-process kernel)."""
        return self._kernel.query_cost(query, index)

    def maintenance_cost(self, query: Query, index: Index) -> float:
        """Per-execution maintenance (scalar model, bit-identical)."""
        return self._kernel.maintenance_cost(query, index)

    def multi_index_cost(
        self, query: Query, indexes: Iterable[Index]
    ) -> float:
        """Appendix B(i) greedy multi-index cost (scalar delegate)."""
        return self._kernel.multi_index_cost(query, indexes)

    def sequential_costs(self, queries: Sequence[Query]) -> np.ndarray:
        """``f_j(0)`` column — a pack lookup, never worth a hop."""
        return self._kernel.sequential_costs(queries)

    def maintenance_costs(
        self, queries: Sequence[Query], index: Index
    ) -> np.ndarray:
        """Maintenance column (scalar delegate, cached by the
        facade)."""
        return self._kernel.maintenance_costs(queries, index)

    # ------------------------------------------------------------------
    # Sharded batch entry points
    # ------------------------------------------------------------------

    def query_costs(
        self, queries: Sequence[Query], index: Index | None
    ) -> np.ndarray:
        """``f_j(k)`` for a column of queries under one index, sharded
        across workers when the column is big enough."""
        queries = tuple(queries)
        if index is None or not self._should_dispatch(len(queries)):
            self.statistics.local_pairs += len(queries)
            return self._kernel.query_costs(queries, index)
        placements = self._kernel.placements_for(queries)
        results = np.empty(len(queries), dtype=np.float64)
        chunks: list[_Chunk] = []
        for pack, positions, rows, _ in self._grouped(placements):
            for start, end in _chunk_bounds(rows.size, self._shards):
                chunks.append(
                    _Chunk(
                        positions=positions[start:end],
                        pack=pack,
                        rows=rows[start:end],
                        kind="column",
                        detail=index,
                    )
                )
        self._price_chunks(chunks, results)
        return results

    def pair_costs(
        self, pairs: Sequence[tuple[Query, Index | None]]
    ) -> np.ndarray:
        """``f_j(k)`` for arbitrary pairs — the cost-table entry point,
        sharded along the pair axis."""
        pairs = tuple(pairs)
        if not self._should_dispatch(len(pairs)):
            self.statistics.local_pairs += len(pairs)
            return self._kernel.pair_costs(pairs)
        queries = tuple(query for query, _ in pairs)
        indexes = [index for _, index in pairs]
        placements = self._kernel.placements_for(queries)
        results = np.empty(len(pairs), dtype=np.float64)
        chunks: list[_Chunk] = []
        for pack, positions, rows, members in self._grouped(
            placements, indexes
        ):
            for start, end in _chunk_bounds(rows.size, self._shards):
                chunks.append(
                    _Chunk(
                        positions=positions[start:end],
                        pack=pack,
                        rows=rows[start:end],
                        kind="pairs",
                        detail=_encode_runs(members[start:end]),
                    )
                )
        self._price_chunks(chunks, results)
        return results

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def reset_pool(self) -> None:
        """Drop the pool (queued work cancelled, workers reaped); the
        next big batch rebuilds it.  The service watchdog calls this
        when it abandons a request whose shard dispatch hung."""
        with self._pool_lock:
            had_pool = self._pool is not None
            self._teardown_locked()
        if had_pool:
            self.statistics.pool_resets += 1

    def close(self) -> None:
        """Shut the pool down; the source stays usable (in-process
        kernel, lazily rebuilt pool)."""
        with self._pool_lock:
            self._teardown_locked()

    def __enter__(self) -> "ShardedCostSource":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _teardown_locked(self) -> None:
        pool = self._pool
        self._pool = None
        self._pool_broken = False
        self._slots = {} if self._inline_state is None else self._slots
        if self._inline_state is None:
            self._pool_packs = ()
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - best-effort reap
                pass

    def _ensure_pool(
        self, needed: Sequence[CompiledWorkload]
    ) -> tuple[ProcessPoolExecutor | None, dict[int, int]]:
        """The current pool and its pack-slot table, (re)building when
        the pool is missing, broken, or lacks a needed pack."""
        with self._pool_lock:
            if self._pool is not None and not self._pool_broken:
                if all(id(pack) in self._slots for pack in needed):
                    return self._pool, dict(self._slots)
            rebuild = self._pool is not None or self._pool_broken
            self._teardown_locked()
            snapshot = self._kernel.packs()
            try:
                context = multiprocessing.get_context(
                    self._start_method
                )
                pool = ProcessPoolExecutor(
                    max_workers=self._shards,
                    mp_context=context,
                    initializer=_worker_init,
                    initargs=(self._schema, snapshot),
                )
            except Exception:
                self.statistics.worker_failures += 1
                return None, {}
            self._pool = pool
            self._pool_broken = False
            self._pool_packs = snapshot
            self._slots = {
                id(pack): slot for slot, pack in enumerate(snapshot)
            }
            statistics = self.statistics
            statistics.pool_starts += 1
            if rebuild:
                statistics.pool_rebuilds += 1
            statistics.packs_shipped += len(snapshot)
            return pool, dict(self._slots)

    def _ensure_inline(
        self, needed: Sequence[CompiledWorkload]
    ) -> tuple[_WorkerState, dict[int, int]]:
        with self._pool_lock:
            state = self._inline_state
            if state is None or any(
                id(pack) not in self._slots for pack in needed
            ):
                snapshot = self._kernel.packs()
                state = _WorkerState(self._schema, snapshot)
                self._inline_state = state
                self._pool_packs = snapshot
                self._slots = {
                    id(pack): slot
                    for slot, pack in enumerate(snapshot)
                }
                statistics = self.statistics
                statistics.pool_starts += 1
                statistics.packs_shipped += len(snapshot)
            return state, dict(self._slots)

    def _mark_broken(self, pool: ProcessPoolExecutor) -> None:
        with self._pool_lock:
            if self._pool is pool:
                self._pool_broken = True
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - best-effort reap
            pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _should_dispatch(self, pair_count: int) -> bool:
        return self._shards > 1 and pair_count >= self._min_dispatch

    @staticmethod
    def _grouped(
        placements: Sequence[tuple[CompiledWorkload, int]],
        indexes: Sequence | None = None,
    ):
        """Group batch positions by pack, preserving order within each
        group (mirrors the kernel's own scatter-gather grouping)."""
        groups: dict[int, tuple[CompiledWorkload, list, list, list]] = {}
        for position, (pack, row) in enumerate(placements):
            entry = groups.get(id(pack))
            if entry is None:
                entry = (pack, [], [], [])
                groups[id(pack)] = entry
            entry[1].append(position)
            entry[2].append(row)
            if indexes is not None:
                entry[3].append(indexes[position])
        for pack, positions, rows, members in groups.values():
            yield (
                pack,
                np.asarray(positions, dtype=np.intp),
                np.asarray(rows, dtype=np.intp),
                members,
            )

    def _run_inline(self, state: _WorkerState, payload: tuple):
        """Inline-mode chunk execution (separable for fault tests)."""
        return state.price(payload)

    def _reprice(self, chunk: _Chunk) -> np.ndarray:
        """Serial recovery of one lost chunk on the in-process kernel
        (bit-identical to what the worker would have returned)."""
        self.statistics.repriced_pairs += chunk.size
        if chunk.kind == "column":
            return self._kernel.index_costs_on(
                chunk.pack, chunk.rows, chunk.detail
            )
        distinct, codes, lengths = chunk.detail
        return self._kernel.pair_costs_on(
            chunk.pack, chunk.rows, _decode_runs(distinct, codes, lengths)
        )

    def _price_chunks(
        self, chunks: list[_Chunk], results: np.ndarray
    ) -> None:
        """Run every chunk, scattering costs into ``results``.

        Worker failures degrade: completed chunks keep their results,
        lost chunks are repriced serially, the pool is marked for
        rebuild.  When *nothing* completed (the pool died outright) a
        :class:`TransientCostSourceError` propagates so the resilience
        chain records the failure and retries against a fresh pool.
        """
        statistics = self.statistics
        packs = [chunk.pack for chunk in chunks]
        failures: list[_Chunk] = []
        completed = 0
        if self._inline:
            state, slots = self._ensure_inline(packs)
            for chunk in chunks:
                try:
                    costs = self._run_inline(
                        state, chunk.payload(slots)
                    )
                except Exception:
                    failures.append(chunk)
                    continue
                results[chunk.positions] = costs
                completed += 1
                statistics.dispatches += 1
                statistics.dispatched_pairs += chunk.size
        else:
            pool, slots = self._ensure_pool(packs)
            if pool is None:
                # Pool construction itself failed (resource pressure):
                # price everything serially rather than crash.
                for chunk in chunks:
                    results[chunk.positions] = self._reprice(chunk)
                return
            submitted: list[tuple[_Chunk, object]] = []
            for chunk in chunks:
                try:
                    future = pool.submit(
                        _price_task, chunk.payload(slots)
                    )
                except Exception:
                    failures.append(chunk)
                    continue
                submitted.append((chunk, future))
            for chunk, future in submitted:
                try:
                    costs = future.result()
                except Exception:
                    failures.append(chunk)
                    continue
                results[chunk.positions] = costs
                completed += 1
                statistics.dispatches += 1
                statistics.dispatched_pairs += chunk.size
            if failures:
                self._mark_broken(pool)
        if not failures:
            return
        statistics.worker_failures += 1
        if completed == 0:
            raise TransientCostSourceError(
                f"sharded kernel lost all {len(failures)} chunk(s) of a "
                "batch (worker pool died); pool marked for rebuild"
            )
        for chunk in failures:
            results[chunk.positions] = self._reprice(chunk)
