"""What-if optimizer facade with caching and call accounting.

What-if calls are "the major bottleneck for most index selection
approaches" (Section I); the paper's scalability argument rests on the
number of such calls (≈ ``2·Q·q̄`` for Algorithm 1 versus
``≈ Q·q̄·|I|/N`` for CoPhy, Section III-A).  This module provides:

* :class:`CostSource` — the protocol a cost backend implements.
  Backends: :class:`AnalyticalCostSource` (Appendix B model), the
  compiled batch kernel in :mod:`repro.cost.kernel`, its process-pool
  shard in :mod:`repro.cost.shard` (bit-identical to the kernel), and
  the measured-execution source in :mod:`repro.engine.measured`.
* :class:`WhatIfOptimizer` — a caching facade that counts *backend* calls
  (cache hits are free, exactly like the caching the paper describes in
  Fig. 1's notes: "required what-if calls from previous steps can be
  cached").

All selection algorithms in this repository obtain costs exclusively
through :class:`WhatIfOptimizer`, so call accounting is uniform.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

import numpy as np

from repro.indexes.configuration import IndexConfiguration
from repro.indexes.index import Index
from repro.workload.query import Query, Workload

__all__ = [
    "CostSource",
    "AnalyticalCostSource",
    "WhatIfOptimizer",
    "WhatIfStatistics",
]


class CostSource(Protocol):
    """Backend that prices a query under a single index (or none).

    Implementations must be deterministic: the facade caches results.
    Backends may additionally expose ``maintenance_cost(query, index)``
    for write queries; the facade treats a missing method as
    zero-maintenance (read-only backends).
    """

    def query_cost(self, query: Query, index: Index | None) -> float:
        """``f_j(k)``, or ``f_j(0)`` when ``index`` is ``None``.

        Backends may additionally expose batch twins —
        ``query_costs(queries, index)``, ``sequential_costs(queries)``
        and ``maintenance_costs(queries, index)``, each returning one
        float per query — which the facade feature-detects and routes
        whole cost columns through (the compiled kernel in
        :mod:`repro.cost.kernel` is the batch-capable backend).
        """
        ...  # pragma: no cover - protocol


class AnalyticalCostSource:
    """Cost source backed by the Appendix B analytic model."""

    def __init__(self, cost_model) -> None:
        self._cost_model = cost_model

    def query_cost(self, query: Query, index: Index | None) -> float:
        if index is None:
            return self._cost_model.sequential_cost(query)
        return self._cost_model.index_cost(query, index)

    def maintenance_cost(self, query: Query, index: Index) -> float:
        """Per-execution index maintenance of a write query."""
        return self._cost_model.maintenance_cost(query, index)

    def multi_index_cost(
        self, query: Query, indexes: tuple[Index, ...]
    ) -> float:
        """Context-based multi-index evaluation (Remark 2)."""
        return self._cost_model.multi_index_cost(query, indexes)


@dataclass
class WhatIfStatistics:
    """Counters of what-if optimizer usage."""

    calls: int = 0
    cache_hits: int = 0
    evictions: int = 0
    """Cost-cache entries dropped by the optional LRU bound (0 on an
    unbounded facade)."""

    @property
    def total_requests(self) -> int:
        """Backend calls plus cache hits."""
        return self.calls + self.cache_hits

    @property
    def hit_rate(self) -> float:
        """Share of requests served from the cache (0 when unused)."""
        total = self.total_requests
        return self.cache_hits / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.calls = 0
        self.cache_hits = 0
        self.evictions = 0

    def copy(self) -> WhatIfStatistics:
        """Point-in-time copy (the live object mutates in place)."""
        return WhatIfStatistics(
            calls=self.calls,
            cache_hits=self.cache_hits,
            evictions=self.evictions,
        )

    def since(self, earlier: WhatIfStatistics) -> WhatIfStatistics:
        """Counter deltas accumulated after ``earlier`` was captured."""
        return WhatIfStatistics(
            calls=self.calls - earlier.calls,
            cache_hits=self.cache_hits - earlier.cache_hits,
            evictions=self.evictions - earlier.evictions,
        )

    def publish(self, registry, prefix: str = "whatif") -> None:
        """Bridge the counters into a telemetry
        :class:`~repro.telemetry.metrics.MetricsRegistry` as gauges
        (``<prefix>.calls``, ``<prefix>.cache_hits``,
        ``<prefix>.hit_rate``, ``<prefix>.evictions``)."""
        registry.gauge(f"{prefix}.calls").set(self.calls)
        registry.gauge(f"{prefix}.cache_hits").set(self.cache_hits)
        registry.gauge(f"{prefix}.hit_rate").set(self.hit_rate)
        registry.gauge(f"{prefix}.evictions").set(self.evictions)


def _encode_index_key(tail):
    """Index part of a cache key → JSON-safe nested lists.

    ``None`` (sequential baseline) passes through; attribute tuples and
    tuples of attribute tuples (multi-index entries) become lists.
    """
    if tail is None:
        return None
    return [
        list(element) if isinstance(element, tuple) else element
        for element in tail
    ]


def _decode_index_key(tail):
    """Inverse of :func:`_encode_index_key` (lists back to tuples)."""
    if tail is None:
        return None
    return tuple(
        tuple(int(inner) for inner in element)
        if isinstance(element, list)
        else int(element)
        for element in tail
    )


class WhatIfOptimizer:
    """Caching what-if optimizer.

    Parameters
    ----------
    cost_source:
        The backend that actually prices ``(query, index)`` pairs.
    max_entries:
        Optional LRU capacity of the cost cache.  ``None`` (default)
        keeps the cache unbounded — a plain dict with zero hot-path
        overhead.  With a bound, a resident daemon serving millions of
        distinct queries holds at most ``max_entries`` cost entries:
        hits refresh recency, inserts past capacity evict the least
        recently used entry and count it in ``statistics.evictions``
        (the ``whatif.evictions`` gauge).  The maintenance cache stays
        unbounded — it only holds write-query × index entries, which
        are few and statistics-derived.
    """

    def __init__(
        self,
        cost_source: CostSource,
        *,
        max_entries: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self._source = cost_source
        self._max_entries = max_entries
        # Cache keys are content-based — (query.cache_key, identity of
        # the index) — not query-id-based: costs do not depend on
        # frequencies or ids, so one facade can serve many workloads
        # (drift epochs, compressed variants) without collisions and
        # with full cache reuse.  Indexes are identified by their
        # attribute tuple alone (global attribute ids are owned by
        # exactly one table, so the tuple implies the table), which
        # hashes at C speed in the per-pair hot loops.  The bounded
        # variant is an OrderedDict so recency moves are O(1).
        self._cache: dict[tuple, float] = (
            OrderedDict() if max_entries is not None else {}
        )
        self._maintenance_cache: dict[tuple, float] = {}
        self._statistics = WhatIfStatistics()
        # Guards cache/statistics mutation so the facade can be shared
        # by the evaluation engine's worker threads.
        self._lock = threading.Lock()

    @property
    def max_entries(self) -> int | None:
        """The configured LRU bound (``None`` = unbounded)."""
        return self._max_entries

    def _admit(self, key: tuple, cost: float) -> float:
        """Insert-or-keep one cost entry; evicts LRU past capacity.

        Caller holds the lock.  Mirrors ``setdefault`` (the first
        stored value wins); on a bounded cache the insert may push the
        least recently used entry out, counted as an eviction.
        """
        stored = self._cache.setdefault(key, cost)
        if self._max_entries is not None:
            while len(self._cache) > self._max_entries:
                self._cache.popitem(last=False)  # type: ignore[call-arg]
                self._statistics.evictions += 1
        return stored

    def _touch(self, key: tuple) -> None:
        """Refresh one key's recency (caller holds the lock; bounded
        caches only — a no-op costs a branch the unbounded hot path
        never takes because call sites gate on ``_max_entries``)."""
        self._cache.move_to_end(key)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def statistics(self) -> WhatIfStatistics:
        """Call counters (mutated in place as the optimizer is used)."""
        return self._statistics

    @property
    def calls(self) -> int:
        """Number of backend (non-cached) what-if calls so far."""
        return self._statistics.calls

    @property
    def supports_batch(self) -> bool:
        """Whether the backend can price whole cost columns per call.

        True when the source exposes ``query_costs`` (the compiled
        kernel, or a resilient wrapper around it).  Callers use this to
        decide whether pre-warming whole columns is cheap; the batch
        methods below work either way (they fall back to per-pair
        lookups on scalar backends).
        """
        return getattr(self._source, "query_costs", None) is not None

    @property
    def supports_pair_batch(self) -> bool:
        """Whether the backend prices arbitrary pair lists per call.

        True when the source exposes ``pair_costs`` (the compiled
        kernel's whole-table entry point, or a resilient wrapper around
        it).  :meth:`pair_costs` works either way — it degrades to
        per-pair lookups on backends without it."""
        return getattr(self._source, "pair_costs", None) is not None

    @property
    def parallel_safe(self) -> bool:
        """Whether the facade may be shared by evaluation workers.

        The facade itself is internally locked; thread compatibility is
        therefore decided by the backend (the seeded fault injector is
        order-dependent and opts out via ``parallel_safe = False``;
        a missing attribute means safe).
        """
        return getattr(self._source, "parallel_safe", True)

    def reset_statistics(self) -> None:
        """Zero the call counters (the cache itself is kept)."""
        with self._lock:
            self._statistics.reset()

    def clear_cache(
        self, queries: Iterable[Query] | None = None
    ) -> int:
        """Drop cached costs; global by default, scoped when given queries.

        Without arguments (the single-tenant path), all cached costs are
        dropped *and* the counters are zeroed, atomically.  Counters and
        cache must move together there: a cleared cache with surviving
        ``cache_hits`` would report an inflated ``hit_rate`` for the
        rest of the run (hits that can no longer be explained by any
        cached entry).  Callers that want counters across epochs should
        capture ``statistics.copy()`` before clearing.

        With ``queries``, only entries belonging to those queries (by
        content key — cost, maintenance, and multi-index entries alike)
        are dropped and the counters are left untouched: a multi-tenant
        facade shared across workload registrations must be able to
        invalidate one workload's entries on update without wiping the
        statistics — or the cached answers — of unrelated concurrent
        requests.  The counters then describe facade *usage*, not cache
        *contents*; scoped invalidation may retire entries whose past
        hits remain counted.

        Returns the number of cache entries removed.
        """
        if queries is None:
            with self._lock:
                removed = len(self._cache) + len(self._maintenance_cache)
                self._cache.clear()
                self._maintenance_cache.clear()
                self._statistics.reset()
            return removed
        scope = {query.cache_key for query in queries}
        if not scope:
            return 0
        with self._lock:
            # All cache keys lead with the query content key, so one
            # membership filter covers cost, maintenance, and
            # multi-index entries uniformly.
            before = len(self._cache) + len(self._maintenance_cache)
            survivors = {
                key: value
                for key, value in self._cache.items()
                if key[0] not in scope
            }
            # Rebuilding must preserve the bounded variant's container
            # (and its recency order, which the comprehension keeps).
            self._cache = (
                OrderedDict(survivors)
                if self._max_entries is not None
                else survivors
            )
            self._maintenance_cache = {
                key: value
                for key, value in self._maintenance_cache.items()
                if key[0] not in scope
            }
            return before - (
                len(self._cache) + len(self._maintenance_cache)
            )

    def export_cache(self, queries: Iterable[Query]) -> dict:
        """JSON-safe snapshot of the cache entries owned by ``queries``.

        Entries are keyed by the *position* of the owning query within
        ``queries`` (not by its content key, which contains frozensets
        and enums), plus the index part of the cache key encoded as
        nested lists: ``None`` for the sequential baseline, a flat
        attribute list for single-index costs, a list of attribute
        lists for multi-index (Remark 2) entries.  Rows are sorted so
        identical cache state serializes to identical bytes.
        Counters are *not* exported — they describe facade usage in
        this process, not cache contents.
        """
        positions: dict[tuple, int] = {}
        for position, query in enumerate(queries):
            positions.setdefault(query.cache_key, position)

        def rows(cache: dict[tuple, float]) -> list:
            selected = []
            for (content_key, tail), value in cache.items():
                position = positions.get(content_key)
                if position is None:
                    continue
                selected.append(
                    [position, _encode_index_key(tail), float(value)]
                )
            selected.sort(
                key=lambda row: (row[0], repr(row[1]))
            )
            return selected

        with self._lock:
            return {
                "cost": rows(self._cache),
                "maintenance": rows(self._maintenance_cache),
            }

    def import_cache(
        self, queries: Sequence[Query], entries: dict
    ) -> int:
        """Reinstall entries captured by :meth:`export_cache`.

        ``queries`` must be the same sequence (same order) the export
        was scoped to.  Existing entries win over imported ones
        (``setdefault``), counters are untouched, and malformed rows
        are skipped rather than raised — imports come from snapshots,
        which are allowed to be wrong but never fatal.  Returns the
        number of entries installed.
        """
        queries = tuple(queries)
        installed = 0

        def load(cache: dict[tuple, float], rows) -> int:
            count = 0
            for row in rows:
                try:
                    position, tail, value = row
                    position = int(position)
                    if not 0 <= position < len(queries):
                        continue
                    query = queries[position]
                    key = (query.cache_key, _decode_index_key(tail))
                    cost = float(value)
                except (IndexError, TypeError, ValueError):
                    continue
                if key not in cache:
                    cache[key] = cost
                    count += 1
            return count

        with self._lock:
            installed += load(self._cache, entries.get("cost", ()))
            installed += load(
                self._maintenance_cache, entries.get("maintenance", ())
            )
            if self._max_entries is not None:
                while len(self._cache) > self._max_entries:
                    self._cache.popitem(last=False)  # type: ignore[call-arg]
                    self._statistics.evictions += 1
        return installed

    # ------------------------------------------------------------------
    # Cost queries
    # ------------------------------------------------------------------

    def sequential_cost(self, query: Query) -> float:
        """``f_j(0)``: query cost without any index."""
        return self._lookup(query, None)

    def index_cost(self, query: Query, index: Index) -> float:
        """``f_j(k)``: query cost with exactly one index.

        Inapplicable indexes price at the sequential cost; the facade
        short-circuits that case without a backend call, mirroring the
        paper's observation that only queries an index *could* affect
        need evaluation.
        """
        if not index.is_applicable_to(query):
            return self.sequential_cost(query)
        return self._lookup(query, index)

    def sequential_costs(self, queries: Sequence[Query]) -> np.ndarray:
        """``f_j(0)`` for a whole column of queries.

        One backend batch call prices every uncached query; accounting
        matches the per-pair path exactly (first uncached occurrence of
        a content key counts as a call, duplicates and cached entries as
        cache hits).
        """
        return self._lookup_batch(tuple(queries), None)

    def index_costs(
        self, queries: Sequence[Query], index: Index
    ) -> np.ndarray:
        """``f_j(k)`` for a whole column of queries under one index.

        Semantics per query are identical to :meth:`index_cost`:
        inapplicable pairs price at the sequential baseline (served from
        the sequential column, never a backend index call).
        """
        queries = tuple(queries)
        applicable_positions: list[int] = []
        applicable: list[Query] = []
        other_positions: list[int] = []
        other: list[Query] = []
        for position, query in enumerate(queries):
            if index.is_applicable_to(query):
                applicable_positions.append(position)
                applicable.append(query)
            else:
                other_positions.append(position)
                other.append(query)
        results = np.empty(len(queries), dtype=np.float64)
        if applicable:
            results[applicable_positions] = self._lookup_batch(
                tuple(applicable), index
            )
        if other:
            results[other_positions] = self._lookup_batch(
                tuple(other), None
            )
        return results

    def pair_costs(
        self, pairs: Sequence[tuple[Query, Index | None]]
    ) -> np.ndarray:
        """Cost of arbitrary ``(query, index_or_None)`` pairs at once.

        The whole-table lookup: callers that need many candidate
        columns (``cost_table``, column pre-warming) flatten them into
        one pair list so a pair-capable backend prices everything in a
        single sweep.  Pairs are passed through as given — callers are
        expected to pre-filter inapplicable pairs the way
        :meth:`index_cost` would (pair them with ``None`` instead).
        Accounting matches the per-pair path exactly.
        """
        pairs = tuple(pairs)
        backend_pairs = getattr(self._source, "pair_costs", None)
        if backend_pairs is None:
            return np.array(
                [self._lookup(query, index) for query, index in pairs],
                dtype=np.float64,
            )
        keys = [
            (query.cache_key, None if index is None else index.attributes)
            for query, index in pairs
        ]
        with self._lock:
            cold = not self._cache
            if not cold:
                cache_get = self._cache.get
                results: list[float | None] = [
                    cache_get(key) for key in keys
                ]
                miss_count = results.count(None)
                self._statistics.cache_hits += len(pairs) - miss_count
                if (
                    self._max_entries is not None
                    and miss_count != len(pairs)
                ):
                    touch = self._cache.move_to_end  # type: ignore[attr-defined]
                    for key, value in zip(keys, results):
                        if value is not None:
                            touch(key)
        if cold:
            # Cold cache (the whole-table sweep case): every key
            # misses, so skip the cached-value scan entirely.
            results = [None] * len(pairs)
            miss_count = len(pairs)
        if miss_count:
            # Content-dedup the misses: one backend evaluation per
            # distinct key, cache hits for the duplicates — the same
            # totals the per-pair path would count.
            missing: dict[tuple, tuple[Query, Index | None]] = {}
            if cold:
                for key, pair in zip(keys, pairs):
                    if key not in missing:
                        missing[key] = pair
            else:
                for position, value in enumerate(results):
                    if value is None:
                        key = keys[position]
                        if key not in missing:
                            missing[key] = pairs[position]
            costs = backend_pairs(tuple(missing.values())).tolist()
            with self._lock:
                if self._max_entries is None:
                    cache_setdefault = self._cache.setdefault
                    costmap = {
                        key: cache_setdefault(key, cost)
                        for key, cost in zip(missing, costs)
                    }
                else:
                    admit = self._admit
                    costmap = {
                        key: admit(key, cost)
                        for key, cost in zip(missing, costs)
                    }
                statistics = self._statistics
                statistics.calls += len(missing)
                statistics.cache_hits += miss_count - len(missing)
            if cold:
                costmap_get = costmap.__getitem__
                results = [costmap_get(key) for key in keys]
            else:
                for position, value in enumerate(results):
                    if value is None:
                        results[position] = costmap[keys[position]]
        return np.array(results, dtype=np.float64)

    def maintenance_cost(self, query: Query, index: Index) -> float:
        """Per-execution maintenance of ``index`` for a write query.

        Zero for SELECTs and for backends without a maintenance model.
        Maintenance is derived from statistics, not from the what-if
        optimizer, so it is cached but never counted as a backend call.
        """
        if query.is_select:
            return 0.0
        key = (query.cache_key, index.attributes)
        with self._lock:
            cached = self._maintenance_cache.get(key)
        if cached is not None:
            return cached
        backend = getattr(self._source, "maintenance_cost", None)
        cost = 0.0 if backend is None else backend(query, index)
        with self._lock:
            return self._maintenance_cache.setdefault(key, cost)

    def configuration_cost(
        self, query: Query, configuration: IndexConfiguration | Iterable[Index]
    ) -> float:
        """``f_j(I*)`` in the one-index-per-query setting (Example 1 (i)).

        Write queries additionally pay maintenance for *every* selected
        index they touch — the additive penalty that makes over-indexing
        a real trade-off.
        """
        indexes = tuple(configuration)
        best = self.sequential_cost(query)
        for index in indexes:
            if index.is_applicable_to(query):
                best = min(best, self._lookup(query, index))
        if not query.is_select:
            best += sum(
                self.maintenance_cost(query, index) for index in indexes
            )
        return best

    def workload_cost(
        self,
        workload: Workload,
        configuration: IndexConfiguration | Iterable[Index],
    ) -> float:
        """``F(I*) = Σ_j b_j · f_j(I*)`` (Eq. 1)."""
        indexes = tuple(configuration)
        return sum(
            query.frequency * self.configuration_cost(query, indexes)
            for query in workload
        )

    def multi_configuration_cost(
        self, query: Query, configuration: IndexConfiguration | Iterable[Index]
    ) -> float:
        """``f_j(I*)`` when multiple indexes may serve one query.

        The context-based evaluation of Remark 2 / Appendix B(i) steps
        1–4: position lists of several indexes are intersected.  Only
        available with backends exposing ``multi_index_cost`` (the
        analytic model); cached per (query, applicable-index-set).
        Write queries pay the same additive maintenance as in
        :meth:`configuration_cost`.
        """
        backend = getattr(self._source, "multi_index_cost", None)
        if backend is None:
            return self.configuration_cost(query, configuration)
        applicable = tuple(
            sorted(
                (
                    index
                    for index in configuration
                    if index.table_name == query.table_name
                ),
                key=lambda index: (index.table_name, index.attributes),
            )
        )
        key = (
            query.cache_key,
            tuple(index.attributes for index in applicable),
        )
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._statistics.cache_hits += 1
                if self._max_entries is not None:
                    self._touch(key)
        if cached is None:
            cached = backend(query, applicable)
            with self._lock:
                self._statistics.calls += 1
                cached = self._admit(key, cached)
        cost = cached
        if not query.is_select:
            cost += sum(
                self.maintenance_cost(query, index)
                for index in configuration
            )
        return cost

    def multi_workload_cost(
        self,
        workload: Workload,
        configuration: IndexConfiguration | Iterable[Index],
    ) -> float:
        """``F(I*)`` under multi-index-per-query semantics."""
        indexes = tuple(configuration)
        return sum(
            query.frequency
            * self.multi_configuration_cost(query, indexes)
            for query in workload
        )

    def cost_table(
        self, workload: Workload, candidates: Iterable[Index]
    ) -> dict[tuple[int, Index | None], float]:
        """Pre-compute ``f_j(k)`` for every query × applicable candidate.

        This is what two-step approaches (CoPhy, H4, H5) must do before
        their selection phase — the call count it triggers is the
        ``≈ Q·q̄·|I|/N`` term of Section III-A.  Returns a mapping from
        ``(query_id, index_or_None)`` to cost, including the sequential
        baseline per query.
        """
        table: dict[tuple[int, Index | None], float] = {}
        candidate_list = tuple(candidates)
        if self.supports_pair_batch:
            # Whole-table pair pricing: the sequential column plus
            # every applicable (query, candidate) pair flatten into one
            # backend sweep.  Same pair set, same cache keys, same
            # call/hit totals as the loops below.
            queries = tuple(workload)
            pairs: list[tuple[Query, Index | None]] = [
                (query, None) for query in queries
            ]
            # Inverted applicability map: attribute ids are owned by
            # exactly one table, so "leading attribute in the query" is
            # precisely Index.is_applicable_to — without the candidate
            # × query scan.
            by_leading: dict[int, list[Query]] = {}
            for query in queries:
                for attribute_id in query.attributes:
                    by_leading.setdefault(attribute_id, []).append(query)
            for index in candidate_list:
                column = by_leading.get(index.leading_attribute)
                if column:
                    pairs += [(query, index) for query in column]
            return {
                (query.query_id, index): cost
                for (query, index), cost in zip(
                    pairs, self.pair_costs(pairs).tolist()
                )
            }
        if self.supports_batch:
            # Candidate-major batch pricing: one backend call per
            # candidate column.  Same pair set, same cache keys, same
            # call/hit totals as the per-pair loop below — just batched.
            queries = tuple(workload)
            for query, cost in zip(
                queries, self._lookup_batch(queries, None)
            ):
                table[(query.query_id, None)] = float(cost)
            for index in candidate_list:
                applicable = tuple(
                    query
                    for query in queries
                    if index.is_applicable_to(query)
                )
                if not applicable:
                    continue
                for query, cost in zip(
                    applicable, self._lookup_batch(applicable, index)
                ):
                    table[(query.query_id, index)] = float(cost)
            return table
        for query in workload:
            table[(query.query_id, None)] = self.sequential_cost(query)
            for index in candidate_list:
                if index.is_applicable_to(query):
                    table[(query.query_id, index)] = self._lookup(
                        query, index
                    )
        return table

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _lookup(self, query: Query, index: Index | None) -> float:
        key = (
            query.cache_key,
            None if index is None else index.attributes,
        )
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._statistics.cache_hits += 1
                if self._max_entries is not None:
                    self._touch(key)
                return cached
        # The backend call runs unlocked (it may be an expensive what-if
        # round trip); a racing worker that also misses counts as a call
        # too — both did hit the backend — and the first stored value
        # wins (backends are deterministic, so they agree anyway).
        cost = self._source.query_cost(query, index)
        with self._lock:
            self._statistics.calls += 1
            return self._admit(key, cost)

    def _lookup_batch(
        self, queries: tuple[Query, ...], index: Index | None
    ) -> np.ndarray:
        """Cached column lookup with per-pair-identical accounting.

        Cached keys count as cache hits; content-duplicate uncached
        queries trigger one backend evaluation (a call) and hits for
        the duplicates — exactly what the per-pair path would count.
        Falls back to per-pair lookups on batch-less backends.
        """
        backend_batch = getattr(self._source, "query_costs", None)
        if backend_batch is None:
            return np.array(
                [self._lookup(query, index) for query in queries],
                dtype=np.float64,
            )
        results: list[float | None] = [None] * len(queries)
        missing: dict[tuple, tuple[Query, list[int]]] = {}
        index_key = None if index is None else index.attributes
        with self._lock:
            for position, query in enumerate(queries):
                key = (query.cache_key, index_key)
                cached = self._cache.get(key)
                if cached is not None:
                    self._statistics.cache_hits += 1
                    if self._max_entries is not None:
                        self._touch(key)
                    results[position] = cached
                    continue
                entry = missing.get(key)
                if entry is None:
                    missing[key] = (query, [position])
                else:
                    entry[1].append(position)
        if missing:
            # The batch backend call runs unlocked, like _lookup's.
            subset = tuple(entry[0] for entry in missing.values())
            costs = backend_batch(subset, index)
            with self._lock:
                for (key, (_, positions)), cost in zip(
                    missing.items(), costs
                ):
                    self._statistics.calls += 1
                    self._statistics.cache_hits += len(positions) - 1
                    stored = self._admit(key, float(cost))
                    for position in positions:
                        results[position] = stored
        return np.array(results, dtype=np.float64)
