"""Cost substrate: analytic cost model, what-if facade, IIA analysis."""

from repro.cost.interaction import InteractionReport, pairwise_interaction
from repro.cost.model import CostModel
from repro.cost.whatif import (
    AnalyticalCostSource,
    CostSource,
    WhatIfOptimizer,
    WhatIfStatistics,
)

__all__ = [
    "AnalyticalCostSource",
    "CostModel",
    "CostSource",
    "InteractionReport",
    "pairwise_interaction",
    "WhatIfOptimizer",
    "WhatIfStatistics",
]
