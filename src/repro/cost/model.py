"""Analytic scan cost model (paper Appendix B(i)).

Costs are expressed as memory traffic in bytes, mirroring a vector-at-a-
time columnar execution model.  For a query ``q_j`` evaluated with an
index ``k`` whose usable prefix is ``U = U(q_j, k)``:

* **index access** over the prefix::

      log2(n) + sum_{i in U} a_i * log2(d_i) + 4 * n * prod_{i in U} s_i

  — a binary search descent, per-attribute comparisons within runs, and a
  4-byte position-list entry per qualifying row (see DESIGN.md §3.1 for
  why the output term carries the row count ``n``),

* **residual scan** of the remaining attributes ``q_j \\ U``, ordered by
  ascending selectivity (most selective first): each attribute reads
  ``a_i`` bytes per still-qualifying row and writes a 4-byte position-list
  entry per surviving row, with the qualifying fraction shrinking
  multiplicatively.

``f_j(0)`` is the residual scan with an empty prefix.  The "one index
only" variant of Example 1 (i) takes the best single index; the
multi-index variant implements Appendix B(i) steps 1–4, greedily applying
further indexes to the remaining attributes while beneficial.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.exceptions import CostModelError
from repro.indexes.index import Index
from repro.workload.query import Query, QueryKind
from repro.workload.schema import Schema

__all__ = ["CostModel"]

_POSITION_LIST_ENTRY_BYTES = 4


class CostModel:
    """The reproducible exemplary cost model of Appendix B.

    Parameters
    ----------
    schema:
        Supplies row counts ``n``, distinct counts ``d_i``, value sizes
        ``a_i``, and selectivities ``s_i``.
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        # Residual-scan orderings are pure functions of the attribute
        # set (selectivities are fixed per schema), and the selection
        # algorithms price the same query against many candidates —
        # memoizing by frozenset skips the per-call re-sort.
        self._order_cache: dict[frozenset, tuple[int, ...]] = {}

    @property
    def schema(self) -> Schema:
        """The schema this model evaluates against."""
        return self._schema

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------

    def _ordered_by_selectivity(
        self, attribute_ids: Iterable[int]
    ) -> tuple[int, ...]:
        """Attributes sorted ascending by ``(selectivity, id)``.

        The key is a total order, so the result is independent of the
        input ordering and safe to memoize by attribute *set*.
        """
        key = frozenset(attribute_ids)
        ordered = self._order_cache.get(key)
        if ordered is None:
            schema = self._schema
            ordered = tuple(
                sorted(
                    key,
                    key=lambda attribute_id: (
                        schema.selectivity(attribute_id),
                        attribute_id,
                    ),
                )
            )
            self._order_cache[key] = ordered
        return ordered

    def _residual_scan_cost(
        self,
        row_count: int,
        qualifying_fraction: float,
        remaining_attribute_ids: Iterable[int],
    ) -> float:
        """Filtered sequential scan over the remaining attributes.

        ``qualifying_fraction`` is the share of the table's rows still
        qualifying before the scan starts (1.0 when no index was used).
        """
        schema = self._schema
        ordered = self._ordered_by_selectivity(remaining_attribute_ids)
        cost = 0.0
        fraction = qualifying_fraction
        for attribute_id in ordered:
            rows_scanned = row_count * fraction
            cost += rows_scanned * schema.value_size(attribute_id)
            fraction *= schema.selectivity(attribute_id)
            cost += _POSITION_LIST_ENTRY_BYTES * row_count * fraction
        return cost

    def _index_access_cost(
        self, row_count: int, prefix: Sequence[int]
    ) -> tuple[float, float]:
        """Index probe over a usable prefix.

        Returns ``(cost, qualifying_fraction)`` where the fraction is the
        product of the prefix attributes' selectivities.
        """
        if not prefix:
            raise CostModelError("index access needs a non-empty prefix")
        schema = self._schema
        cost = math.log2(row_count) if row_count > 1 else 1.0
        fraction = 1.0
        for attribute_id in prefix:
            cost += schema.value_size(attribute_id) * math.log2(
                max(schema.distinct_values(attribute_id), 2)
            )
            fraction *= schema.selectivity(attribute_id)
        cost += _POSITION_LIST_ENTRY_BYTES * row_count * fraction
        return cost, fraction

    # ------------------------------------------------------------------
    # Per-query costs
    # ------------------------------------------------------------------

    def sequential_cost(self, query: Query) -> float:
        """``f_j(0)``: cost of evaluating the query without any index.

        For UPDATEs this is the cost of *locating* the affected rows (no
        maintenance — there are no indexes).  INSERTs pay a constant
        append of their attribute values.
        """
        row_count = self._schema.table(query.table_name).row_count
        if query.kind is QueryKind.INSERT:
            return float(
                sum(
                    self._schema.value_size(attribute_id)
                    for attribute_id in query.attributes
                )
            )
        return self._residual_scan_cost(row_count, 1.0, query.attributes)

    def maintenance_cost(self, query: Query, index: Index) -> float:
        """Per-execution cost of keeping ``index`` consistent.

        UPDATEs pay for every index that contains a written attribute:
        locate the entry (binary search), rewrite the value columns, and
        touch the position list.  INSERTs pay the same for *every* index
        of the table.  SELECTs pay nothing.
        """
        if query.kind is QueryKind.SELECT:
            return 0.0
        if index.table_name != query.table_name:
            return 0.0
        if query.kind is QueryKind.UPDATE and not (
            index.attribute_set & query.attributes
        ):
            return 0.0
        row_count = self._schema.table(query.table_name).row_count
        locate = math.log2(row_count) if row_count > 1 else 1.0
        rewrite = float(
            sum(
                self._schema.value_size(attribute_id)
                for attribute_id in index.attributes
            )
        )
        position_entry = math.ceil(math.log2(max(row_count, 2))) / 8
        return locate + rewrite + position_entry

    def index_cost(self, query: Query, index: Index) -> float:
        """``f_j(k)``: cost of evaluating the query with exactly one index.

        The optimizer picks the cheapest plan the index enables: any
        *truncation* of the usable prefix may be descended, with the
        remaining attributes scanned sequentially — descending one more
        index attribute is not always cheaper than filtering the few
        surviving rows.  Never exceeds :meth:`sequential_cost` (a harmful
        index is simply not used), which keeps ``f_j`` monotone under
        index extension: every plan of ``k`` is also a plan of ``k·i``.
        """
        if (
            index.table_name != query.table_name
            or query.kind is QueryKind.INSERT
        ):
            return self.sequential_cost(query)
        prefix = index.usable_prefix(query)
        best = self.sequential_cost(query)
        if not prefix:
            return best
        row_count = self._schema.table(query.table_name).row_count
        for length in range(1, len(prefix) + 1):
            truncated = prefix[:length]
            access_cost, fraction = self._index_access_cost(
                row_count, truncated
            )
            remaining = query.attributes - frozenset(truncated)
            cost = access_cost + self._residual_scan_cost(
                row_count, fraction, remaining
            )
            best = min(best, cost)
        return best

    def best_single_index_cost(
        self, query: Query, indexes: Iterable[Index]
    ) -> float:
        """``f_j(I*) = min(f_j(0), min_{k in I*} f_j(k))``.

        The "one index only" setting of Example 1 (i), used for the
        CoPhy comparison experiments.
        """
        best = self.sequential_cost(query)
        for index in indexes:
            if index.is_applicable_to(query):
                best = min(best, self.index_cost(query, index))
        return best

    def multi_index_cost(
        self, query: Query, indexes: Iterable[Index]
    ) -> float:
        """Appendix B(i) steps 1–4: greedy multi-index evaluation.

        Repeatedly picks the (index, prefix-truncation) pair that most
        reduces the estimated total cost: the pair's index-access cost is
        charged, its covered attributes leave the remaining set, and
        every applied index multiplies the qualifying fraction (position
        lists are intersected).  Further indexes are applied only while
        they beat scanning their attributes sequentially at the current
        fraction; whatever remains is scanned (Appendix B(i) step 5).
        """
        if query.kind is QueryKind.INSERT:
            return self.sequential_cost(query)
        row_count = self._schema.table(query.table_name).row_count
        available = [
            index
            for index in indexes
            if index.table_name == query.table_name
        ]
        remaining = set(query.attributes)
        fraction = 1.0
        total = 0.0
        used: set[Index] = set()
        while remaining:
            baseline = self._residual_scan_cost(
                row_count, fraction, remaining
            )
            best_choice: (
                tuple[float, tuple[int, ...], Index] | None
            ) = None
            for index in available:
                if index in used:
                    continue
                prefix = _usable_prefix_over(index, remaining)
                for length in range(1, len(prefix) + 1):
                    truncated = prefix[:length]
                    access_cost, covered_fraction = (
                        self._index_access_cost(row_count, truncated)
                    )
                    rest = remaining - set(truncated)
                    estimate = access_cost + self._residual_scan_cost(
                        row_count, fraction * covered_fraction, rest
                    )
                    if best_choice is None or estimate < best_choice[0]:
                        best_choice = (estimate, truncated, index)
            if best_choice is None or best_choice[0] >= baseline:
                break
            _, truncated, chosen = best_choice
            access_cost, covered_fraction = self._index_access_cost(
                row_count, truncated
            )
            total += access_cost
            fraction *= covered_fraction
            remaining -= set(truncated)
            used.add(chosen)
        total += self._residual_scan_cost(row_count, fraction, remaining)
        return total


def _usable_prefix_over(
    index: Index, attribute_ids: set[int]
) -> tuple[int, ...]:
    """Longest index prefix contained in an arbitrary attribute set."""
    usable: list[int] = []
    for attribute_id in index.attributes:
        if attribute_id not in attribute_ids:
            break
        usable.append(attribute_id)
    return tuple(usable)
