"""Compiled, vectorized cost kernel: batch Appendix B evaluation.

The scalar :class:`~repro.cost.model.CostModel` walks the Appendix B(i)
formulas query by query in pure Python — after the incremental
evaluation engine trimmed the *number* of what-if calls, that per-call
interpretation is the remaining hot path on enterprise-scale workloads
(and the whole cost of CoPhy-style ``cost_table`` pre-computation).
This module compiles a workload once into flat numpy arrays and then
prices *whole columns of queries per candidate* as batched array
expressions:

* :class:`CompiledWorkload` — per-query statistics packed into padded
  ``(Q, P)`` arrays: each row holds the query's attributes sorted by
  ascending ``(selectivity, id)`` (the residual-scan order), their
  selectivities ``s_i``, value sizes ``a_i``, and a validity mask; per
  query the row count ``n``, ``log2(n)``, the table, the kind, and the
  precomputed sequential baseline ``f_j(0)``.
* :class:`VectorizedCostSource` — a drop-in
  :class:`~repro.cost.whatif.CostSource` (``parallel_safe = True``)
  that evaluates ``f_j(0)``/``f_j(k)`` for many queries per call via
  cumulative-product qualifying fractions, per-prefix log terms, and
  position-list output terms — no per-row Python loops.  Single-pair
  ``query_cost`` calls are served from the same compiled rows, so a
  query always prices identically whether reached via a batch or a
  scalar entry point.

**Equivalence contract.**  For every ``(query, index)`` pair the
vectorized cost matches the scalar :class:`CostModel` within ``1e-9``
relative tolerance (array reductions associate float additions
differently than the scalar accumulation loops; the formulas are
identical).  Maintenance and multi-index costs delegate to the scalar
model and are bit-identical.  See ``docs/COST_MODEL.md`` ("Compiled
kernel") for the array layouts and the tolerance argument.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from itertools import groupby
from typing import Iterable, Sequence

import numpy as np

from repro.cost.model import CostModel
from repro.indexes.index import Index
from repro.workload.query import Query, QueryKind
from repro.workload.schema import Schema

__all__ = [
    "CompiledWorkload",
    "KernelStatistics",
    "VectorizedCostSource",
]

_POSITION_LIST_ENTRY_BYTES = 4.0


@dataclass
class KernelStatistics:
    """Counters of compiled-kernel usage (telemetry-bridgeable).

    ``batch_calls``/``batch_pairs`` count invocations of the batch
    entry points and the ``(query, index)`` pairs they priced;
    ``scalar_calls`` counts single-pair ``query_cost`` calls that fell
    through to the kernel one row at a time (ideally near zero once the
    facade routes everything through batches).
    """

    compiled_workloads: int = 0
    compiled_queries: int = 0
    compile_seconds: float = 0.0
    batch_calls: int = 0
    batch_pairs: int = 0
    scalar_calls: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average pairs priced per batch call (0 when unused)."""
        if not self.batch_calls:
            return 0.0
        return self.batch_pairs / self.batch_calls

    def publish(self, registry, prefix: str = "kernel") -> None:
        """Bridge the counters into a telemetry
        :class:`~repro.telemetry.metrics.MetricsRegistry` as gauges
        (``kernel.compiled_workloads``, ``kernel.compiled_queries``,
        ``kernel.compile_seconds``, ``kernel.batch_calls``,
        ``kernel.batch_pairs``, ``kernel.mean_batch_size``,
        ``kernel.scalar_calls``)."""
        registry.gauge(f"{prefix}.compiled_workloads").set(
            self.compiled_workloads
        )
        registry.gauge(f"{prefix}.compiled_queries").set(
            self.compiled_queries
        )
        registry.gauge(f"{prefix}.compile_seconds").set(
            self.compile_seconds
        )
        registry.gauge(f"{prefix}.batch_calls").set(self.batch_calls)
        registry.gauge(f"{prefix}.batch_pairs").set(self.batch_pairs)
        registry.gauge(f"{prefix}.mean_batch_size").set(
            self.mean_batch_size
        )
        registry.gauge(f"{prefix}.scalar_calls").set(self.scalar_calls)


@dataclass(frozen=True)
class CompiledWorkload:
    """Flat numpy packing of per-query schema statistics.

    All 2-D arrays are ``(query_count, padded_width)`` with one row per
    query; rows hold the query's attributes in residual-scan order
    (ascending ``(selectivity, id)``) and are padded to the widest
    query in the pack (``attribute_ids`` with ``-1``, ``selectivity``
    with ``1.0``, ``value_size`` with ``0.0``, ``valid`` with
    ``False``) so padded columns are arithmetic no-ops.
    """

    attribute_ids: np.ndarray
    """``(Q, P)`` int64 — global attribute ids, ``-1`` padding."""
    selectivity: np.ndarray
    """``(Q, P)`` float64 — ``s_i``, ``1.0`` padding."""
    value_size: np.ndarray
    """``(Q, P)`` float64 — ``a_i`` in bytes, ``0.0`` padding."""
    valid: np.ndarray
    """``(Q, P)`` bool — which entries are real attributes."""
    row_count: np.ndarray
    """``(Q,)`` float64 — table row count ``n`` per query."""
    log2_rows: np.ndarray
    """``(Q,)`` float64 — ``log2(n)`` (``1.0`` for ``n <= 1``)."""
    table_code: np.ndarray
    """``(Q,)`` int64 — dense per-source table identifier."""
    is_insert: np.ndarray
    """``(Q,)`` bool — INSERT queries (no index ever helps)."""
    sequential: np.ndarray
    """``(Q,)`` float64 — precomputed ``f_j(0)`` baselines."""

    @property
    def query_count(self) -> int:
        """Number of packed queries ``Q``."""
        return self.attribute_ids.shape[0]

    @property
    def padded_width(self) -> int:
        """Common padded attribute-list width ``P``."""
        return self.attribute_ids.shape[1]


def _query_key(query: Query) -> tuple:
    """Content identity of a query (costs ignore id and frequency)."""
    return query.cache_key


def _residual_costs(
    row_count: np.ndarray,
    selectivity: np.ndarray,
    value_size: np.ndarray,
    mask: np.ndarray,
    qualifying_fraction: float | np.ndarray,
    weight: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorized filtered sequential scan over masked attributes.

    Mirrors ``CostModel._residual_scan_cost``: scanning attribute ``p``
    reads ``a_p`` bytes per still-qualifying row and writes a 4-byte
    position-list entry per surviving row, so its contribution is
    ``n · f_before · (a_p + 4·s_p)`` with ``f_before`` the exclusive
    cumulative product of the preceding masked selectivities.  Callers
    looping over truncation lengths may pass the loop-invariant
    per-attribute ``weight`` (``a_p + 4·s_p``) precomputed.
    """
    effective = np.where(mask, selectivity, 1.0)
    cumulative = np.cumprod(effective, axis=1)
    before = np.empty_like(cumulative)
    before[:, 0] = 1.0
    before[:, 1:] = cumulative[:, :-1]
    if weight is None:
        weight = value_size + _POSITION_LIST_ENTRY_BYTES * selectivity
    contribution = np.where(mask, before * weight, 0.0)
    return row_count * qualifying_fraction * contribution.sum(axis=1)


class VectorizedCostSource:
    """Batch-capable cost source backed by compiled workload packs.

    Implements the :class:`~repro.cost.whatif.CostSource` protocol plus
    the batch extension the facade feature-detects
    (``sequential_costs`` / ``query_costs`` / ``maintenance_costs``).
    Queries are compiled on first sight and permanently bound to one
    pack row, so repeated pricing of the same query — batched or not,
    whole-workload or subset — is deterministic down to the bit.

    Maintenance and context-based multi-index costs delegate to the
    scalar :class:`~repro.cost.model.CostModel` (they are cheap, cached
    by the facade, and the greedy multi-index loop does not vectorize),
    keeping those paths bit-identical to the scalar backend.
    """

    parallel_safe = True
    """The kernel is pure and internally locked around compilation, so
    evaluation workers may share one instance."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._model = CostModel(schema)
        self._table_codes = {
            table.name: code
            for code, table in enumerate(schema.tables)
        }
        # Per-attribute-id statistic tables (index 0..max id) so prefix
        # tabulation gathers instead of calling schema methods.  Values
        # are the exact floats the scalar model uses: selectivity from
        # Attribute.selectivity, the log term via math.log2.
        size = max(schema.attribute_ids) + 1
        self._sel_by_id = np.ones(size, dtype=np.float64)
        self._size_log2d_by_id = np.zeros(size, dtype=np.float64)
        for attribute in schema.iter_attributes():
            self._sel_by_id[attribute.id] = attribute.selectivity
            self._size_log2d_by_id[attribute.id] = (
                attribute.value_size
                * math.log2(max(attribute.distinct_values, 2))
            )
        # Query content key -> (pack, row).  First registration wins so
        # every later evaluation reuses the exact same packed row.
        self._rows: dict[tuple, tuple[CompiledWorkload, int]] = {}
        # Per-object shortcut over _rows: pair sweeps look the same
        # query objects up thousands of times, and a dict keyed by
        # id(query) (C-hashed int, no Python __hash__ call) skips
        # rebuilding content keys.  _memo_refs keeps every registered
        # query alive so its id can never be recycled.
        self._placement_memo: dict[int, tuple[CompiledWorkload, int]] = {}
        self._memo_refs: list[Query] = []
        self._order_cache: dict[frozenset, tuple[int, ...]] = {}
        # Index -> per-truncation (sum of a_i*log2(d_i), prod of s_i),
        # accumulated sequentially exactly like the scalar model.
        self._prefix_cache: dict[
            Index, tuple[tuple[float, ...], tuple[float, ...]]
        ] = {}
        self.statistics = KernelStatistics()
        # Guards pack compilation/registration; numpy evaluation itself
        # is pure and runs unlocked.
        self._lock = threading.Lock()

    @property
    def schema(self) -> Schema:
        """The schema this kernel compiles against."""
        return self._schema

    # ------------------------------------------------------------------
    # CostSource protocol (single pair)
    # ------------------------------------------------------------------

    def query_cost(self, query: Query, index: Index | None) -> float:
        """``f_j(k)`` (or ``f_j(0)``) for one pair, from the pack row."""
        self.statistics.scalar_calls += 1
        pack, row = self._placements((query,))[0]
        if index is None:
            return float(pack.sequential[row])
        rows = np.array([row], dtype=np.intp)
        return float(self._index_costs_on(pack, rows, index)[0])

    def maintenance_cost(self, query: Query, index: Index) -> float:
        """Per-execution maintenance (scalar model, bit-identical)."""
        return self._model.maintenance_cost(query, index)

    def multi_index_cost(
        self, query: Query, indexes: Iterable[Index]
    ) -> float:
        """Appendix B(i) greedy multi-index cost (scalar delegate)."""
        return self._model.multi_index_cost(query, indexes)

    # ------------------------------------------------------------------
    # Batch entry points
    # ------------------------------------------------------------------

    def sequential_costs(self, queries: Sequence[Query]) -> np.ndarray:
        """``f_j(0)`` for a whole column of queries."""
        queries = tuple(queries)
        placements = self._placements(queries)
        self.statistics.batch_calls += 1
        self.statistics.batch_pairs += len(queries)
        results = np.empty(len(queries), dtype=np.float64)
        for position, (pack, row) in enumerate(placements):
            results[position] = pack.sequential[row]
        return results

    def query_costs(
        self, queries: Sequence[Query], index: Index | None
    ) -> np.ndarray:
        """``f_j(k)`` for a whole column of queries under one index."""
        queries = tuple(queries)
        placements = self._placements(queries)
        self.statistics.batch_calls += 1
        self.statistics.batch_pairs += len(queries)
        results = np.empty(len(queries), dtype=np.float64)
        if index is None:
            for position, (pack, row) in enumerate(placements):
                results[position] = pack.sequential[row]
            return results
        # Group by pack (queries first seen in different batches live
        # in different packs); per-row arithmetic is identical across
        # groupings, so scatter-gather preserves determinism.
        groups: dict[int, tuple[CompiledWorkload, list[int], list[int]]]
        groups = {}
        for position, (pack, row) in enumerate(placements):
            entry = groups.get(id(pack))
            if entry is None:
                entry = (pack, [], [])
                groups[id(pack)] = entry
            entry[1].append(position)
            entry[2].append(row)
        for pack, positions, rows in groups.values():
            costs = self._index_costs_on(
                pack, np.asarray(rows, dtype=np.intp), index
            )
            results[np.asarray(positions, dtype=np.intp)] = costs
        return results

    def pair_costs(
        self, pairs: Sequence[tuple[Query, Index | None]]
    ) -> np.ndarray:
        """``f_j(k)`` for arbitrary ``(query, index)`` pairs at once.

        The whole-table entry point: a candidate×query cost table
        flattens into one pair list and prices in a single array sweep,
        instead of one (overhead-dominated) batch call per candidate
        column.  Per pair the arithmetic is element-wise identical to
        :meth:`query_costs` / :meth:`query_cost`, so all three entry
        points return bitwise-equal costs for the same pair.
        """
        pairs = tuple(pairs)
        self.statistics.batch_calls += 1
        self.statistics.batch_pairs += len(pairs)
        results = np.empty(len(pairs), dtype=np.float64)
        if not pairs:
            return results
        queries, indexes = zip(*pairs)
        placements = self._placements(queries)
        # Fast path: every query landed in the same pack (the common
        # whole-workload sweep) — no grouping pass needed.
        first_pack = placements[0][0]
        if all(placement[0] is first_pack for placement in placements):
            rows = np.fromiter(
                (placement[1] for placement in placements),
                dtype=np.intp,
                count=len(placements),
            )
            return self._pair_costs_on(first_pack, rows, indexes)
        groups: dict[
            int, tuple[CompiledWorkload, list[int], list[int], list]
        ]
        groups = {}
        for position, ((_, index), (pack, row)) in enumerate(
            zip(pairs, placements)
        ):
            entry = groups.get(id(pack))
            if entry is None:
                entry = (pack, [], [], [])
                groups[id(pack)] = entry
            entry[1].append(position)
            entry[2].append(row)
            entry[3].append(index)
        for pack, positions, rows, indexes in groups.values():
            costs = self._pair_costs_on(
                pack, np.asarray(rows, dtype=np.intp), indexes
            )
            results[np.asarray(positions, dtype=np.intp)] = costs
        return results

    def maintenance_costs(
        self, queries: Sequence[Query], index: Index
    ) -> np.ndarray:
        """Maintenance for a column of queries (scalar delegate)."""
        queries = tuple(queries)
        self.statistics.batch_calls += 1
        self.statistics.batch_pairs += len(queries)
        return np.array(
            [
                self._model.maintenance_cost(query, index)
                for query in queries
            ],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    # Sharding support (public pack-level entry points)
    # ------------------------------------------------------------------

    def packs(self) -> tuple[CompiledWorkload, ...]:
        """Every pack compiled so far, in compilation order.

        The process-sharded backend (:mod:`repro.cost.shard`) snapshots
        this tuple when it (re)builds its worker pool: packs are
        immutable once compiled, so shipping them to workers once — via
        fork inheritance or a single pickle at pool start — keeps every
        worker's rows bit-identical to the parent's.
        """
        with self._lock:
            seen: set[int] = set()
            ordered: list[CompiledWorkload] = []
            for pack, _ in self._rows.values():
                if id(pack) not in seen:
                    seen.add(id(pack))
                    ordered.append(pack)
            return tuple(ordered)

    def placements_for(
        self, queries: Sequence[Query]
    ) -> list[tuple[CompiledWorkload, int]]:
        """Public :meth:`_placements`: pack rows, compiling unseen
        queries.  Row bindings are permanent, so shard partitioning on
        top of them is stable across calls."""
        return self._placements(queries)

    def index_costs_on(
        self, pack: CompiledWorkload, rows: np.ndarray, index: Index
    ) -> np.ndarray:
        """Public :meth:`_index_costs_on` for shard workers: ``f_j(k)``
        for selected pack rows under one index.  Row-wise pure — any
        partition of ``rows`` concatenates to the unpartitioned result
        bit-for-bit."""
        return self._index_costs_on(pack, rows, index)

    def pair_costs_on(
        self, pack: CompiledWorkload, rows: np.ndarray, indexes: list
    ) -> np.ndarray:
        """Public :meth:`_pair_costs_on` for shard workers: ``f_j(k)``
        for pack rows with per-row indexes.  Element-wise per pair, so
        sharding the pair axis preserves bitwise equality."""
        return self._pair_costs_on(pack, rows, indexes)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _placements(
        self, queries: Sequence[Query]
    ) -> list[tuple[CompiledWorkload, int]]:
        """Pack rows for the queries, compiling unseen ones.

        The per-object memo is read unlocked (placements are written
        once under the lock and never mutated); only queries missing
        from it take the locked compile-or-register path.
        """
        memo = self._placement_memo
        memo_get = memo.get
        placements = [
            memo_get(id(query)) for query in queries
        ]
        if None not in placements:
            return placements
        with self._lock:
            rows = self._rows
            refs = self._memo_refs
            fresh: list[Query] = []
            seen: set[tuple] = set()
            for position, placement in enumerate(placements):
                if placement is not None:
                    continue
                key = queries[position].cache_key
                if key in rows or key in seen:
                    continue
                seen.add(key)
                fresh.append(queries[position])
            if fresh:
                self._compile(fresh)
            for position, placement in enumerate(placements):
                if placement is None:
                    query = queries[position]
                    placement = rows[query.cache_key]
                    key = id(query)
                    if key not in memo:
                        memo[key] = placement
                        refs.append(query)
                    placements[position] = placement
        return placements

    def _compile(self, queries: list[Query]) -> None:
        """Pack content-distinct queries into one new pack (locked)."""
        started = time.perf_counter()
        schema = self._schema
        count = len(queries)
        padded = max(len(query.attributes) for query in queries)
        attribute_ids = np.full((count, padded), -1, dtype=np.int64)
        selectivity = np.ones((count, padded), dtype=np.float64)
        value_size = np.zeros((count, padded), dtype=np.float64)
        valid = np.zeros((count, padded), dtype=bool)
        row_count = np.empty(count, dtype=np.float64)
        log2_rows = np.empty(count, dtype=np.float64)
        table_code = np.empty(count, dtype=np.int64)
        is_insert = np.zeros(count, dtype=bool)
        for position, query in enumerate(queries):
            ordered = self._ordered(query.attributes)
            width = len(ordered)
            attribute_ids[position, :width] = ordered
            selectivity[position, :width] = [
                schema.selectivity(attribute_id)
                for attribute_id in ordered
            ]
            value_size[position, :width] = [
                schema.value_size(attribute_id)
                for attribute_id in ordered
            ]
            valid[position, :width] = True
            rows = schema.table(query.table_name).row_count
            row_count[position] = float(rows)
            log2_rows[position] = math.log2(rows) if rows > 1 else 1.0
            table_code[position] = self._table_codes[query.table_name]
            is_insert[position] = query.kind is QueryKind.INSERT
        residual = _residual_costs(
            row_count, selectivity, value_size, valid, 1.0
        )
        sequential = np.where(
            is_insert, value_size.sum(axis=1), residual
        )
        pack = CompiledWorkload(
            attribute_ids=attribute_ids,
            selectivity=selectivity,
            value_size=value_size,
            valid=valid,
            row_count=row_count,
            log2_rows=log2_rows,
            table_code=table_code,
            is_insert=is_insert,
            sequential=sequential,
        )
        for position, query in enumerate(queries):
            self._rows[_query_key(query)] = (pack, position)
        statistics = self.statistics
        statistics.compiled_workloads += 1
        statistics.compiled_queries += count
        statistics.compile_seconds += time.perf_counter() - started

    def _ordered(self, attributes: frozenset) -> tuple[int, ...]:
        """Residual-scan order: ascending ``(selectivity, id)``."""
        key = frozenset(attributes)
        ordered = self._order_cache.get(key)
        if ordered is None:
            schema = self._schema
            ordered = tuple(
                sorted(
                    key,
                    key=lambda attribute_id: (
                        schema.selectivity(attribute_id),
                        attribute_id,
                    ),
                )
            )
            self._order_cache[key] = ordered
        return ordered

    def _prefix_terms(
        self, index: Index
    ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Per-truncation index-access scalars, scalar-accumulated."""
        cached = self._prefix_cache.get(index)
        if cached is None:
            terms: list[float] = []
            fractions: list[float] = []
            term = 0.0
            fraction = 1.0
            for attribute_id in index.attributes:
                term += float(self._size_log2d_by_id[attribute_id])
                fraction *= float(self._sel_by_id[attribute_id])
                terms.append(term)
                fractions.append(fraction)
            cached = (tuple(terms), tuple(fractions))
            self._prefix_cache[index] = cached
        return cached

    # ------------------------------------------------------------------
    # Batched f_j(k)
    # ------------------------------------------------------------------

    def _index_costs_on(
        self, pack: CompiledWorkload, rows: np.ndarray, index: Index
    ) -> np.ndarray:
        """``f_j(k)`` for selected pack rows under one index.

        Evaluates every truncation ``L = 1..K`` of the usable prefix in
        one array expression per ``L``: the residual-scan mask starts at
        the full attribute row and loses the ``L``-th index attribute
        incrementally (only for rows whose usable prefix reaches ``L``),
        so each ``L`` costs one masked cumprod instead of a re-sort.
        Rows where the index is inapplicable (other table, INSERT, or
        leading attribute absent) keep the sequential baseline — the
        same "a harmful index is simply not used" clamp as the scalar
        model.
        """
        attribute_ids = pack.attribute_ids[rows]
        best = pack.sequential[rows].copy()
        applicable = (
            (
                pack.table_code[rows]
                == self._table_codes.get(index.table_name, -1)
            )
            & ~pack.is_insert[rows]
            & (attribute_ids == index.attributes[0]).any(axis=1)
        )
        if not applicable.any():
            return best
        selectivity = pack.selectivity[rows]
        value_size = pack.value_size[rows]
        row_count = pack.row_count[rows]
        log2_rows = pack.log2_rows[rows]
        attributes = index.attributes
        member = np.stack(
            [
                (attribute_ids == attribute_id).any(axis=1)
                for attribute_id in attributes
            ]
        )
        prefix_ok = np.logical_and.accumulate(member, axis=0)
        terms, fractions = self._prefix_terms(index)
        mask = pack.valid[rows].copy()
        for length in range(1, len(attributes) + 1):
            active = applicable & prefix_ok[length - 1]
            if not active.any():
                break
            # Descending one more prefix attribute removes it from the
            # residual scan (only for rows that actually reach L).
            removed = (
                attribute_ids == attributes[length - 1]
            ) & active[:, None]
            mask &= ~removed
            access = (
                log2_rows
                + terms[length - 1]
                + _POSITION_LIST_ENTRY_BYTES
                * row_count
                * fractions[length - 1]
            )
            residual = _residual_costs(
                row_count,
                selectivity,
                value_size,
                mask,
                fractions[length - 1],
            )
            np.minimum(best, access + residual, out=best, where=active)
        return best

    def _pair_costs_on(
        self, pack: CompiledWorkload, rows: np.ndarray, indexes: list
    ) -> np.ndarray:
        """``f_j(k)`` for pack rows paired with *per-row* indexes.

        The candidate axis is folded into the pair axis: distinct
        indexes are tabulated once (attributes padded to the widest
        candidate with a ``-2`` sentinel that matches no attribute, so
        short candidates simply stop participating early; ``None``
        entries get an all-sentinel row and keep their sequential
        baseline), then gathered per pair.  The truncation loop runs
        once over all pairs per prefix length — element-wise the same
        operations, in the same order, as :meth:`_index_costs_on`, so
        results are bitwise identical to the per-candidate path.
        """
        best = pack.sequential[rows].copy()
        # Distinct candidates by object identity (ids stay unique while
        # the pair tuple keeps every index alive): flat pair lists from
        # cost-table sweeps are runs of the same index object, so
        # run-length grouping touches Python once per run instead of
        # once per pair, and content-duplicate objects merely tabulate
        # twice with identical rows.
        distinct: dict[int, int] = {}
        distinct_indexes: list[Index | None] = []
        run_codes: list[int] = []
        run_lengths: list[int] = []
        for key, group in groupby(indexes, key=id):
            members = list(group)
            code = distinct.get(key)
            if code is None:
                code = len(distinct_indexes)
                distinct[key] = code
                distinct_indexes.append(members[0])
            run_codes.append(code)
            run_lengths.append(len(members))
        padded = max(
            (
                index.width
                for index in distinct_indexes
                if index is not None
            ),
            default=0,
        )
        if padded == 0:
            return best
        count = len(distinct_indexes)
        index_attrs = np.full((count, padded), -2, dtype=np.int64)
        index_table = np.full(count, -1, dtype=np.int64)
        table_codes = self._table_codes
        for code, index in enumerate(distinct_indexes):
            if index is None:
                continue
            index_attrs[code, : index.width] = index.attributes
            index_table[code] = table_codes.get(index.table_name, -1)
        # Prefix terms and qualifying fractions for every distinct
        # index at once: cumulative sum/product along the attribute
        # axis accumulate left-to-right exactly like the sequential
        # loop in _prefix_terms, so both tabulations agree bitwise.
        present = index_attrs >= 0
        clipped = np.where(present, index_attrs, 0)
        index_terms = np.cumsum(
            np.where(present, self._size_log2d_by_id[clipped], 0.0),
            axis=1,
        )
        index_fractions = np.cumprod(
            np.where(present, self._sel_by_id[clipped], 1.0), axis=1
        )
        pair_index = np.repeat(
            np.array(run_codes, dtype=np.intp),
            np.array(run_lengths, dtype=np.intp),
        )
        attrs = index_attrs[pair_index]
        attribute_ids = pack.attribute_ids[rows]
        applicable = (
            (pack.table_code[rows] == index_table[pair_index])
            & ~pack.is_insert[rows]
            & (attribute_ids == attrs[:, :1]).any(axis=1)
        )
        if not applicable.any():
            return best
        # Restrict every per-pair array to the applicable pairs, and
        # keep shrinking as prefixes stop matching: prefix usability is
        # monotone (logical_and.accumulate), so a pair that drops out
        # at one truncation length never participates again.  Per
        # surviving row the operations are element-wise identical to
        # the full-width loop, so results stay bitwise equal.
        positions = np.nonzero(applicable)[0]
        rows_live = rows[positions]
        attrs = attrs[positions]
        live_index = pair_index[positions]
        terms = index_terms[live_index]
        fractions = index_fractions[live_index]
        attribute_ids = attribute_ids[positions]
        member = (attribute_ids[:, None, :] == attrs[:, :, None]).any(
            axis=2
        )
        prefix_ok = np.logical_and.accumulate(member, axis=1)
        selectivity = pack.selectivity[rows_live]
        value_size = pack.value_size[rows_live]
        row_count = pack.row_count[rows_live]
        log2_rows = pack.log2_rows[rows_live]
        mask = pack.valid[rows_live]
        weight = value_size + _POSITION_LIST_ENTRY_BYTES * selectivity
        current = best[positions]
        for length in range(1, padded + 1):
            keep = prefix_ok[:, length - 1]
            if not keep.all():
                keep_positions = np.nonzero(keep)[0]
                if keep_positions.size == 0:
                    break
                best[positions] = current
                positions = positions[keep_positions]
                current = current[keep_positions]
                attrs = attrs[keep_positions]
                terms = terms[keep_positions]
                fractions = fractions[keep_positions]
                attribute_ids = attribute_ids[keep_positions]
                prefix_ok = prefix_ok[keep_positions]
                selectivity = selectivity[keep_positions]
                value_size = value_size[keep_positions]
                row_count = row_count[keep_positions]
                log2_rows = log2_rows[keep_positions]
                mask = mask[keep_positions]
                weight = weight[keep_positions]
            mask &= attribute_ids != attrs[:, length - 1][:, None]
            access = (
                log2_rows
                + terms[:, length - 1]
                + _POSITION_LIST_ENTRY_BYTES
                * row_count
                * fractions[:, length - 1]
            )
            residual = _residual_costs(
                row_count,
                selectivity,
                value_size,
                mask,
                fractions[:, length - 1],
                weight,
            )
            np.minimum(current, access + residual, out=current)
        best[positions] = current
        return best
