"""Index interaction (IIA) measurement.

Schnaitter et al. define interaction as: "an index a interacts with an
index b if the benefit of a is affected by the presence of b and
vice-versa".  This module quantifies that effect for pairs of indexes —
used by tests (to prove the substrate actually exhibits interaction, the
phenomenon the paper's algorithm is designed around) and by the ablation
analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.whatif import WhatIfOptimizer
from repro.indexes.index import Index
from repro.workload.query import Workload

__all__ = ["InteractionReport", "pairwise_interaction"]


@dataclass(frozen=True)
class InteractionReport:
    """Benefits of two indexes alone and together.

    ``benefit_a`` / ``benefit_b`` are workload-cost reductions of each
    index in isolation; ``benefit_joint`` is the reduction when both are
    present.  ``interaction`` is ``benefit_a + benefit_b - benefit_joint``:
    positive values mean the indexes cannibalize each other (sub-additive
    benefits, the typical case for similar indexes — Property 2 of
    Section V), negative values mean synergy.
    """

    index_a: Index
    index_b: Index
    benefit_a: float
    benefit_b: float
    benefit_joint: float
    interaction: float

    @property
    def degree(self) -> float:
        """Normalized interaction magnitude in ``[0, 1]``.

        Zero means the indexes are independent (benefits add up exactly);
        values near one mean one index makes the other (almost) useless.
        """
        denominator = max(self.benefit_a + self.benefit_b, 1e-12)
        return abs(self.interaction) / denominator


def pairwise_interaction(
    optimizer: WhatIfOptimizer,
    workload: Workload,
    index_a: Index,
    index_b: Index,
) -> InteractionReport:
    """Measure the interaction between two indexes on a workload.

    Uses the one-index-per-query cost semantics (Example 1 (i)) through
    the shared what-if facade, so measurements are cached and counted
    consistently with the selection algorithms.
    """
    base = optimizer.workload_cost(workload, ())
    with_a = optimizer.workload_cost(workload, (index_a,))
    with_b = optimizer.workload_cost(workload, (index_b,))
    with_both = optimizer.workload_cost(workload, (index_a, index_b))
    benefit_a = base - with_a
    benefit_b = base - with_b
    benefit_joint = base - with_both
    return InteractionReport(
        index_a=index_a,
        index_b=index_b,
        benefit_a=benefit_a,
        benefit_b=benefit_b,
        benefit_joint=benefit_joint,
        interaction=benefit_a + benefit_b - benefit_joint,
    )
