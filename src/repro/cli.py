"""Command-line interface: ``python -m repro`` or ``repro-advisor``.

Two subcommands:

* ``advise`` — run an index-selection algorithm on one of the built-in
  workloads and print the recommended configuration, e.g.::

      python -m repro advise --workload tpcc --budget 0.5
      python -m repro advise --workload appendix-c --algorithm cophy \\
          --budget 0.2 --candidates 200
      python -m repro advise --budget 0.3 --trace run.jsonl --metrics
      python -m repro advise --budget 0.3 --deadline 5 \\
          --fault-rate 0.2 --max-retries 5

  ``--trace FILE`` writes a JSON-lines telemetry trace (spans, step
  events, final metrics — see docs/OBSERVABILITY.md); ``--metrics``
  prints the metrics table; ``--steps`` prints the construction-step
  table (Extend only).  ``--deadline`` bounds the selection wall-clock
  (best-so-far results come back tagged ``degraded``); ``--fault-rate``
  injects seeded transient cost-backend failures (the resilience
  harness), retried up to ``--max-retries`` times before the analytic
  fallback prices the call.

* ``experiment`` — run one of the paper-artifact harnesses, e.g.::

      python -m repro experiment table1
      python -m repro experiment fig5 -- --row-cap 20000

  (arguments after ``--`` are forwarded to the experiment's own CLI).

* ``serve`` — run the advisor as a network-free JSON-lines daemon over
  stdin/stdout (see docs/SERVICE.md), e.g.::

      python -m repro serve --workload tpcc --max-concurrency 4 \\
          --queue-depth 8 --default-deadline 5 \\
          --snapshot-dir /var/lib/repro --snapshot-interval 30

  The built-in workload is pre-registered under its name; clients then
  send one JSON object per line (``register``/``update``/``evict``/
  ``recommend``/``stats``/``health``/``ready``/``snapshot``/
  ``shutdown``).  Status chatter goes to stderr — stdout carries only
  protocol lines.  With ``--snapshot-dir`` the daemon restores its
  registrations and warm benefit tables from the last durable snapshot
  at startup and persists them on the given interval and on shutdown;
  SIGTERM triggers a graceful drain (finish or deadline-degrade
  in-flight requests, final snapshot) and exit 0.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.cophy.solver import CoPhyAlgorithm
from repro.core.evaluation import EvaluationConfig
from repro.core.extend import ExtendAlgorithm
from repro.core.steps import SelectionResult, format_steps
from repro.core.sweep import parse_budget_sweep, sweep_select
from repro.cost.kernel import VectorizedCostSource
from repro.cost.model import CostModel
from repro.cost.shard import ShardedCostSource
from repro.cost.whatif import AnalyticalCostSource, WhatIfOptimizer
from repro.exceptions import ExperimentError, ReproError
from repro.heuristics.performance import (
    BenefitPerSizeHeuristic,
    PerformanceHeuristic,
)
from repro.heuristics.rules import (
    FrequencyHeuristic,
    SelectivityFrequencyHeuristic,
    SelectivityHeuristic,
)
from repro.indexes.candidates import (
    candidates_h1m,
    syntactically_relevant_candidates,
)
from repro.indexes.memory import relative_budget
from repro.resilience import (
    Deadline,
    FaultInjectingCostSource,
    ResiliencePolicy,
    ResilientCostSource,
)
from repro.service import AdvisorService, serve_loop
from repro.telemetry import (
    NULL_TELEMETRY,
    JsonLinesSink,
    Telemetry,
    render_metrics_table,
)
from repro.workload.compression import pricing_prepass
from repro.workload.enterprise import (
    EnterpriseConfig,
    generate_enterprise_workload,
)
from repro.workload.generator import GeneratorConfig, generate_workload
from repro.workload.query import Workload
from repro.workload.stats import WorkloadStatistics
from repro.workload.tpcc import tpcc_workload

__all__ = ["main"]

_EXPERIMENTS = (
    "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
    "whatif_calls", "ablations",
)
_ALGORITHMS = ("extend", "cophy", "h1", "h2", "h3", "h4", "h4s", "h5")


def _positive_int(text: str) -> int:
    """Argparse ``type=`` for flags that must be a positive integer.

    A clean one-line usage error beats the deep ``ServiceError`` (or
    worse, ``ValueError``) stack trace the library layers would raise
    long after parsing.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    """Argparse ``type=`` for flags that must be a positive number."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}"
        ) from None
    # NaN fails every comparison, so test for the accepted range
    # instead of the rejected one.
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value}"
        )
    return value


def _budget_sweep_spec(text: str) -> tuple[float, ...]:
    """Argparse ``type=`` for ``--budget-sweep LOW:HIGH:STEPS``.

    Builds on the positive-number validators so a bad spec is a
    one-line usage error, then delegates range/duplicate checking to
    :func:`repro.core.sweep.parse_budget_sweep`.  Returns the parsed
    budget shares.
    """
    parts = text.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected LOW:HIGH:STEPS (e.g. 0.1:1.0:10), got {text!r}"
        )
    low, high = _positive_float(parts[0]), _positive_float(parts[1])
    steps = _positive_int(parts[2])
    try:
        return parse_budget_sweep(f"{low}:{high}:{steps}")
    except ExperimentError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _build_workload(arguments: argparse.Namespace) -> Workload:
    if arguments.workload == "tpcc":
        return tpcc_workload(warehouses=arguments.warehouses)
    if arguments.workload == "erp":
        return generate_enterprise_workload(
            EnterpriseConfig(scale=arguments.scale, seed=arguments.seed)
        )
    return generate_workload(
        GeneratorConfig(
            tables=arguments.tables,
            attributes_per_table=arguments.attributes,
            queries_per_table=arguments.queries,
            seed=arguments.seed,
        )
    )


def _run_algorithm(
    arguments: argparse.Namespace,
    workload: Workload,
    optimizer: WhatIfOptimizer,
    budget: float,
    telemetry: Telemetry,
    deadline: Deadline,
) -> SelectionResult:
    name = arguments.algorithm
    evaluation = EvaluationConfig(
        naive=arguments.naive_evaluation,
        parallelism=arguments.parallelism,
    )
    parallelism = evaluation.effective_parallelism(optimizer)
    if name == "extend":
        return ExtendAlgorithm(
            optimizer, telemetry=telemetry, evaluation=evaluation
        ).select(workload, budget, deadline=deadline)

    if arguments.candidates:
        statistics = WorkloadStatistics(workload)
        candidates = candidates_h1m(statistics, arguments.candidates)
    else:
        candidates = syntactically_relevant_candidates(workload)
    if name == "cophy":
        return CoPhyAlgorithm(
            optimizer,
            time_limit=arguments.time_limit,
            telemetry=telemetry,
        ).select(workload, budget, candidates, deadline=deadline)
    heuristic_types = {
        "h1": FrequencyHeuristic,
        "h2": SelectivityHeuristic,
        "h3": SelectivityFrequencyHeuristic,
        "h5": BenefitPerSizeHeuristic,
    }
    if name in heuristic_types:
        return heuristic_types[name](
            optimizer, telemetry=telemetry, parallelism=parallelism
        ).select(workload, budget, candidates, deadline=deadline)
    if name == "h4":
        return PerformanceHeuristic(
            optimizer, telemetry=telemetry, parallelism=parallelism
        ).select(workload, budget, candidates, deadline=deadline)
    if name == "h4s":
        return PerformanceHeuristic(
            optimizer,
            use_skyline=True,
            telemetry=telemetry,
            parallelism=parallelism,
        ).select(workload, budget, candidates, deadline=deadline)
    raise ExperimentError(f"unknown algorithm {name!r}")


def _build_cost_stack(
    arguments: argparse.Namespace, workload: Workload
) -> tuple[WhatIfOptimizer, ResilientCostSource,
           FaultInjectingCostSource | None,
           VectorizedCostSource | ShardedCostSource | None]:
    """Assemble analytic backend → fault injector → resilient wrapper."""
    kernel: VectorizedCostSource | ShardedCostSource | None = None
    if arguments.cost_kernel == "vectorized":
        kernel = VectorizedCostSource(workload.schema)
        analytical = kernel
    elif arguments.cost_kernel == "sharded":
        kernel = ShardedCostSource(
            workload.schema, shards=arguments.shards
        )
        analytical = kernel
    else:
        analytical = AnalyticalCostSource(CostModel(workload.schema))
    injector: FaultInjectingCostSource | None = None
    primary = analytical
    fallbacks: tuple = ()
    if arguments.fault_rate > 0:
        injector = FaultInjectingCostSource(
            analytical,
            failure_rate=arguments.fault_rate,
            seed=arguments.fault_seed,
        )
        primary = injector
        fallbacks = (analytical,)
    resilient = ResilientCostSource(
        primary,
        policy=ResiliencePolicy(
            max_retries=arguments.max_retries,
            # CLI runs are interactive; do not sleep between retries.
            backoff_base_s=0.0,
        ),
        fallbacks=fallbacks,
    )
    return WhatIfOptimizer(resilient), resilient, injector, kernel


def _telemetry_from_arguments(arguments: argparse.Namespace):
    """The advise telemetry session per ``--trace``/``--metrics``.

    Returns ``None`` (after printing the usage error) when the trace
    path is unwritable — failing fast beats crashing at the first lazy
    emit mid-selection.
    """
    if not (arguments.trace or arguments.metrics):
        return NULL_TELEMETRY
    sinks: tuple[JsonLinesSink, ...] = ()
    if arguments.trace:
        try:
            open(arguments.trace, "w", encoding="utf-8").close()
        except OSError as error:
            print(
                f"error: cannot write trace file: {error}",
                file=sys.stderr,
            )
            return None
        sinks = (JsonLinesSink(arguments.trace),)
    return Telemetry(sinks=sinks)


def _advise_sweep(
    arguments: argparse.Namespace,
    workload: Workload,
    optimizer: WhatIfOptimizer,
    resilient: ResilientCostSource,
    injector: FaultInjectingCostSource | None,
    kernel,
    deadline: Deadline,
) -> int:
    """The ``advise --budget-sweep`` path: one shared-engine frontier."""
    if arguments.algorithm != "extend":
        raise ExperimentError(
            "--budget-sweep answers the frontier with the shared Extend "
            f"engine; it does not combine with --algorithm "
            f"{arguments.algorithm!r}"
        )
    shares = arguments.budget_sweep
    telemetry = _telemetry_from_arguments(arguments)
    if telemetry is None:
        return 2
    print(
        f"Workload: {workload.query_count} queries over "
        f"{workload.schema.attribute_count} attributes; "
        f"budget sweep w={shares[0]:g}..{shares[-1]:g} "
        f"({len(shares)} points, shared engine)"
    )
    sweep = sweep_select(
        workload,
        optimizer,
        shares,
        telemetry=telemetry,
        evaluation=EvaluationConfig(
            naive=arguments.naive_evaluation,
            parallelism=arguments.parallelism,
        ),
        deadline=deadline,
    )
    baseline = optimizer.workload_cost(workload, ())
    print(
        f"\n{'w':>6}  {'budget bytes':>14}  {'total cost':>12}  "
        f"{'memory':>12}  {'steps':>5}  {'calls':>6}  {'time':>7}"
    )
    for point in sweep.points:
        result = point.result
        print(
            f"{point.budget_share:>6g}  {point.budget_bytes:>14,.0f}  "
            f"{result.total_cost:>12.6g}  {result.memory:>12,.0f}  "
            f"{len(result.steps):>5}  {point.whatif_calls:>6}  "
            f"{result.runtime_seconds:>6.2f}s"
            + ("  (degraded)" if result.degraded else "")
        )
    statistics = sweep.statistics
    print(
        f"\nBackend what-if calls: {statistics.backend_calls:,} for "
        f"{statistics.completed_points} points "
        f"(warm reuse {statistics.reuse_rate:.1%}, "
        f"reprice {statistics.reprice_count:,})"
    )
    print(f"Cost without indexes: {baseline:.6g}")
    if sweep.partial:
        skipped = ", ".join(f"{w:g}" for w in sweep.skipped_shares)
        print(
            "note: partial frontier — unanswered budget shares: "
            f"{skipped}"
        )
    for note in sweep.notes:
        print(f"note: {note}")
    if injector is not None:
        resilience_stats = resilient.statistics
        print(
            f"Resilience: {injector.statistics.injected_failures:,} "
            f"injected faults, {resilience_stats.retries:,} retries, "
            f"{resilience_stats.fallback_calls:,} fallback calls, "
            f"breaker {resilience_stats.breaker_state.name.lower()}"
        )
    if isinstance(kernel, ShardedCostSource):
        kernel.close()
    if telemetry.enabled:
        optimizer.statistics.publish(telemetry.metrics)
        resilient.statistics.publish(telemetry.metrics)
        if kernel is not None:
            kernel.statistics.publish(telemetry.metrics)
        if injector is not None:
            injector.statistics.publish(telemetry.metrics)
        if arguments.metrics:
            print("\nTelemetry metrics:")
            print(render_metrics_table(telemetry.metrics.snapshot()))
        telemetry.close()
        if arguments.trace:
            print(f"\nTrace written to {arguments.trace}")
    return 0


def _advise(arguments: argparse.Namespace) -> int:
    workload = _build_workload(arguments)
    optimizer, resilient, injector, kernel = _build_cost_stack(
        arguments, workload
    )
    if arguments.merge_duplicates or arguments.compress_share is not None:
        workload, compression = pricing_prepass(
            workload,
            optimizer,
            merge_duplicates=arguments.merge_duplicates,
            share=arguments.compress_share,
        )
        print(
            f"Compression pre-pass: {compression.templates_before} -> "
            f"{compression.templates_after} templates "
            f"({compression.merged} merged, "
            f"{compression.dropped} dropped)"
        )
    deadline = Deadline(arguments.deadline)
    if arguments.budget_sweep is not None:
        return _advise_sweep(
            arguments, workload, optimizer, resilient, injector,
            kernel, deadline,
        )
    budget = relative_budget(workload.schema, arguments.budget)
    print(
        f"Workload: {workload.query_count} queries over "
        f"{workload.schema.attribute_count} attributes; "
        f"budget w={arguments.budget} ({budget:,.0f} bytes)"
    )
    telemetry = _telemetry_from_arguments(arguments)
    if telemetry is None:
        return 2
    result = _run_algorithm(
        arguments, workload, optimizer, budget, telemetry, deadline
    )
    baseline = optimizer.workload_cost(workload, ())
    statistics = optimizer.statistics
    print(result.summary())
    if result.degraded:
        print(
            "note: run was degraded (deadline or backend trouble); "
            "the configuration is feasible best-so-far"
        )
    print(
        f"Cost without indexes: {baseline:.6g} "
        f"({baseline / max(result.total_cost, 1e-12):.1f}x improvement)"
    )
    print(
        f"What-if cache: {statistics.cache_hits:,} hits / "
        f"{statistics.total_requests:,} requests "
        f"({statistics.hit_rate:.1%} hit rate)"
    )
    if injector is not None:
        resilience_stats = resilient.statistics
        print(
            f"Resilience: {injector.statistics.injected_failures:,} "
            f"injected faults, {resilience_stats.retries:,} retries, "
            f"{resilience_stats.fallback_calls:,} fallback calls, "
            f"breaker {resilience_stats.breaker_state.name.lower()}"
        )
    if isinstance(kernel, ShardedCostSource):
        shard_stats = kernel.statistics
        print(
            f"Sharded kernel: {shard_stats.workers} workers, "
            f"{shard_stats.dispatched_pairs:,} pairs dispatched "
            f"({shard_stats.dispatches:,} chunks), "
            f"{shard_stats.local_pairs:,} priced in-process, "
            f"{shard_stats.worker_failures:,} worker failures"
        )
        kernel.close()
    print("\nRecommended indexes:")
    for index in sorted(
        result.configuration,
        key=lambda index: (index.table_name, index.attributes),
    ):
        print(f"  {index.label(workload.schema)}")
    if result.steps and arguments.steps:
        print("\nConstruction trace:")
        print(format_steps(result.steps, workload.schema))
    if telemetry.enabled:
        statistics.publish(telemetry.metrics)
        resilient.statistics.publish(telemetry.metrics)
        if kernel is not None:
            kernel.statistics.publish(telemetry.metrics)
        if isinstance(kernel, ShardedCostSource):
            # The in-process kernel's compiled-pack gauges ride along
            # with the shard_* gauges published above.
            kernel.kernel_statistics.publish(telemetry.metrics)
        if injector is not None:
            injector.statistics.publish(telemetry.metrics)
        if arguments.metrics:
            print("\nTelemetry metrics:")
            print(render_metrics_table(telemetry.metrics.snapshot()))
        telemetry.close()
        if arguments.trace:
            print(f"\nTrace written to {arguments.trace}")
    return 0


def _serve(arguments: argparse.Namespace) -> int:
    workload = _build_workload(arguments)
    schema = workload.schema
    cost_source = None
    if arguments.fault_rate > 0:
        if arguments.cost_kernel in ("vectorized", "sharded"):
            # The injector's inner source stays single-process (it is
            # bit-identical to the sharded backend); the per-kernel
            # analytic fallback in the stacks keeps the sharded pool.
            analytical = VectorizedCostSource(schema)
        else:
            analytical = AnalyticalCostSource(CostModel(schema))
        cost_source = FaultInjectingCostSource(
            analytical,
            failure_rate=arguments.fault_rate,
            seed=arguments.fault_seed,
        )
    service = AdvisorService(
        schema,
        max_concurrency=arguments.max_concurrency,
        queue_depth=arguments.queue_depth,
        default_deadline_s=arguments.default_deadline,
        cost_source=cost_source,
        resilience=ResiliencePolicy(
            max_retries=arguments.max_retries,
            backoff_base_s=0.0,
        ),
        cost_kernel=arguments.cost_kernel,
        shards=arguments.shards,
        coalesce=not arguments.no_coalesce,
        batch_window_ms=arguments.batch_window_ms,
        coalesce_max_pairs=arguments.coalesce_max_pairs,
        whatif_cache_entries=arguments.whatif_cache_entries,
        snapshot_dir=arguments.snapshot_dir,
        snapshot_interval_s=arguments.snapshot_interval,
        drain_timeout_s=arguments.drain_timeout,
    )
    # stdout is the protocol channel; humans read stderr.
    report = service.restore_report
    if report is not None and report.restored:
        print(
            f"repro serve: restored snapshot #{report.sequence} "
            f"({report.workloads} workload(s), "
            f"{report.warm_columns} warm column(s))",
            file=sys.stderr,
        )
    elif report is not None and report.corrupt:
        print(
            f"repro serve: snapshot discarded ({report.reason}); "
            "starting cold",
            file=sys.stderr,
        )
    if arguments.workload in service.workloads():
        # The snapshot already carries this registration (with its warm
        # benefit tables); re-registering would raise and resetting it
        # would throw the warmth away.
        print(
            f"repro serve: workload {arguments.workload!r} already "
            "restored from snapshot; keeping the warm registration",
            file=sys.stderr,
        )
    else:
        service.register_workload(arguments.workload, workload)
    print(
        f"repro serve: workload {arguments.workload!r} registered "
        f"({workload.query_count} queries), "
        f"concurrency={arguments.max_concurrency}, "
        f"queue_depth={arguments.queue_depth}, "
        f"default_deadline={arguments.default_deadline}",
        file=sys.stderr,
    )

    def _handle_sigterm(signum, frame):
        print(
            "repro serve: SIGTERM received — draining "
            "(in-flight requests finish or degrade, final snapshot)",
            file=sys.stderr,
        )
        service.close(wait=True)
        statistics = service.statistics
        print(
            f"repro serve: drained ({statistics.completed} completed, "
            f"{statistics.degraded} degraded, "
            f"{statistics.drain_forced} forced); exiting",
            file=sys.stderr,
        )
        raise SystemExit(0)

    try:
        signal.signal(signal.SIGTERM, _handle_sigterm)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    defaults = {"parallelism": arguments.parallelism}
    handled = serve_loop(
        service, sys.stdin, sys.stdout, request_defaults=defaults
    )
    statistics = service.statistics
    print(
        f"repro serve: exiting after {handled} messages "
        f"({statistics.completed} completed, "
        f"{statistics.degraded} degraded, "
        f"{statistics.rejected} rejected)",
        file=sys.stderr,
    )
    return 0


def _experiment(arguments: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(
        f"repro.experiments.{arguments.id}"
    )
    module.main(arguments.forwarded)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Flags shared by `advise` and `serve` live on parent parsers so
    # the two subcommands cannot drift apart.
    workload_flags = argparse.ArgumentParser(add_help=False)
    workload_flags.add_argument(
        "--workload",
        choices=("appendix-c", "tpcc", "erp"),
        default="appendix-c",
    )
    workload_flags.add_argument("--tables", type=int, default=3)
    workload_flags.add_argument("--attributes", type=int, default=10)
    workload_flags.add_argument("--queries", type=int, default=15)
    workload_flags.add_argument("--warehouses", type=int, default=10)
    workload_flags.add_argument(
        "--scale", type=float, default=0.1,
        help="ERP workload scale (default 0.1)",
    )
    workload_flags.add_argument("--seed", type=int, default=1909)

    cost_flags = argparse.ArgumentParser(add_help=False)
    cost_flags.add_argument(
        "--cost-kernel", choices=("scalar", "vectorized", "sharded"),
        default="vectorized",
        help="analytic cost backend flavour: the compiled numpy batch "
        "kernel (default), the pure-Python scalar model, or the "
        "process-sharded kernel for whole-enterprise workloads; all "
        "agree within 1e-9 relative tolerance (sharded is "
        "bit-identical to vectorized)",
    )
    cost_flags.add_argument(
        "--shards", type=_positive_int, default=None, metavar="N",
        help="worker processes for --cost-kernel sharded (default: "
        "machine cores clamped to [2, 8]); batches below the dispatch "
        "threshold stay in-process",
    )
    cost_flags.add_argument(
        "--parallelism", type=int, default=1, metavar="N",
        help="worker threads for candidate evaluation/pricing "
        "(default 1 = serial; recommendations are identical at any "
        "setting, and the engine falls back to serial when the cost "
        "backend is not thread-safe, e.g. under --fault-rate)",
    )
    cost_flags.add_argument(
        "--max-retries", type=int, default=3,
        help="retries per failing cost-backend call before falling "
        "back (default 3)",
    )
    cost_flags.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="P",
        help="inject seeded transient cost-backend failures with "
        "probability P (resilience test harness; default 0)",
    )
    cost_flags.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the fault-injection RNG (default 0)",
    )

    advise = subparsers.add_parser(
        "advise", help="recommend an index configuration",
        parents=[workload_flags, cost_flags],
    )
    advise.add_argument(
        "--algorithm", choices=_ALGORITHMS, default="extend"
    )
    advise.add_argument("--budget", type=float, default=0.3,
                        help="budget share w of Eq. 10 (default 0.3)")
    advise.add_argument(
        "--budget-sweep", type=_budget_sweep_spec, default=None,
        metavar="LOW:HIGH:STEPS",
        help="answer a whole cost/memory frontier instead of one "
             "budget: STEPS evenly spaced shares in [LOW, HIGH] "
             "(e.g. 0.1:1.0:10), priced once through the shared sweep "
             "engine; overrides --budget",
    )
    advise.add_argument(
        "--candidates", type=int, default=0,
        help="H1-M candidate count for two-step algorithms "
        "(0 = exhaustive)",
    )
    advise.add_argument("--time-limit", type=float, default=120.0)
    advise.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the selection; on expiry the "
        "best-so-far configuration is returned tagged 'degraded'",
    )
    advise.add_argument(
        "--naive-evaluation", action="store_true",
        help="use the pre-engine exhaustive candidate re-scan instead "
        "of the incremental benefit table (differential-testing "
        "escape hatch; same recommendation, many more what-if calls)",
    )
    advise.add_argument(
        "--merge-duplicates", action="store_true",
        help="compression pre-pass: merge content-duplicate templates "
        "(frequencies summed; lossless for the total workload cost)",
    )
    advise.add_argument(
        "--compress-share", type=float, default=None, metavar="P",
        help="compression pre-pass: keep only the templates covering "
        "share P of estimated cost before selection (lossy; "
        "default: off)",
    )
    advise.add_argument(
        "--steps", action="store_true",
        help="print the construction-step table (Extend only)",
    )
    advise.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a JSON-lines telemetry trace (spans, step events, "
        "metrics) to FILE",
    )
    advise.add_argument(
        "--metrics", action="store_true",
        help="print the telemetry metrics table after the run",
    )
    advise.set_defaults(handler=_advise)

    experiment = subparsers.add_parser(
        "experiment", help="run a paper-artifact harness"
    )
    experiment.add_argument("id", choices=_EXPERIMENTS)
    experiment.add_argument(
        "forwarded", nargs="*",
        help="arguments forwarded to the experiment CLI",
    )
    experiment.set_defaults(handler=_experiment)

    serve = subparsers.add_parser(
        "serve",
        help="run the advisor as a JSON-lines daemon on stdin/stdout",
        parents=[workload_flags, cost_flags],
    )
    serve.add_argument(
        "--max-concurrency", type=_positive_int, default=2,
        metavar="N",
        help="requests executing concurrently (default 2)",
    )
    serve.add_argument(
        "--queue-depth", type=_positive_int, default=8, metavar="N",
        help="requests allowed to wait beyond the executing ones "
        "(default 8); submits past max-concurrency + queue-depth are "
        "rejected fail-fast",
    )
    serve.add_argument(
        "--batch-window-ms", type=_positive_float, default=2.0,
        metavar="MS",
        help="micro-batch window of the cross-request pricing "
        "coalescer: how long the first enqueued pair waits for "
        "concurrent company before the fused batch dispatches "
        "(default 2.0; skipped entirely while the service is idle)",
    )
    serve.add_argument(
        "--coalesce-max-pairs", type=_positive_int, default=32768,
        metavar="N",
        help="fused-batch cap of the coalescer: a window closes early "
        "once this many pairs are pending (default 32768)",
    )
    serve.add_argument(
        "--no-coalesce", action="store_true",
        help="disable cross-request pricing coalescing (every request "
        "dispatches its own backend batches, as before)",
    )
    serve.add_argument(
        "--whatif-cache-entries", type=_positive_int, default=None,
        metavar="N",
        help="LRU bound on the resident what-if cost cache per kernel "
        "(default: unbounded); evictions surface as the "
        "whatif.evictions gauge",
    )
    serve.add_argument(
        "--default-deadline", type=float, default=None,
        metavar="SECONDS",
        help="deadline for requests that carry none, measured from "
        "submission (default: unlimited); expired requests degrade to "
        "tagged best-so-far results",
    )
    serve.add_argument(
        "--snapshot-dir", metavar="DIR", default=None,
        help="directory for durable snapshots of registrations and "
        "warm benefit tables; restored at startup when present "
        "(default: durability off)",
    )
    serve.add_argument(
        "--snapshot-interval", type=float, default=None,
        metavar="SECONDS",
        help="period of the background snapshot writer (default: "
        "snapshot only on demand and on shutdown)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="how long a graceful drain waits for in-flight requests "
        "before degrading and then force-resolving them (default 10)",
    )
    serve.set_defaults(handler=_serve)

    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        # Library errors are user/input errors from the CLI's point of
        # view: one readable line, exit 2.  Programming errors
        # (TypeError etc.) still propagate with a full traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
