"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "rewrite the golden fixture JSON under tests/golden/ from "
            "the current implementation instead of comparing against it"
        ),
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    """True when the run should rewrite golden fixtures."""
    return bool(request.config.getoption("--update-golden"))

from repro.cost.model import CostModel
from repro.cost.whatif import AnalyticalCostSource, WhatIfOptimizer
from repro.workload.generator import GeneratorConfig, generate_workload
from repro.workload.query import Workload
from repro.workload.schema import Schema


@pytest.fixture
def tiny_schema() -> Schema:
    """Two small tables with hand-picked statistics."""
    return Schema.build(
        {
            "ORDERS": (
                10_000,
                [
                    ("ID", 10_000, 4),
                    ("CUSTOMER", 500, 4),
                    ("STATUS", 5, 1),
                    ("REGION", 20, 2),
                ],
            ),
            "ITEMS": (
                50_000,
                [
                    ("ID", 50_000, 4),
                    ("ORDER_ID", 10_000, 4),
                    ("SKU", 2_000, 8),
                ],
            ),
        }
    )


@pytest.fixture
def tiny_workload(tiny_schema: Schema) -> Workload:
    """A handful of conjunctive queries over the tiny schema.

    Attribute ids: ORDERS = 0..3, ITEMS = 4..6.
    """
    return Workload.from_attribute_sets(
        tiny_schema,
        [
            ("ORDERS", [0], 100.0),          # point lookup by id
            ("ORDERS", [1, 3], 50.0),        # customer + region
            ("ORDERS", [1, 2, 3], 25.0),     # customer + status + region
            ("ORDERS", [2], 10.0),           # status scan
            ("ITEMS", [4], 200.0),           # point lookup by id
            ("ITEMS", [5, 6], 75.0),         # order + sku
        ],
    )


@pytest.fixture
def small_workload() -> Workload:
    """A small seeded Appendix C workload (2 tables × 8 attrs × 10 qs)."""
    return generate_workload(
        GeneratorConfig(
            tables=2,
            attributes_per_table=8,
            queries_per_table=10,
            seed=13,
        )
    )


@pytest.fixture
def tiny_optimizer(tiny_workload: Workload) -> WhatIfOptimizer:
    """Analytic what-if facade over the tiny workload's schema."""
    return WhatIfOptimizer(
        AnalyticalCostSource(CostModel(tiny_workload.schema))
    )


@pytest.fixture
def small_optimizer(small_workload: Workload) -> WhatIfOptimizer:
    """Analytic what-if facade over the small generated workload."""
    return WhatIfOptimizer(
        AnalyticalCostSource(CostModel(small_workload.schema))
    )
