"""Tests for the high-level IndexAdvisor facade."""

from __future__ import annotations

import pytest

from repro.advisor import IndexAdvisor
from repro.exceptions import BudgetError, ExperimentError
from repro.workload.query import Query


@pytest.fixture
def advisor(tiny_schema) -> IndexAdvisor:
    return IndexAdvisor(tiny_schema)


_SQL = [
    ("SELECT * FROM ORDERS WHERE ID = ?", 100.0),
    ("SELECT * FROM ORDERS WHERE CUSTOMER = ? AND REGION = ?", 50.0),
    ("SELECT * FROM ITEMS WHERE ID = ?", 200.0),
]


class TestInputCoercion:
    def test_accepts_sql_templates(self, advisor):
        recommendation = advisor.recommend(_SQL, budget_share=0.5)
        assert recommendation.workload.query_count == 3
        assert recommendation.indexes

    def test_accepts_plain_sql_strings(self, advisor):
        recommendation = advisor.recommend(
            ["SELECT * FROM ORDERS WHERE ID = ?"], budget_share=0.5
        )
        assert recommendation.workload.query_count == 1

    def test_accepts_workload(self, advisor, tiny_workload):
        recommendation = advisor.recommend(
            tiny_workload, budget_share=0.5
        )
        assert recommendation.workload is tiny_workload

    def test_accepts_query_objects(self, advisor):
        queries = [Query(0, "ORDERS", frozenset({0}), 10.0)]
        recommendation = advisor.recommend(queries, budget_share=0.5)
        assert recommendation.workload.query_count == 1

    def test_rejects_empty(self, advisor):
        with pytest.raises(ExperimentError, match="empty"):
            advisor.recommend([], budget_share=0.5)


class TestBudgets:
    def test_requires_exactly_one_budget(self, advisor):
        with pytest.raises(BudgetError, match="exactly one"):
            advisor.recommend(_SQL)
        with pytest.raises(BudgetError, match="exactly one"):
            advisor.recommend(_SQL, budget_share=0.5, budget_bytes=100)

    def test_absolute_budget_respected(self, advisor):
        recommendation = advisor.recommend(_SQL, budget_bytes=1_000_000)
        assert recommendation.result.memory <= 1_000_000

    def test_rejects_negative_bytes(self, advisor):
        with pytest.raises(BudgetError, match="budget_bytes"):
            advisor.recommend(_SQL, budget_bytes=-1)


class TestAlgorithms:
    @pytest.mark.parametrize(
        "algorithm",
        [
            "extend",
            "extend+swap",
            "cophy",
            "h1",
            "h2",
            "h3",
            "h4",
            "h4+skyline",
            "h5",
        ],
    )
    def test_all_algorithms_produce_recommendations(
        self, advisor, algorithm
    ):
        recommendation = advisor.recommend(
            _SQL, budget_share=0.5, algorithm=algorithm
        )
        assert recommendation.result.memory <= (
            recommendation.result.budget
        )
        assert recommendation.report.baseline_cost > 0

    def test_rejects_unknown_algorithm(self, advisor):
        with pytest.raises(ExperimentError, match="unknown algorithm"):
            advisor.recommend(_SQL, budget_share=0.5, algorithm="magic")

    def test_swap_never_worse_than_plain(self, advisor):
        plain = advisor.recommend(
            _SQL, budget_share=0.3, algorithm="extend"
        )
        swapped = advisor.recommend(
            _SQL, budget_share=0.3, algorithm="extend+swap"
        )
        assert swapped.result.total_cost <= (
            plain.result.total_cost * (1 + 1e-9)
        )


class TestRecommendation:
    def test_report_is_renderable(self, advisor):
        recommendation = advisor.recommend(_SQL, budget_share=0.5)
        text = recommendation.report.render(recommendation.workload)
        assert "# Index advisor report" in text

    def test_indexes_are_labels(self, advisor):
        recommendation = advisor.recommend(_SQL, budget_share=0.5)
        assert all(
            "(" in label and label.endswith(")")
            for label in recommendation.indexes
        )

    def test_shared_cache_across_calls(self, advisor):
        advisor.recommend(_SQL, budget_share=0.5)
        calls_after_first = advisor.optimizer.calls
        advisor.recommend(_SQL, budget_share=0.5)
        # Identical second run: everything cached.
        assert advisor.optimizer.calls == calls_after_first
