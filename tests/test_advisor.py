"""Tests for the high-level IndexAdvisor facade."""

from __future__ import annotations

import pytest

from repro.advisor import IndexAdvisor
from repro.exceptions import BudgetError, ExperimentError
from repro.workload.query import Query


@pytest.fixture
def advisor(tiny_schema) -> IndexAdvisor:
    return IndexAdvisor(tiny_schema)


_SQL = [
    ("SELECT * FROM ORDERS WHERE ID = ?", 100.0),
    ("SELECT * FROM ORDERS WHERE CUSTOMER = ? AND REGION = ?", 50.0),
    ("SELECT * FROM ITEMS WHERE ID = ?", 200.0),
]


class TestInputCoercion:
    def test_accepts_sql_templates(self, advisor):
        recommendation = advisor.recommend(_SQL, budget_share=0.5)
        assert recommendation.workload.query_count == 3
        assert recommendation.indexes

    def test_accepts_plain_sql_strings(self, advisor):
        recommendation = advisor.recommend(
            ["SELECT * FROM ORDERS WHERE ID = ?"], budget_share=0.5
        )
        assert recommendation.workload.query_count == 1

    def test_accepts_workload(self, advisor, tiny_workload):
        recommendation = advisor.recommend(
            tiny_workload, budget_share=0.5
        )
        assert recommendation.workload is tiny_workload

    def test_accepts_query_objects(self, advisor):
        queries = [Query(0, "ORDERS", frozenset({0}), 10.0)]
        recommendation = advisor.recommend(queries, budget_share=0.5)
        assert recommendation.workload.query_count == 1

    def test_rejects_empty(self, advisor):
        with pytest.raises(ExperimentError, match="empty"):
            advisor.recommend([], budget_share=0.5)


class TestBudgets:
    def test_requires_exactly_one_budget(self, advisor):
        with pytest.raises(BudgetError, match="exactly one"):
            advisor.recommend(_SQL)
        with pytest.raises(BudgetError, match="exactly one"):
            advisor.recommend(_SQL, budget_share=0.5, budget_bytes=100)

    def test_absolute_budget_respected(self, advisor):
        recommendation = advisor.recommend(_SQL, budget_bytes=1_000_000)
        assert recommendation.result.memory <= 1_000_000

    def test_rejects_negative_bytes(self, advisor):
        with pytest.raises(BudgetError, match="budget_bytes"):
            advisor.recommend(_SQL, budget_bytes=-1)


class TestAlgorithms:
    @pytest.mark.parametrize(
        "algorithm",
        [
            "extend",
            "extend+swap",
            "cophy",
            "h1",
            "h2",
            "h3",
            "h4",
            "h4+skyline",
            "h5",
        ],
    )
    def test_all_algorithms_produce_recommendations(
        self, advisor, algorithm
    ):
        recommendation = advisor.recommend(
            _SQL, budget_share=0.5, algorithm=algorithm
        )
        assert recommendation.result.memory <= (
            recommendation.result.budget
        )
        assert recommendation.report.baseline_cost > 0

    def test_rejects_unknown_algorithm(self, advisor):
        with pytest.raises(ExperimentError, match="unknown algorithm"):
            advisor.recommend(_SQL, budget_share=0.5, algorithm="magic")

    def test_swap_never_worse_than_plain(self, advisor):
        plain = advisor.recommend(
            _SQL, budget_share=0.3, algorithm="extend"
        )
        swapped = advisor.recommend(
            _SQL, budget_share=0.3, algorithm="extend+swap"
        )
        assert swapped.result.total_cost <= (
            plain.result.total_cost * (1 + 1e-9)
        )


class TestRecommendation:
    def test_report_is_renderable(self, advisor):
        recommendation = advisor.recommend(_SQL, budget_share=0.5)
        text = recommendation.report.render(recommendation.workload)
        assert "# Index advisor report" in text

    def test_indexes_are_labels(self, advisor):
        recommendation = advisor.recommend(_SQL, budget_share=0.5)
        assert all(
            "(" in label and label.endswith(")")
            for label in recommendation.indexes
        )

    def test_shared_cache_across_calls(self, advisor):
        advisor.recommend(_SQL, budget_share=0.5)
        calls_after_first = advisor.optimizer.calls
        advisor.recommend(_SQL, budget_share=0.5)
        # Identical second run: everything cached.
        assert advisor.optimizer.calls == calls_after_first


class TestResilienceIntegration:
    def test_resilience_property_exposes_the_wrapper(self, advisor):
        from repro.resilience import BreakerState, ResilientCostSource

        assert isinstance(advisor.resilience, ResilientCostSource)
        assert advisor.resilience.breaker.state is BreakerState.CLOSED

    def test_custom_cost_source_gets_analytic_fallback(
        self, tiny_schema
    ):
        class Dead:
            def query_cost(self, query, index):
                from repro.exceptions import TransientCostSourceError

                raise TransientCostSourceError("backend down")

        from repro.resilience import ResiliencePolicy

        advisor = IndexAdvisor(
            tiny_schema,
            cost_source=Dead(),
            resilience=ResiliencePolicy(
                max_retries=0, backoff_base_s=0.0
            ),
        )
        recommendation = advisor.recommend(_SQL, budget_share=0.5)
        assert recommendation.indexes
        assert advisor.resilience.statistics.fallback_calls > 0

    def test_per_call_policy_swap(self, advisor):
        from repro.resilience import ResiliencePolicy

        advisor.recommend(
            _SQL,
            budget_share=0.5,
            resilience=ResiliencePolicy(max_retries=7),
        )
        assert advisor.resilience.policy.max_retries == 7

    def test_solver_time_limit_reaches_cophy(
        self, advisor, monkeypatch
    ):
        import repro.advisor as advisor_module

        captured = {}
        real = advisor_module.CoPhyAlgorithm

        class Probe(real):
            def __init__(self, optimizer, **kwargs):
                captured["time_limit"] = kwargs.get("time_limit")
                super().__init__(optimizer, **kwargs)

        monkeypatch.setattr(advisor_module, "CoPhyAlgorithm", Probe)
        advisor.recommend(
            _SQL,
            budget_share=0.5,
            algorithm="cophy",
            solver_time_limit=42.0,
        )
        assert captured["time_limit"] == 42.0

    def test_solver_failure_falls_back_to_extend(
        self, tiny_schema, monkeypatch
    ):
        import repro.advisor as advisor_module
        from repro.core.steps import STATUS_DEGRADED
        from repro.exceptions import SolverTimeoutError
        from repro.telemetry import Telemetry

        class Doomed:
            def __init__(self, optimizer, **kwargs):
                pass

            def select(self, workload, budget, candidates, **kwargs):
                raise SolverTimeoutError("no incumbent")

        monkeypatch.setattr(advisor_module, "CoPhyAlgorithm", Doomed)
        telemetry = Telemetry()
        advisor = IndexAdvisor(tiny_schema, telemetry=telemetry)
        recommendation = advisor.recommend(
            _SQL, budget_share=0.5, algorithm="cophy"
        )
        result = recommendation.result
        assert result.status == STATUS_DEGRADED
        assert result.memory <= result.budget
        assert len(result.configuration) > 0
        metrics = telemetry.snapshot().metrics
        assert metrics["advisor.solver_fallbacks"] == 1

    def test_deadline_s_degrades_gracefully(self, advisor):
        from repro.core.steps import STATUS_DEGRADED

        recommendation = advisor.recommend(
            _SQL, budget_share=0.5, algorithm="extend", deadline_s=0.0
        )
        assert recommendation.result.status == STATUS_DEGRADED
        # Degradation is visible in the rendered summary too.
        assert "[degraded]" in recommendation.result.summary()


class TestRecommendSweep:
    SHARES = (0.2, 0.5, 0.8)

    def test_points_match_individual_recommends(self, advisor):
        sweep = advisor.recommend_sweep(
            _SQL, budget_shares=self.SHARES
        )
        assert not sweep.partial
        assert [
            point.budget_share for point in sweep.points
        ] == list(self.SHARES)
        for share in self.SHARES:
            single = advisor.recommend(_SQL, budget_share=share)
            point = sweep.sweep.point_for(share)
            assert point is not None
            assert (
                point.result.step_trace()
                == single.result.step_trace()
            )
            assert sweep.indexes_at(share) == single.indexes

    def test_indexes_at_unanswered_share_is_none(self, advisor):
        sweep = advisor.recommend_sweep(
            _SQL, budget_shares=self.SHARES
        )
        assert sweep.indexes_at(0.99) is None

    def test_frontier_is_monotone(self, advisor):
        sweep = advisor.recommend_sweep(
            _SQL, budget_shares=self.SHARES
        )
        costs = [
            point.result.total_cost
            for point in sorted(
                sweep.points, key=lambda p: p.budget_share
            )
        ]
        assert costs == sorted(costs, reverse=True)

    @pytest.mark.parametrize(
        "bad", [(), (0.3, 0.3), (0.0,), (-0.1,), (1.5,)]
    )
    def test_rejects_bad_shares(self, advisor, bad):
        with pytest.raises(ExperimentError):
            advisor.recommend_sweep(_SQL, budget_shares=bad)

    def test_rejects_unknown_kernel(self, advisor):
        with pytest.raises(ExperimentError, match="kernel"):
            advisor.recommend_sweep(
                _SQL,
                budget_shares=self.SHARES,
                cost_kernel="quantum",
            )

    def test_zero_deadline_degrades_to_partial(self, advisor):
        sweep = advisor.recommend_sweep(
            _SQL, budget_shares=self.SHARES, deadline_s=0.0
        )
        assert sweep.partial
        assert len(sweep.points) == 1
        # The one answered point is the largest share — execution is
        # descending — and it is flagged degraded.
        assert sweep.points[0].budget_share == max(self.SHARES)
        assert sweep.points[0].result.degraded

    def test_telemetry_snapshot_carries_sweep_gauges(self, tiny_schema):
        from repro.telemetry import Telemetry

        advisor = IndexAdvisor(tiny_schema, telemetry=Telemetry())
        sweep = advisor.recommend_sweep(
            _SQL, budget_shares=self.SHARES
        )
        metrics = sweep.telemetry.metrics
        assert metrics["sweep.points"] == len(self.SHARES)
        assert metrics["sweep.completed_points"] == len(self.SHARES)
        assert metrics["sweep.backend_calls"] > 0
        assert 0.0 <= metrics["sweep.reuse_rate"] <= 1.0
