"""Tests for the CoPhy BIP formulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cophy.model import build_problem, lp_size
from repro.exceptions import SolverError
from repro.indexes.candidates import syntactically_relevant_candidates
from repro.indexes.index import Index
from repro.indexes.memory import relative_budget


class TestBuildProblem:
    def test_counts_match_formulas(self, tiny_workload, tiny_optimizer):
        """Variables = |I| + Σ_j (|I_j| + 1); constraints =
        Q + Σ_j |I_j| + 1 (after the helps-nobody presolve)."""
        candidates = syntactically_relevant_candidates(tiny_workload, 2)
        budget = relative_budget(tiny_workload.schema, 0.5)
        problem = build_problem(
            tiny_workload, candidates, budget, tiny_optimizer
        )
        kept = len(problem.candidates)
        applicable_total = sum(
            1 for _, index in problem.z_options if index is not None
        )
        queries = tiny_workload.query_count
        assert problem.size.variables == (
            kept + queries + applicable_total
        )
        assert problem.size.constraints == (
            queries + applicable_total + 1
        )

    def test_presolve_drops_useless_candidates(
        self, tiny_workload, tiny_optimizer, tiny_schema
    ):
        """An index applicable to no query (or never beating the
        sequential scan) must not survive into the problem."""
        useless = Index.of(tiny_schema, (3, 2, 1))  # leading REGION
        useful = Index.of(tiny_schema, (0,))
        budget = relative_budget(tiny_workload.schema, 0.5)
        problem = build_problem(
            tiny_workload, [useless, useful], budget, tiny_optimizer
        )
        assert useful in problem.candidates

    def test_rejects_empty_candidates(self, tiny_workload, tiny_optimizer):
        with pytest.raises(SolverError, match="non-empty"):
            build_problem(tiny_workload, [], 100.0, tiny_optimizer)

    def test_rejects_negative_budget(
        self, tiny_workload, tiny_optimizer, tiny_schema
    ):
        with pytest.raises(SolverError, match="budget"):
            build_problem(
                tiny_workload,
                [Index.of(tiny_schema, (0,))],
                -1.0,
                tiny_optimizer,
            )

    def test_objective_uses_frequency_weighted_costs(
        self, tiny_workload, tiny_optimizer
    ):
        candidates = syntactically_relevant_candidates(tiny_workload, 1)
        budget = relative_budget(tiny_workload.schema, 1.0)
        problem = build_problem(
            tiny_workload, candidates, budget, tiny_optimizer
        )
        x_count = len(problem.candidates)
        for z_position, (query_position, index) in enumerate(
            problem.z_options
        ):
            query = tiny_workload.queries[query_position]
            if index is None:
                expected = query.frequency * (
                    tiny_optimizer.sequential_cost(query)
                )
            else:
                expected = query.frequency * tiny_optimizer.index_cost(
                    query, index
                )
            assert problem.objective[x_count + z_position] == (
                pytest.approx(expected)
            )

    def test_selection_extraction(self, tiny_workload, tiny_optimizer):
        candidates = syntactically_relevant_candidates(tiny_workload, 1)
        budget = relative_budget(tiny_workload.schema, 1.0)
        problem = build_problem(
            tiny_workload, candidates, budget, tiny_optimizer
        )
        solution = np.zeros(problem.constraint_matrix.shape[1])
        solution[0] = 1.0
        assert problem.selection_from(solution) == [
            problem.candidates[0]
        ]


class TestLpSize:
    def test_matches_paper_formula(self, tiny_workload):
        """lp_size (no presolve) must equal |I| + Q + Σ_j |I_j| variables
        and Q + Σ_j |I_j| + 1 constraints with leading-attribute
        applicability."""
        candidates = syntactically_relevant_candidates(tiny_workload, 2)
        size = lp_size(tiny_workload, candidates)
        applicable_total = 0
        for query in tiny_workload:
            for index in candidates:
                if index.is_applicable_to(query):
                    applicable_total += 1
        assert size.variables == (
            len(candidates) + tiny_workload.query_count + applicable_total
        )
        assert size.constraints == (
            tiny_workload.query_count + applicable_total + 1
        )

    def test_grows_linearly_in_candidates(self, small_workload):
        candidates = syntactically_relevant_candidates(small_workload, 3)
        half = candidates[: len(candidates) // 2]
        full_size = lp_size(small_workload, candidates)
        half_size = lp_size(small_workload, half)
        assert full_size.variables > half_size.variables
        assert full_size.constraints > half_size.constraints
