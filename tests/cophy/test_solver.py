"""Tests for the CoPhy solver against ground truth."""

from __future__ import annotations

import pytest

from repro.cophy.exhaustive import exhaustive_best_selection
from repro.cophy.solver import CoPhyAlgorithm
from repro.exceptions import SolverError
from repro.indexes.candidates import (
    single_attribute_candidates,
    syntactically_relevant_candidates,
)
from repro.indexes.memory import relative_budget


class TestCoPhyOptimality:
    @pytest.mark.parametrize("share", [0.2, 0.5, 1.0])
    def test_matches_exhaustive_on_singles(
        self, tiny_workload, tiny_optimizer, share
    ):
        candidates = single_attribute_candidates(tiny_workload)
        budget = relative_budget(tiny_workload.schema, share)
        solver = CoPhyAlgorithm(tiny_optimizer, mip_gap=0.0)
        result = solver.select(tiny_workload, budget, candidates)
        truth = exhaustive_best_selection(
            tiny_workload, budget, candidates, tiny_optimizer
        )
        assert result.total_cost == pytest.approx(
            truth.total_cost, rel=1e-9
        )

    def test_matches_exhaustive_on_multi_attribute(
        self, tiny_workload, tiny_optimizer
    ):
        candidates = syntactically_relevant_candidates(tiny_workload, 2)
        assert len(candidates) <= 20
        budget = relative_budget(tiny_workload.schema, 0.4)
        solver = CoPhyAlgorithm(tiny_optimizer, mip_gap=0.0)
        result = solver.select(tiny_workload, budget, candidates)
        truth = exhaustive_best_selection(
            tiny_workload, budget, candidates, tiny_optimizer
        )
        assert result.total_cost == pytest.approx(
            truth.total_cost, rel=1e-9
        )

    def test_zero_budget_selects_nothing(self, tiny_workload, tiny_optimizer):
        candidates = single_attribute_candidates(tiny_workload)
        solver = CoPhyAlgorithm(tiny_optimizer)
        result = solver.select(tiny_workload, 0.0, candidates)
        assert result.configuration.is_empty
        assert result.total_cost == pytest.approx(
            tiny_optimizer.workload_cost(tiny_workload, ())
        )

    def test_respects_budget(self, tiny_workload, tiny_optimizer):
        candidates = syntactically_relevant_candidates(tiny_workload, 2)
        budget = relative_budget(tiny_workload.schema, 0.3)
        result = CoPhyAlgorithm(tiny_optimizer).select(
            tiny_workload, budget, candidates
        )
        assert result.memory <= budget

    def test_reported_cost_matches_facade(self, tiny_workload, tiny_optimizer):
        candidates = syntactically_relevant_candidates(tiny_workload, 2)
        budget = relative_budget(tiny_workload.schema, 0.5)
        result = CoPhyAlgorithm(tiny_optimizer).select(
            tiny_workload, budget, candidates
        )
        assert result.total_cost == pytest.approx(
            tiny_optimizer.workload_cost(
                tiny_workload, result.configuration
            )
        )

    def test_lp_metadata_populated(self, tiny_workload, tiny_optimizer):
        candidates = syntactically_relevant_candidates(tiny_workload, 2)
        budget = relative_budget(tiny_workload.schema, 0.5)
        result = CoPhyAlgorithm(tiny_optimizer).select(
            tiny_workload, budget, candidates
        )
        assert result.variables > 0
        assert result.constraints > 0
        assert result.mip_gap == 0.05
        assert result.timed_out is False


class TestParameterValidation:
    def test_rejects_negative_gap(self, tiny_optimizer):
        with pytest.raises(SolverError, match="mip_gap"):
            CoPhyAlgorithm(tiny_optimizer, mip_gap=-0.1)

    def test_rejects_non_positive_time_limit(self, tiny_optimizer):
        with pytest.raises(SolverError, match="time_limit"):
            CoPhyAlgorithm(tiny_optimizer, time_limit=0.0)


class TestExhaustive:
    def test_caps_candidate_count(self, tiny_workload, tiny_optimizer):
        candidates = syntactically_relevant_candidates(tiny_workload, 3)
        if len(candidates) > 5:
            with pytest.raises(SolverError, match="capped"):
                exhaustive_best_selection(
                    tiny_workload,
                    1e12,
                    candidates,
                    tiny_optimizer,
                    max_candidates=5,
                )

    def test_prefers_smaller_memory_on_cost_ties(
        self, tiny_workload, tiny_optimizer, tiny_schema
    ):
        from repro.indexes.index import Index
        from repro.indexes.memory import index_memory

        # Two copies of effectively identical coverage: (0,) and (0, 2).
        small = Index.of(tiny_schema, (0,))
        big = Index.of(tiny_schema, (0, 2))
        budget = index_memory(tiny_schema, big) * 2
        result = exhaustive_best_selection(
            tiny_workload, budget, [small, big], tiny_optimizer
        )
        if result.total_cost == pytest.approx(
            tiny_optimizer.workload_cost(tiny_workload, (small,))
        ):
            assert small in result.configuration
