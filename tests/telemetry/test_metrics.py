"""Tests for counters, gauges, histograms, and the registry."""

from __future__ import annotations

import pytest

from repro.exceptions import TelemetryError
from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import Histogram, HistogramSummary


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value == 0
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(TelemetryError):
            counter.increment(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_exact_aggregates(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.record(value)
        summary = histogram.summary()
        assert summary.count == 4
        assert summary.total == 10.0
        assert summary.mean == 2.5
        assert summary.maximum == 4.0

    def test_percentiles_from_full_reservoir(self):
        histogram = Histogram("h", capacity=1000)
        for value in range(100):
            histogram.record(float(value))
        assert histogram.percentile(0.0) == 0.0
        assert histogram.percentile(0.5) == 50.0
        assert histogram.percentile(1.0) == 99.0

    def test_reservoir_is_bounded_but_aggregates_exact(self):
        histogram = Histogram("h", capacity=8)
        for value in range(1000):
            histogram.record(float(value))
        assert len(histogram._reservoir) == 8
        assert histogram.count == 1000
        assert histogram.maximum == 999.0
        assert histogram.total == sum(range(1000))

    def test_deterministic_across_runs(self):
        def build():
            histogram = Histogram("h", capacity=16)
            for value in range(500):
                histogram.record(float(value))
            return histogram.summary()

        assert build() == build()

    def test_empty_histogram_summary(self):
        summary = Histogram("h").summary()
        assert summary == HistogramSummary(
            count=0, total=0.0, mean=0.0, p50=0.0, p95=0.0, maximum=0.0
        )

    def test_invalid_quantile_rejected(self):
        with pytest.raises(TelemetryError):
            Histogram("h").percentile(1.5)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(TelemetryError):
            Histogram("h", capacity=0)


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_type_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError):
            registry.gauge("x")
        with pytest.raises(TelemetryError):
            registry.histogram("x")

    def test_contains_and_len(self):
        registry = MetricsRegistry()
        assert "x" not in registry
        assert len(registry) == 0
        registry.counter("x")
        registry.gauge("y")
        assert "x" in registry
        assert len(registry) == 2

    def test_snapshot_is_isolated(self):
        registry = MetricsRegistry()
        registry.counter("c").increment(2)
        registry.histogram("h").record(1.0)
        snapshot = registry.snapshot()
        registry.counter("c").increment(10)
        registry.histogram("h").record(100.0)
        assert snapshot["c"] == 2
        assert snapshot["h"].count == 1

    def test_snapshot_summarizes_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("h").record(2.0)
        snapshot = registry.snapshot()
        assert isinstance(snapshot["h"], HistogramSummary)
        assert snapshot["h"].to_dict()["max"] == 2.0
