"""End-to-end telemetry through the advisor and the Extend algorithm.

The acceptance criterion of the observability layer: a single
``recommend()`` run with a JSON-lines sink yields one span and one
chosen step event per selection step, per-step what-if deltas, and a
``(cost, memory)`` event sequence that reconstructs the efficient
frontier the algorithm reported.
"""

from __future__ import annotations

import pytest

from repro.advisor import IndexAdvisor
from repro.core.extend import ExtendAlgorithm
from repro.indexes.memory import relative_budget
from repro.telemetry import (
    NULL_TELEMETRY,
    JsonLinesSink,
    StepEvent,
    Telemetry,
)
from repro.telemetry.sinks import read_jsonl


@pytest.fixture
def traced_run(tiny_workload, tmp_path):
    """One advisor run with a JSONL sink; returns (recommendation,
    telemetry, trace records)."""
    path = tmp_path / "trace.jsonl"
    telemetry = Telemetry(sinks=(JsonLinesSink(path),))
    advisor = IndexAdvisor(tiny_workload.schema, telemetry=telemetry)
    recommendation = advisor.recommend(
        tiny_workload, budget_share=0.3, algorithm="extend"
    )
    telemetry.close()
    return recommendation, telemetry, read_jsonl(path)


class TestAdvisorIntegration:
    def test_one_chosen_event_per_selection_step(self, traced_run):
        recommendation, _, _ = traced_run
        chosen = recommendation.telemetry.chosen_events()
        assert len(chosen) == len(recommendation.result.steps)
        assert len(chosen) > 0

    def test_events_reconstruct_the_frontier(self, traced_run):
        recommendation, _, _ = traced_run
        chosen = recommendation.telemetry.chosen_events()
        expected = [
            (
                step.cost_before,
                step.cost_after,
                step.memory_before,
                step.memory_after,
            )
            for step in recommendation.result.steps
        ]
        observed = [
            (
                event.cost_before,
                event.cost_after,
                event.memory_before,
                event.memory_after,
            )
            for event in chosen
        ]
        assert observed == expected
        # The deltas chain: each step starts where the previous ended.
        for before, after in zip(chosen, chosen[1:]):
            assert after.cost_before == before.cost_after
            assert after.memory_before == before.memory_after

    def test_one_step_span_per_selection_step(self, traced_run):
        recommendation, telemetry, _ = traced_run
        step_spans = [
            span
            for span in telemetry.tracer.spans
            if span.name == "extend.step"
        ]
        applied = [
            span
            for span in step_spans
            if span.attributes.get("outcome") == "applied"
        ]
        assert len(applied) == len(recommendation.result.steps)
        for span in applied:
            assert span.attributes["whatif_calls"] >= 0
            assert span.attributes["cache_hits"] >= 0

    def test_whatif_deltas_on_chosen_events(self, traced_run):
        recommendation, _, _ = traced_run
        chosen = recommendation.telemetry.chosen_events()
        assert all(event.whatif_calls is not None for event in chosen)
        assert sum(event.whatif_calls for event in chosen) > 0

    def test_trace_file_replays_the_run(self, traced_run):
        recommendation, _, records = traced_run
        events = [
            StepEvent.from_dict(record)
            for record in records
            if record["type"] == "step"
        ]
        chosen = [event for event in events if event.chosen]
        assert tuple(chosen) == recommendation.telemetry.chosen_events()
        span_names = {
            record["name"]
            for record in records
            if record["type"] == "span"
        }
        assert {"advisor.recommend", "extend.select", "extend.step"} <= (
            span_names
        )
        [metrics] = [r for r in records if r["type"] == "metrics"]
        assert metrics["metrics"]["extend.steps"] == len(
            recommendation.result.steps
        )

    def test_whatif_gauges_published(self, traced_run):
        _, telemetry, _ = traced_run
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["whatif.calls"] > 0
        assert 0.0 <= snapshot["whatif.hit_rate"] <= 1.0


class TestDisabledTelemetry:
    def test_disabled_run_records_nothing(self, tiny_workload):
        advisor = IndexAdvisor(tiny_workload.schema)
        recommendation = advisor.recommend(
            tiny_workload, budget_share=0.3, algorithm="extend"
        )
        assert recommendation.telemetry.empty
        assert recommendation.result.steps  # the run itself still works

    def test_disabled_and_enabled_select_identically(
        self, tiny_workload, tiny_optimizer
    ):
        budget = relative_budget(tiny_workload.schema, 0.3)
        plain = ExtendAlgorithm(tiny_optimizer).select(
            tiny_workload, budget
        )
        traced = ExtendAlgorithm(
            tiny_optimizer, telemetry=Telemetry()
        ).select(tiny_workload, budget)
        assert plain.configuration == traced.configuration
        assert [
            (step.kind, step.index_after) for step in plain.steps
        ] == [(step.kind, step.index_after) for step in traced.steps]

    def test_null_telemetry_is_shared_and_inert(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.snapshot().empty
