"""Tests for step events and the sinks they flow through."""

from __future__ import annotations

import pytest

from repro.exceptions import TelemetryError
from repro.telemetry import (
    InMemorySink,
    JsonLinesSink,
    StepEvent,
    Telemetry,
)
from repro.telemetry.sinks import read_jsonl


def _chosen_event() -> StepEvent:
    return StepEvent(
        algorithm="H6",
        step_number=1,
        action="extension",
        table="ORDERS",
        index_before=(1,),
        index_after=(1, 3),
        chosen=True,
        benefit=120.5,
        memory_delta=4096,
        ratio=120.5 / 4096,
        cost_before=1000.0,
        cost_after=879.5,
        memory_before=40_000,
        memory_after=44_096,
        whatif_calls=12,
        cache_hits=7,
        candidates_considered=30,
    )


def _rejected_event() -> StepEvent:
    return StepEvent(
        algorithm="H6",
        step_number=1,
        action="new-index",
        table="ITEMS",
        index_before=None,
        index_after=(4,),
        chosen=False,
        benefit=80.0,
        memory_delta=8192,
        ratio=80.0 / 8192,
    )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "event", [_chosen_event(), _rejected_event()]
    )
    def test_to_dict_from_dict(self, event):
        assert StepEvent.from_dict(event.to_dict()) == event

    def test_to_dict_is_json_friendly(self):
        record = _chosen_event().to_dict()
        assert record["type"] == "step"
        assert record["index_before"] == [1]
        assert record["index_after"] == [1, 3]

    def test_from_dict_rejects_other_record_types(self):
        with pytest.raises(TelemetryError):
            StepEvent.from_dict({"type": "span", "name": "s"})

    def test_jsonl_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonLinesSink(path)
        events = [_chosen_event(), _rejected_event()]
        for event in events:
            sink.emit(event.to_dict())
        sink.close()
        restored = [
            StepEvent.from_dict(record) for record in read_jsonl(path)
        ]
        assert restored == events


class TestSinks:
    def test_in_memory_sink_filters_by_type(self):
        sink = InMemorySink()
        sink.emit({"type": "span", "name": "s"})
        sink.emit(_chosen_event().to_dict())
        assert len(sink.records_of("step")) == 1
        assert len(sink.records_of("span")) == 1

    def test_emit_after_close_raises(self, tmp_path):
        memory_sink = InMemorySink()
        memory_sink.close()
        with pytest.raises(TelemetryError):
            memory_sink.emit({"type": "step"})
        file_sink = JsonLinesSink(tmp_path / "t.jsonl")
        file_sink.close()
        with pytest.raises(TelemetryError):
            file_sink.emit({"type": "step"})

    def test_file_like_destination_stays_open(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            sink = JsonLinesSink(handle)
            sink.emit({"type": "step"})
            sink.close()
            assert not handle.closed


class TestTelemetrySession:
    def test_emit_step_records_and_forwards(self):
        sink = InMemorySink()
        telemetry = Telemetry(sinks=(sink,))
        event = _chosen_event()
        telemetry.emit_step(event)
        assert telemetry.events == [event]
        assert sink.records_of("step") == [event.to_dict()]

    def test_close_appends_final_metrics_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(sinks=(JsonLinesSink(path),))
        telemetry.metrics.counter("extend.steps").increment(3)
        telemetry.metrics.histogram("h").record(1.0)
        telemetry.close()
        telemetry.close()  # idempotent
        [record] = read_jsonl(path)
        assert record["type"] == "metrics"
        assert record["metrics"]["extend.steps"] == 3
        assert record["metrics"]["h"]["count"] == 1

    def test_snapshot_chosen_events(self):
        telemetry = Telemetry()
        telemetry.emit_step(_chosen_event())
        telemetry.emit_step(_rejected_event())
        snapshot = telemetry.snapshot()
        assert len(snapshot.events) == 2
        assert [event.chosen for event in snapshot.chosen_events()] == [
            True
        ]
