"""Tests for the span tracer and its no-op twin."""

from __future__ import annotations

import pytest

from repro.telemetry import NO_OP_TRACER, MetricsRegistry, Tracer
from repro.telemetry.sinks import InMemorySink


class TestNesting:
    def test_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = {span.name: span for span in tracer.spans}
        assert names["outer"].parent_name is None
        assert names["outer"].depth == 0
        assert names["inner"].parent_name == "outer"
        assert names["inner"].depth == 1

    def test_inner_spans_finish_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in tracer.spans] == ["inner", "outer"]

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_attributes_and_annotations(self):
        tracer = Tracer()
        with tracer.span("s", step=3) as span:
            span.annotate("outcome", "applied")
        finished = tracer.spans[0]
        assert finished.attributes == {"step": 3, "outcome": "applied"}

    def test_duration_is_monotone(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            live = span.duration_seconds
        assert span.finished
        assert span.duration_seconds >= live >= 0.0


class TestExceptionSafety:
    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("s"):
                raise ValueError("boom")
        span = tracer.spans[0]
        assert span.status == "error"
        assert span.attributes["error"] == "ValueError: boom"
        assert span.finished

    def test_abandoned_inner_spans_are_closed(self):
        tracer = Tracer()
        # Simulate an inner context that never exits (e.g. a generator
        # abandoned mid-iteration): closing the outer span must not
        # leave the stack corrupted.
        outer_context = tracer.span("outer")
        outer = outer_context.__enter__()
        inner_context = tracer.span("inner")
        inner_context.__enter__()
        outer_context.__exit__(None, None, None)
        assert tracer.current is None
        statuses = {span.name: span.status for span in tracer.spans}
        assert statuses == {"outer": "ok", "inner": "abandoned"}
        assert outer.finished


class TestIntegrations:
    def test_records_duration_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("extend.step"):
            pass
        with tracer.span("extend.step"):
            pass
        summary = registry.histogram("span.extend.step.seconds").summary()
        assert summary.count == 2
        assert summary.maximum >= 0.0

    def test_emits_finished_spans_to_sinks(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=(sink,))
        with tracer.span("s", w=0.3):
            pass
        [record] = sink.records
        assert record["type"] == "span"
        assert record["name"] == "s"
        assert record["attributes"] == {"w": 0.3}
        assert record["status"] == "ok"


class TestNoOpTracer:
    def test_disabled_and_stateless(self):
        assert NO_OP_TRACER.enabled is False
        assert NO_OP_TRACER.current is None
        assert NO_OP_TRACER.spans == ()

    def test_shared_context_is_reusable(self):
        first = NO_OP_TRACER.span("a", x=1)
        second = NO_OP_TRACER.span("b")
        assert first is second
        with first as span:
            span.annotate("ignored", True)
            assert span.attributes == {}
        assert NO_OP_TRACER.spans == ()

    def test_never_swallows_exceptions(self):
        with pytest.raises(RuntimeError):
            with NO_OP_TRACER.span("s"):
                raise RuntimeError("propagates")
