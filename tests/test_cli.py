"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestAdvise:
    def test_default_extend_run(self, capsys):
        exit_code = main(
            [
                "advise",
                "--tables", "2",
                "--attributes", "6",
                "--queries", "6",
                "--budget", "0.3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Recommended indexes:" in output
        assert "H6" in output

    def test_tpcc_workload(self, capsys):
        exit_code = main(
            ["advise", "--workload", "tpcc", "--budget", "0.4"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "STOCK" in output or "CUSTOMER" in output

    def test_cophy_algorithm(self, capsys):
        exit_code = main(
            [
                "advise",
                "--tables", "2",
                "--attributes", "6",
                "--queries", "6",
                "--algorithm", "cophy",
                "--candidates", "12",
                "--budget", "0.3",
            ]
        )
        assert exit_code == 0
        assert "CoPhy" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "algorithm", ["h1", "h2", "h3", "h4", "h4s", "h5"]
    )
    def test_heuristics(self, capsys, algorithm):
        exit_code = main(
            [
                "advise",
                "--tables", "2",
                "--attributes", "5",
                "--queries", "5",
                "--algorithm", algorithm,
                "--budget", "0.3",
            ]
        )
        assert exit_code == 0
        assert "Recommended indexes:" in capsys.readouterr().out

    def test_steps_flag(self, capsys):
        exit_code = main(
            [
                "advise",
                "--tables", "2",
                "--attributes", "5",
                "--queries", "5",
                "--budget", "0.3",
                "--steps",
            ]
        )
        assert exit_code == 0
        assert "Construction trace:" in capsys.readouterr().out

    def test_trace_file_and_metrics(self, capsys, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        exit_code = main(
            [
                "advise",
                "--tables", "2",
                "--attributes", "5",
                "--queries", "5",
                "--budget", "0.3",
                "--trace", str(trace_path),
                "--metrics",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Telemetry metrics:" in output
        assert "span.extend.step.seconds" in output
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line
        ]
        types = {record["type"] for record in records}
        assert {"span", "step", "metrics"} <= types

    def test_whatif_cache_line(self, capsys):
        exit_code = main(
            [
                "advise",
                "--tables", "2",
                "--attributes", "5",
                "--queries", "5",
                "--budget", "0.3",
            ]
        )
        assert exit_code == 0
        assert "What-if cache:" in capsys.readouterr().out

    def test_erp_workload(self, capsys):
        exit_code = main(
            [
                "advise",
                "--workload", "erp",
                "--scale", "0.02",
                "--budget", "0.05",
            ]
        )
        assert exit_code == 0
        assert "Recommended indexes:" in capsys.readouterr().out


class TestExperiment:
    def test_dispatches_to_experiment_module(self, capsys):
        exit_code = main(["experiment", "fig6"])
        assert exit_code == 0
        assert "Fig. 6" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["advise", "--algorithm", "magic"])
