"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestAdvise:
    def test_default_extend_run(self, capsys):
        exit_code = main(
            [
                "advise",
                "--tables", "2",
                "--attributes", "6",
                "--queries", "6",
                "--budget", "0.3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Recommended indexes:" in output
        assert "H6" in output

    def test_tpcc_workload(self, capsys):
        exit_code = main(
            ["advise", "--workload", "tpcc", "--budget", "0.4"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "STOCK" in output or "CUSTOMER" in output

    def test_cophy_algorithm(self, capsys):
        exit_code = main(
            [
                "advise",
                "--tables", "2",
                "--attributes", "6",
                "--queries", "6",
                "--algorithm", "cophy",
                "--candidates", "12",
                "--budget", "0.3",
            ]
        )
        assert exit_code == 0
        assert "CoPhy" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "algorithm", ["h1", "h2", "h3", "h4", "h4s", "h5"]
    )
    def test_heuristics(self, capsys, algorithm):
        exit_code = main(
            [
                "advise",
                "--tables", "2",
                "--attributes", "5",
                "--queries", "5",
                "--algorithm", algorithm,
                "--budget", "0.3",
            ]
        )
        assert exit_code == 0
        assert "Recommended indexes:" in capsys.readouterr().out

    def test_steps_flag(self, capsys):
        exit_code = main(
            [
                "advise",
                "--tables", "2",
                "--attributes", "5",
                "--queries", "5",
                "--budget", "0.3",
                "--steps",
            ]
        )
        assert exit_code == 0
        assert "Construction trace:" in capsys.readouterr().out

    def test_trace_file_and_metrics(self, capsys, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        exit_code = main(
            [
                "advise",
                "--tables", "2",
                "--attributes", "5",
                "--queries", "5",
                "--budget", "0.3",
                "--trace", str(trace_path),
                "--metrics",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Telemetry metrics:" in output
        assert "span.extend.step.seconds" in output
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line
        ]
        types = {record["type"] for record in records}
        assert {"span", "step", "metrics"} <= types

    def test_whatif_cache_line(self, capsys):
        exit_code = main(
            [
                "advise",
                "--tables", "2",
                "--attributes", "5",
                "--queries", "5",
                "--budget", "0.3",
            ]
        )
        assert exit_code == 0
        assert "What-if cache:" in capsys.readouterr().out

    def test_erp_workload(self, capsys):
        exit_code = main(
            [
                "advise",
                "--workload", "erp",
                "--scale", "0.02",
                "--budget", "0.05",
            ]
        )
        assert exit_code == 0
        assert "Recommended indexes:" in capsys.readouterr().out


class TestExperiment:
    def test_dispatches_to_experiment_module(self, capsys):
        exit_code = main(["experiment", "fig6"])
        assert exit_code == 0
        assert "Fig. 6" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["advise", "--algorithm", "magic"])


class TestServe:
    _BASE = [
        "serve",
        "--tables", "2",
        "--attributes", "5",
        "--queries", "5",
        "--max-concurrency", "1",
        "--queue-depth", "1",
    ]

    def _run(self, monkeypatch, capsys, argv, messages):
        import io

        lines = "\n".join(json.dumps(m) for m in messages) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        exit_code = main(argv)
        captured = capsys.readouterr()
        responses = [
            json.loads(line)
            for line in captured.out.splitlines()
            if line
        ]
        return exit_code, responses, captured.err

    def test_serve_loop_over_stdio(self, monkeypatch, capsys):
        exit_code, responses, err = self._run(
            monkeypatch,
            capsys,
            self._BASE,
            [
                {"id": 1, "op": "recommend",
                 "workload": "appendix-c", "budget_share": 0.3},
                {"id": 2, "op": "recommend",
                 "workload": "appendix-c", "budget_share": 0.3},
                {"id": 3, "op": "stats"},
                {"id": 4, "op": "shutdown"},
            ],
        )
        assert exit_code == 0
        first, second, stats, shutdown = responses
        assert first["ok"] and not first["warm"]
        assert second["ok"] and second["warm"]
        assert first["indexes"] == second["indexes"]
        assert stats["gauges"]["service.completed"] == 2
        assert shutdown["ok"]
        # Humans read stderr; stdout stays pure protocol.
        assert "repro serve" in err

    def test_serve_shares_cost_flags_with_advise(
        self, monkeypatch, capsys
    ):
        exit_code, responses, _ = self._run(
            monkeypatch,
            capsys,
            self._BASE + [
                "--cost-kernel", "scalar",
                "--parallelism", "2",
                "--default-deadline", "60",
            ],
            [
                {"op": "recommend", "workload": "appendix-c",
                 "budget_share": 0.3},
                {"op": "shutdown"},
            ],
        )
        assert exit_code == 0
        response = responses[0]
        assert response["ok"]
        assert response["status"] == "completed"
        # The CLI --parallelism default reaches the request.
        assert response["gauges"]["evaluation.parallelism"] == 2

    def test_serve_rejects_unknown_workload(self, monkeypatch, capsys):
        exit_code, responses, _ = self._run(
            monkeypatch,
            capsys,
            self._BASE,
            [
                {"op": "recommend", "workload": "nope",
                 "budget_share": 0.3},
                {"op": "shutdown"},
            ],
        )
        assert exit_code == 0
        assert responses[0]["error"] == "UnknownWorkloadError"

    def test_serve_with_fault_injection(self, monkeypatch, capsys):
        exit_code, responses, _ = self._run(
            monkeypatch,
            capsys,
            self._BASE + ["--fault-rate", "0.2", "--fault-seed", "7"],
            [
                {"op": "recommend", "workload": "appendix-c",
                 "budget_share": 0.3},
                {"op": "shutdown"},
            ],
        )
        assert exit_code == 0
        response = responses[0]
        assert response["ok"]
        assert response["status"] == "completed"
        assert response["gauges"]["resilience.attempts"] > 0


class TestResilienceFlags:
    _BASE = [
        "advise",
        "--tables", "2",
        "--attributes", "5",
        "--queries", "5",
        "--budget", "0.3",
    ]

    def test_fault_rate_prints_resilience_line(self, capsys):
        exit_code = main(
            self._BASE + ["--fault-rate", "0.2", "--fault-seed", "7"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Resilience:" in output
        assert "injected faults" in output
        assert "Recommended indexes:" in output

    def test_faulty_run_matches_clean_run(self, capsys):
        main(self._BASE)
        clean = capsys.readouterr().out
        main(self._BASE + ["--fault-rate", "0.2", "--max-retries", "10"])
        faulty = capsys.readouterr().out

        def recommended(output):
            return output.split("Recommended indexes:")[1].splitlines()

        assert recommended(faulty) == recommended(clean)

    def test_zero_deadline_reports_degraded(self, capsys):
        exit_code = main(self._BASE + ["--deadline", "0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "[degraded]" in output
        assert "note: run was degraded" in output

    def test_no_fault_rate_no_resilience_line(self, capsys):
        exit_code = main(self._BASE)
        assert exit_code == 0
        assert "Resilience:" not in capsys.readouterr().out

    def test_fault_metrics_reach_telemetry(self, capsys):
        exit_code = main(
            self._BASE + ["--fault-rate", "0.2", "--metrics"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "resilience.retries" in output
        assert "faults.injected_failures" in output

    def test_invalid_fault_rate_is_a_clean_error(self, capsys):
        exit_code = main(self._BASE + ["--fault-rate", "1.5"])
        assert exit_code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")


class TestErrorHandling:
    def test_repro_errors_exit_2_with_one_line(self, capsys):
        # A negative budget passes argparse but fails library
        # validation with a BudgetError (a ReproError).
        exit_code = main(
            [
                "advise",
                "--tables", "2",
                "--attributes", "5",
                "--queries", "5",
                "--budget", "-0.5",
            ]
        )
        assert exit_code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "\n" == captured.err[-1]
        assert captured.err.count("\n") == 1

    def test_non_repro_errors_propagate(self, monkeypatch):
        import repro.cli as cli_module

        def boom(arguments):
            raise RuntimeError("programming error")

        monkeypatch.setattr(cli_module, "_advise", boom)
        with pytest.raises(RuntimeError, match="programming error"):
            main(["advise", "--budget", "0.3"])


class TestArgumentValidation:
    """Non-positive numeric flags die in argparse, not deep in a
    half-started service."""

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_advise_rejects_non_positive_shards(self, capsys, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["advise", "--budget", "0.3", "--shards", value])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flag",
        [
            "--shards",
            "--max-concurrency",
            "--queue-depth",
            "--coalesce-max-pairs",
            "--whatif-cache-entries",
        ],
    )
    @pytest.mark.parametrize("value", ["0", "-1"])
    def test_serve_rejects_non_positive_integers(
        self, capsys, flag, value
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", flag, value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert flag in err
        assert "positive integer" in err

    @pytest.mark.parametrize("value", ["0", "-0.5", "nan"])
    def test_serve_rejects_non_positive_window(self, capsys, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--batch-window-ms", value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--batch-window-ms" in err
        assert "positive number" in err

    def test_non_numeric_values_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--queue-depth", "many"])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err


class TestBudgetSweep:
    _BASE = [
        "advise",
        "--tables", "2",
        "--attributes", "6",
        "--queries", "6",
    ]

    def test_sweep_prints_frontier(self, capsys):
        exit_code = main(self._BASE + ["--budget-sweep", "0.1:0.5:3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "budget sweep w=0.1..0.5 (3 points, shared engine)" in (
            output
        )
        assert "Backend what-if calls:" in output
        assert "Cost without indexes:" in output
        # One frontier row per share, in the caller's order.
        for share in ("0.1", "0.3", "0.5"):
            assert f"\n   {share}  " in output

    def test_sweep_metrics_include_gauges(self, capsys):
        exit_code = main(
            self._BASE + ["--budget-sweep", "0.1:0.5:3", "--metrics"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "sweep.backend_calls" in output
        assert "sweep.reuse_rate" in output

    def test_zero_deadline_prints_partial_note(self, capsys):
        exit_code = main(
            self._BASE
            + ["--budget-sweep", "0.1:0.5:3", "--deadline", "0"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "partial frontier" in output
        assert "(degraded)" in output

    @pytest.mark.parametrize(
        "spec",
        [
            "0.5:0.1:3",  # descending range
            "0.1:1.5:3",  # share above 1
            "0.1:0.5",  # missing STEPS
            "a:b:c",  # non-numeric
            "0.1:0.5:0",  # zero points
            "-0.1:0.5:3",  # negative low
        ],
    )
    def test_malformed_specs_are_usage_errors(self, capsys, spec):
        with pytest.raises(SystemExit) as excinfo:
            main(self._BASE + ["--budget-sweep", spec])
        assert excinfo.value.code == 2
        assert "--budget-sweep" in capsys.readouterr().err

    def test_rejects_non_extend_algorithms(self, capsys):
        exit_code = main(
            self._BASE
            + ["--budget-sweep", "0.1:0.5:3", "--algorithm", "h2"]
        )
        assert exit_code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "--algorithm" in captured.err
        assert captured.err.count("\n") == 1
