"""Tests for the advisor report."""

from __future__ import annotations

import pytest

from repro.core.extend import ExtendAlgorithm
from repro.exceptions import ExperimentError
from repro.indexes.memory import relative_budget
from repro.report import build_report


@pytest.fixture
def selection(tiny_workload, tiny_optimizer):
    budget = relative_budget(tiny_workload.schema, 0.5)
    return ExtendAlgorithm(tiny_optimizer).select(tiny_workload, budget)


class TestBuildReport:
    def test_improvement_factor(self, tiny_workload, tiny_optimizer, selection):
        report = build_report(tiny_workload, tiny_optimizer, selection)
        assert report.improvement_factor > 1.0
        assert report.baseline_cost == pytest.approx(
            tiny_optimizer.workload_cost(tiny_workload, ())
        )

    def test_one_entry_per_selected_index(
        self, tiny_workload, tiny_optimizer, selection
    ):
        report = build_report(tiny_workload, tiny_optimizer, selection)
        assert len(report.indexes) == len(selection.configuration)
        assert {entry.index for entry in report.indexes} == set(
            selection.configuration
        )

    def test_entries_sorted_by_marginal_benefit(
        self, tiny_workload, tiny_optimizer, selection
    ):
        report = build_report(tiny_workload, tiny_optimizer, selection)
        benefits = [entry.marginal_benefit for entry in report.indexes]
        assert benefits == sorted(benefits, reverse=True)

    def test_marginal_benefits_nonnegative(
        self, tiny_workload, tiny_optimizer, selection
    ):
        report = build_report(tiny_workload, tiny_optimizer, selection)
        for entry in report.indexes:
            assert entry.marginal_benefit >= -1e-9

    def test_serves_references_real_queries(
        self, tiny_workload, tiny_optimizer, selection
    ):
        report = build_report(tiny_workload, tiny_optimizer, selection)
        valid_ids = {query.query_id for query in tiny_workload}
        for entry in report.indexes:
            assert set(entry.serves) <= valid_ids

    def test_residual_queries_sorted_and_capped(
        self, tiny_workload, tiny_optimizer, selection
    ):
        report = build_report(
            tiny_workload, tiny_optimizer, selection, hot_spot_count=3
        )
        assert len(report.residual_queries) == 3
        costs = [cost for _, cost in report.residual_queries]
        assert costs == sorted(costs, reverse=True)

    def test_rejects_negative_hot_spot_count(
        self, tiny_workload, tiny_optimizer, selection
    ):
        with pytest.raises(ExperimentError, match="hot_spot_count"):
            build_report(
                tiny_workload,
                tiny_optimizer,
                selection,
                hot_spot_count=-1,
            )


class TestRender:
    def test_render_contains_key_sections(
        self, tiny_workload, tiny_optimizer, selection
    ):
        report = build_report(tiny_workload, tiny_optimizer, selection)
        text = report.render(tiny_workload)
        assert "# Index advisor report" in text
        assert "## Selected indexes" in text
        assert "x better" in text
        for entry in report.indexes:
            assert entry.index.label(tiny_workload.schema) in text

    def test_render_mentions_maintenance_for_write_workloads(
        self, tiny_schema
    ):
        from repro.cost.model import CostModel
        from repro.cost.whatif import AnalyticalCostSource, WhatIfOptimizer
        from repro.workload.query import Query, QueryKind, Workload

        workload = Workload(
            tiny_schema,
            [
                Query(0, "ORDERS", frozenset({0}), 100.0),
                Query(
                    1,
                    "ORDERS",
                    frozenset({0}),
                    50.0,
                    kind=QueryKind.UPDATE,
                ),
            ],
        )
        optimizer = WhatIfOptimizer(
            AnalyticalCostSource(CostModel(tiny_schema))
        )
        budget = relative_budget(tiny_schema, 1.0)
        result = ExtendAlgorithm(optimizer).select(workload, budget)
        if result.configuration.is_empty:
            pytest.skip("maintenance outweighed all read benefits")
        report = build_report(workload, optimizer, result)
        assert "write maintenance" in report.render(workload)
