"""Tests for the resilience policy and circuit breaker."""

from __future__ import annotations

import pytest

from repro.exceptions import BudgetError
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    ManualClock,
    ResiliencePolicy,
    ResilienceStatistics,
)
from repro.telemetry import MetricsRegistry


class TestResiliencePolicy:
    def test_defaults_are_valid(self):
        policy = ResiliencePolicy()
        assert policy.max_retries == 3
        assert policy.breaker_threshold == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
            {"backoff_cap_s": -1.0},
            {"jitter": 1.5},
            {"jitter": -0.1},
            {"call_timeout_s": 0.0},
            {"breaker_threshold": 0},
            {"breaker_reset_s": -1.0},
        ],
    )
    def test_rejects_invalid_knobs(self, kwargs):
        with pytest.raises(BudgetError):
            ResiliencePolicy(**kwargs)

    def test_backoff_grows_exponentially(self):
        policy = ResiliencePolicy(
            backoff_base_s=0.1, backoff_cap_s=100.0, jitter=0.0
        )
        assert policy.backoff_seconds(0, 0.0) == pytest.approx(0.1)
        assert policy.backoff_seconds(1, 0.0) == pytest.approx(0.2)
        assert policy.backoff_seconds(3, 0.0) == pytest.approx(0.8)

    def test_backoff_respects_cap(self):
        policy = ResiliencePolicy(
            backoff_base_s=1.0, backoff_cap_s=2.5, jitter=0.0
        )
        assert policy.backoff_seconds(10, 0.0) == 2.5

    def test_jitter_adds_up_to_the_fraction(self):
        policy = ResiliencePolicy(
            backoff_base_s=1.0, backoff_cap_s=100.0, jitter=0.5
        )
        assert policy.backoff_seconds(0, 1.0) == pytest.approx(1.5)
        assert policy.backoff_seconds(0, 0.0) == pytest.approx(1.0)


class TestCircuitBreaker:
    def make(self, threshold=3, reset_s=10.0):
        clock = ManualClock()
        return CircuitBreaker(threshold, reset_s, clock=clock), clock

    def test_starts_closed(self):
        breaker, _ = self.make()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows_call()

    def test_trips_after_threshold_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allows_call()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allows_call()
        assert breaker.open_count == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_after_cooldown(self):
        breaker, clock = self.make(threshold=1, reset_s=10.0)
        breaker.record_failure()
        assert not breaker.allows_call()
        clock.advance(10.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allows_call()

    def test_half_open_success_closes(self):
        breaker, clock = self.make(threshold=1, reset_s=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        breaker, clock = self.make(threshold=3, reset_s=5.0)
        breaker.force_open()
        clock.advance(5.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()  # single failure suffices in half-open
        assert breaker.state is BreakerState.OPEN
        assert breaker.open_count == 2

    def test_force_open_and_closed(self):
        breaker, _ = self.make()
        breaker.force_open()
        assert not breaker.allows_call()
        breaker.force_closed()
        assert breaker.state is BreakerState.CLOSED


class TestResilienceStatistics:
    def test_copy_is_independent(self):
        statistics = ResilienceStatistics(retries=3)
        snapshot = statistics.copy()
        statistics.retries += 1
        assert snapshot.retries == 3

    def test_publish_bridges_gauges(self):
        registry = MetricsRegistry()
        statistics = ResilienceStatistics(
            attempts=10,
            retries=4,
            transient_failures=3,
            timeouts=1,
            breaker_short_circuits=2,
            stale_cache_hits=5,
            fallback_calls=6,
            unavailable=0,
            breaker_state=BreakerState.OPEN,
        )
        statistics.publish(registry)
        snapshot = registry.snapshot()
        assert snapshot["resilience.attempts"] == 10
        assert snapshot["resilience.retries"] == 4
        assert snapshot["resilience.transient_failures"] == 3
        assert snapshot["resilience.timeouts"] == 1
        assert snapshot["resilience.breaker_short_circuits"] == 2
        assert snapshot["resilience.stale_cache_hits"] == 5
        assert snapshot["resilience.fallback_calls"] == 6
        assert snapshot["resilience.breaker_state"] == 2.0
