"""Tests for :class:`repro.resilience.Deadline`."""

from __future__ import annotations

import pytest

from repro.exceptions import BudgetError, DeadlineExceededError
from repro.resilience import Deadline, ManualClock


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline.none()
        assert deadline.unlimited
        assert not deadline.expired
        assert deadline.remaining() == float("inf")
        deadline.check()  # never raises

    def test_none_seconds_is_unlimited(self):
        assert Deadline(None).unlimited

    def test_expires_with_the_clock(self):
        clock = ManualClock()
        deadline = Deadline(5.0, clock=clock)
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(5.0)
        clock.advance(4.0)
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_remaining_clamped_at_zero(self):
        clock = ManualClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(10.0)
        assert deadline.remaining() == 0.0

    def test_zero_seconds_expires_immediately(self):
        clock = ManualClock()
        assert Deadline(0.0, clock=clock).expired

    def test_check_raises_once_expired(self):
        clock = ManualClock()
        deadline = Deadline(1.0, clock=clock)
        deadline.check("selection")
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError, match="selection"):
            deadline.check("selection")

    def test_rejects_negative_budget(self):
        with pytest.raises(BudgetError):
            Deadline(-1.0)

    def test_after_alias(self):
        clock = ManualClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.seconds == 2.0
        assert not deadline.expired
