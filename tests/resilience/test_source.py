"""Tests for :class:`repro.resilience.ResilientCostSource`."""

from __future__ import annotations

import pytest

from repro.cost.model import CostModel
from repro.cost.whatif import AnalyticalCostSource, WhatIfOptimizer
from repro.exceptions import (
    CostSourceUnavailableError,
    TransientCostSourceError,
)
from repro.resilience import (
    BreakerState,
    FaultInjectingCostSource,
    ManualClock,
    ResiliencePolicy,
    ResilientCostSource,
    fail_n_then_succeed,
)

NO_SLEEP = ResiliencePolicy(backoff_base_s=0.0)


@pytest.fixture
def analytical(tiny_workload):
    return AnalyticalCostSource(CostModel(tiny_workload.schema))


@pytest.fixture
def a_query(tiny_workload):
    return tiny_workload.queries[0]


class TestHappyPath:
    def test_transparent_when_backend_is_healthy(
        self, analytical, tiny_workload
    ):
        resilient = ResilientCostSource(analytical, policy=NO_SLEEP)
        for query in tiny_workload:
            assert resilient.query_cost(query, None) == (
                analytical.query_cost(query, None)
            )
        statistics = resilient.statistics
        assert statistics.retries == 0
        assert statistics.fallback_calls == 0
        assert statistics.breaker_state is BreakerState.CLOSED

    def test_advertises_optional_methods_of_the_chain(self, analytical):
        resilient = ResilientCostSource(analytical)
        assert callable(getattr(resilient, "maintenance_cost", None))
        assert callable(getattr(resilient, "multi_index_cost", None))

    def test_hides_methods_nobody_supports(self, a_query):
        class Minimal:
            def query_cost(self, query, index):
                return 2.0

        resilient = ResilientCostSource(Minimal(), policy=NO_SLEEP)
        assert getattr(resilient, "maintenance_cost", None) is None
        assert getattr(resilient, "multi_index_cost", None) is None
        # WhatIfOptimizer's feature detection then treats maintenance
        # as zero instead of calling a phantom method.
        optimizer = WhatIfOptimizer(resilient)
        assert optimizer.sequential_cost(a_query) == 2.0


class TestRetries:
    def test_retries_through_transient_failures(
        self, analytical, a_query
    ):
        flaky = FaultInjectingCostSource(
            analytical, script=fail_n_then_succeed(2)
        )
        resilient = ResilientCostSource(
            flaky, policy=ResiliencePolicy(max_retries=3,
                                           backoff_base_s=0.0)
        )
        cost = resilient.query_cost(a_query, None)
        assert cost == analytical.query_cost(a_query, None)
        assert resilient.statistics.retries == 2
        assert resilient.statistics.transient_failures == 2

    def test_exhausted_retries_raise_without_fallback(
        self, analytical, a_query
    ):
        flaky = FaultInjectingCostSource(analytical, failure_rate=1.0)
        resilient = ResilientCostSource(
            flaky, policy=ResiliencePolicy(max_retries=2,
                                           backoff_base_s=0.0)
        )
        with pytest.raises(CostSourceUnavailableError):
            resilient.query_cost(a_query, None)
        assert resilient.statistics.attempts == 3  # 1 try + 2 retries
        assert resilient.statistics.unavailable == 1

    def test_backoff_sleeps_grow_exponentially(
        self, analytical, a_query
    ):
        sleeps: list[float] = []
        flaky = FaultInjectingCostSource(
            analytical, script=fail_n_then_succeed(3)
        )
        resilient = ResilientCostSource(
            flaky,
            policy=ResiliencePolicy(
                max_retries=3,
                backoff_base_s=0.1,
                backoff_cap_s=10.0,
                jitter=0.0,
            ),
            sleep=sleeps.append,
        )
        resilient.query_cost(a_query, None)
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])

    def test_jitter_is_seeded_and_reproducible(
        self, analytical, a_query
    ):
        def run():
            sleeps: list[float] = []
            flaky = FaultInjectingCostSource(
                analytical, script=fail_n_then_succeed(3)
            )
            resilient = ResilientCostSource(
                flaky,
                policy=ResiliencePolicy(
                    max_retries=3, backoff_base_s=0.1, jitter=0.5
                ),
                sleep=sleeps.append,
                seed=99,
            )
            resilient.query_cost(a_query, None)
            return sleeps

        first, second = run(), run()
        assert first == second
        assert first != [0.1, 0.2, 0.4]  # jitter actually applied


class TestTimeouts:
    def test_slow_calls_count_as_transient_failures(
        self, analytical, a_query
    ):
        clock = ManualClock()
        flaky = FaultInjectingCostSource(
            analytical,
            script=["slow", "ok"],
            spike_latency_s=5.0,
            clock=clock,
        )
        resilient = ResilientCostSource(
            flaky,
            policy=ResiliencePolicy(
                max_retries=1, backoff_base_s=0.0, call_timeout_s=1.0
            ),
            clock=clock,
        )
        cost = resilient.query_cost(a_query, None)
        assert cost == analytical.query_cost(a_query, None)
        assert resilient.statistics.timeouts == 1
        assert resilient.statistics.retries == 1

    def test_fast_calls_do_not_time_out(self, analytical, a_query):
        clock = ManualClock()
        source = FaultInjectingCostSource(
            analytical, base_latency_s=0.1, clock=clock
        )
        resilient = ResilientCostSource(
            source,
            policy=ResiliencePolicy(
                backoff_base_s=0.0, call_timeout_s=1.0
            ),
            clock=clock,
        )
        resilient.query_cost(a_query, None)
        assert resilient.statistics.timeouts == 0


class TestFallbackChain:
    def test_stale_cache_serves_known_answers(self, analytical, a_query):
        flaky = FaultInjectingCostSource(
            analytical, script=["ok", "fail"]
        )
        resilient = ResilientCostSource(
            flaky, policy=ResiliencePolicy(max_retries=0,
                                           backoff_base_s=0.0)
        )
        first = resilient.query_cost(a_query, None)
        second = resilient.query_cost(a_query, None)  # injected failure
        assert second == first
        assert resilient.statistics.stale_cache_hits == 1
        assert resilient.stale_cache_size == 1

    def test_fallback_source_prices_unknown_answers(
        self, analytical, a_query
    ):
        dead = FaultInjectingCostSource(analytical, failure_rate=1.0)
        resilient = ResilientCostSource(
            dead,
            policy=ResiliencePolicy(max_retries=1, backoff_base_s=0.0),
            fallbacks=(analytical,),
        )
        cost = resilient.query_cost(a_query, None)
        assert cost == analytical.query_cost(a_query, None)
        assert resilient.statistics.fallback_calls == 1

    def test_stale_cache_preferred_over_fallback(
        self, analytical, a_query
    ):
        class CountingFallback:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def query_cost(self, query, index):
                self.calls += 1
                return self.inner.query_cost(query, index)

        counting = CountingFallback(analytical)
        flaky = FaultInjectingCostSource(
            analytical, script=["ok", "fail"]
        )
        resilient = ResilientCostSource(
            flaky,
            policy=ResiliencePolicy(max_retries=0, backoff_base_s=0.0),
            fallbacks=(counting,),
        )
        resilient.query_cost(a_query, None)
        resilient.query_cost(a_query, None)
        assert counting.calls == 0

    def test_unavailable_when_chain_exhausted(self, a_query):
        class Dead:
            def query_cost(self, query, index):
                raise TransientCostSourceError("down")

        resilient = ResilientCostSource(
            Dead(), policy=ResiliencePolicy(max_retries=0,
                                            backoff_base_s=0.0)
        )
        with pytest.raises(CostSourceUnavailableError):
            resilient.query_cost(a_query, None)


class TestBreaker:
    def test_breaker_opens_after_threshold_exhaustions(
        self, analytical, a_query, tiny_workload
    ):
        dead = FaultInjectingCostSource(analytical, failure_rate=1.0)
        resilient = ResilientCostSource(
            dead,
            policy=ResiliencePolicy(
                max_retries=0, backoff_base_s=0.0, breaker_threshold=2
            ),
            fallbacks=(analytical,),
        )
        queries = tiny_workload.queries
        resilient.query_cost(queries[0], None)
        resilient.query_cost(queries[1], None)
        assert resilient.breaker.state is BreakerState.OPEN
        # Subsequent calls skip the dead backend entirely.
        calls_before = dead.statistics.calls
        resilient.query_cost(queries[2], None)
        assert dead.statistics.calls == calls_before
        assert resilient.statistics.breaker_short_circuits == 1

    def test_half_open_trial_recovers(self, analytical, a_query):
        clock = ManualClock()
        flaky = FaultInjectingCostSource(
            analytical, script=fail_n_then_succeed(1)
        )
        resilient = ResilientCostSource(
            flaky,
            policy=ResiliencePolicy(
                max_retries=0,
                backoff_base_s=0.0,
                breaker_threshold=1,
                breaker_reset_s=5.0,
            ),
            fallbacks=(analytical,),
            clock=clock,
        )
        resilient.query_cost(a_query, None)  # trips the breaker
        assert resilient.breaker.state is BreakerState.OPEN
        clock.advance(5.0)
        cost = resilient.query_cost(a_query, None)  # half-open trial
        assert cost == analytical.query_cost(a_query, None)
        assert resilient.breaker.state is BreakerState.CLOSED

    def test_forced_open_short_circuits(self, analytical, a_query):
        resilient = ResilientCostSource(
            analytical, policy=NO_SLEEP, fallbacks=(analytical,)
        )
        resilient.breaker.force_open()
        resilient.query_cost(a_query, None)
        assert resilient.statistics.breaker_short_circuits == 1
        assert resilient.statistics.attempts == 0

    def test_policy_swap_keeps_breaker_state(self, analytical):
        resilient = ResilientCostSource(analytical, policy=NO_SLEEP)
        resilient.breaker.force_open()
        resilient.policy = ResiliencePolicy(max_retries=9)
        assert resilient.policy.max_retries == 9
        assert not resilient.breaker.allows_call()


class TestUnderTheFacade:
    def test_whatif_results_identical_under_20pct_faults(
        self, analytical, tiny_workload
    ):
        """The optimizer's view of costs is unchanged by injected
        faults — retries and fallbacks are fully transparent."""
        clean = WhatIfOptimizer(analytical)
        flaky = FaultInjectingCostSource(
            analytical, failure_rate=0.2, seed=202
        )
        resilient = WhatIfOptimizer(
            ResilientCostSource(
                flaky,
                policy=ResiliencePolicy(max_retries=10,
                                        backoff_base_s=0.0),
                fallbacks=(analytical,),
            )
        )
        for query in tiny_workload:
            assert resilient.sequential_cost(query) == (
                clean.sequential_cost(query)
            )
