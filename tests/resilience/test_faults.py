"""Tests for the deterministic fault-injection harness."""

from __future__ import annotations

import pytest

from repro.cost.model import CostModel
from repro.cost.whatif import AnalyticalCostSource
from repro.exceptions import ExperimentError, TransientCostSourceError
from repro.resilience import (
    FaultInjectingCostSource,
    ManualClock,
    fail_n_then_succeed,
)
from repro.telemetry import MetricsRegistry


@pytest.fixture
def analytical(tiny_workload):
    return AnalyticalCostSource(CostModel(tiny_workload.schema))


@pytest.fixture
def a_query(tiny_workload):
    return tiny_workload.queries[0]


class TestScripts:
    def test_fail_n_then_succeed(self, analytical, a_query):
        source = FaultInjectingCostSource(
            analytical, script=fail_n_then_succeed(2)
        )
        for _ in range(2):
            with pytest.raises(TransientCostSourceError):
                source.query_cost(a_query, None)
        cost = source.query_cost(a_query, None)
        assert cost == analytical.query_cost(a_query, None)
        assert source.statistics.injected_failures == 2
        assert source.statistics.calls == 3

    def test_exhausted_script_means_healthy(self, analytical, a_query):
        source = FaultInjectingCostSource(analytical, script=["fail"])
        with pytest.raises(TransientCostSourceError):
            source.query_cost(a_query, None)
        for _ in range(5):
            source.query_cost(a_query, None)
        assert source.statistics.injected_failures == 1

    def test_explicit_outcome_sequence(self, analytical, a_query):
        clock = ManualClock()
        source = FaultInjectingCostSource(
            analytical,
            script=["ok", "slow", "fail"],
            spike_latency_s=3.0,
            clock=clock,
        )
        source.query_cost(a_query, None)
        assert clock.now == 0.0
        source.query_cost(a_query, None)  # slow
        assert clock.now == 3.0
        with pytest.raises(TransientCostSourceError):
            source.query_cost(a_query, None)

    def test_rejects_unknown_token(self, analytical, a_query):
        source = FaultInjectingCostSource(analytical, script=["boom"])
        with pytest.raises(ExperimentError, match="boom"):
            source.query_cost(a_query, None)

    def test_fail_n_rejects_negative(self):
        with pytest.raises(ExperimentError):
            fail_n_then_succeed(-1)


class TestSeededFaults:
    def test_same_seed_replays_identically(self, analytical, a_query):
        outcomes = []
        for _ in range(2):
            source = FaultInjectingCostSource(
                analytical, failure_rate=0.5, seed=123
            )
            run = []
            for _ in range(30):
                try:
                    source.query_cost(a_query, None)
                    run.append("ok")
                except TransientCostSourceError:
                    run.append("fail")
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
        assert "fail" in outcomes[0]
        assert "ok" in outcomes[0]

    def test_different_seeds_differ(self, analytical, a_query):
        def run(seed):
            source = FaultInjectingCostSource(
                analytical, failure_rate=0.5, seed=seed
            )
            result = []
            for _ in range(30):
                try:
                    source.query_cost(a_query, None)
                    result.append("ok")
                except TransientCostSourceError:
                    result.append("fail")
            return result

        assert run(1) != run(2)

    def test_zero_rate_never_fails(self, analytical, a_query):
        source = FaultInjectingCostSource(analytical, failure_rate=0.0)
        for _ in range(50):
            source.query_cost(a_query, None)
        assert source.statistics.injected_failures == 0

    def test_rejects_invalid_rates(self, analytical):
        with pytest.raises(ExperimentError):
            FaultInjectingCostSource(analytical, failure_rate=1.5)
        with pytest.raises(ExperimentError):
            FaultInjectingCostSource(analytical, spike_rate=-0.1)


class TestLatency:
    def test_base_latency_advances_the_clock(self, analytical, a_query):
        clock = ManualClock()
        source = FaultInjectingCostSource(
            analytical, base_latency_s=0.5, clock=clock
        )
        source.query_cost(a_query, None)
        source.query_cost(a_query, None)
        assert clock.now == pytest.approx(1.0)

    def test_spikes_are_seeded(self, analytical, a_query):
        clock = ManualClock()
        source = FaultInjectingCostSource(
            analytical,
            spike_rate=1.0,
            spike_latency_s=2.0,
            clock=clock,
            seed=7,
        )
        source.query_cost(a_query, None)
        assert source.statistics.injected_latency_spikes == 1
        assert clock.now == pytest.approx(2.0)


class TestProtocolMirroring:
    def test_mirrors_optional_methods(self, analytical, a_query,
                                      tiny_workload):
        source = FaultInjectingCostSource(analytical)
        # The analytic backend supports both optional methods.
        assert callable(getattr(source, "maintenance_cost", None))
        assert callable(getattr(source, "multi_index_cost", None))

    def test_hides_unsupported_methods(self, a_query):
        class Minimal:
            def query_cost(self, query, index):
                return 1.0

        source = FaultInjectingCostSource(Minimal())
        assert getattr(source, "maintenance_cost", None) is None
        assert getattr(source, "multi_index_cost", None) is None
        assert source.query_cost(a_query, None) == 1.0

    def test_statistics_publish(self, analytical, a_query):
        source = FaultInjectingCostSource(analytical)
        source.query_cost(a_query, None)
        registry = MetricsRegistry()
        source.statistics.publish(registry)
        assert registry.snapshot()["faults.calls"] == 1
