"""Tests for JSON persistence."""

from __future__ import annotations

import pytest

from repro.core.extend import ExtendAlgorithm
from repro.exceptions import ReproError
from repro.indexes.configuration import IndexConfiguration
from repro.indexes.index import Index
from repro.indexes.memory import relative_budget
from repro.persistence import (
    configuration_from_dict,
    configuration_to_dict,
    load_json,
    result_from_dict,
    result_to_dict,
    save_json,
    schema_from_dict,
    schema_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.workload.query import Query, QueryKind, Workload


class TestSchemaRoundTrip:
    def test_exact(self, tiny_schema):
        assert schema_from_dict(schema_to_dict(tiny_schema)) == tiny_schema

    def test_preserves_attribute_ids(self, tiny_schema):
        restored = schema_from_dict(schema_to_dict(tiny_schema))
        for attribute in tiny_schema.iter_attributes():
            clone = restored.attribute(attribute.id)
            assert clone.qualified_name == attribute.qualified_name

    def test_generated_schema(self, small_workload):
        schema = small_workload.schema
        assert schema_from_dict(schema_to_dict(schema)) == schema


class TestWorkloadRoundTrip:
    def test_exact(self, tiny_workload):
        restored = workload_from_dict(workload_to_dict(tiny_workload))
        assert restored.query_count == tiny_workload.query_count
        for original, clone in zip(tiny_workload, restored):
            assert original == clone

    def test_preserves_kinds(self, tiny_schema):
        workload = Workload(
            tiny_schema,
            [
                Query(0, "ORDERS", frozenset({0}), 10.0),
                Query(
                    1,
                    "ORDERS",
                    frozenset({2}),
                    5.0,
                    kind=QueryKind.UPDATE,
                ),
                Query(
                    2,
                    "ITEMS",
                    frozenset({4, 5}),
                    2.0,
                    kind=QueryKind.INSERT,
                ),
            ],
        )
        restored = workload_from_dict(workload_to_dict(workload))
        assert [query.kind for query in restored] == [
            QueryKind.SELECT,
            QueryKind.UPDATE,
            QueryKind.INSERT,
        ]


class TestConfigurationRoundTrip:
    def test_exact(self, tiny_schema):
        configuration = IndexConfiguration(
            [
                Index.of(tiny_schema, (1, 3)),
                Index.of(tiny_schema, (0,)),
                Index.of(tiny_schema, (4,)),
            ]
        )
        restored = configuration_from_dict(
            configuration_to_dict(configuration)
        )
        assert restored == configuration

    def test_empty(self):
        empty = IndexConfiguration()
        assert configuration_from_dict(
            configuration_to_dict(empty)
        ) == empty

    def test_attribute_order_preserved(self, tiny_schema):
        configuration = IndexConfiguration(
            [Index.of(tiny_schema, (3, 1))]
        )
        restored = configuration_from_dict(
            configuration_to_dict(configuration)
        )
        (index,) = restored
        assert index.attributes == (3, 1)


class TestResultRoundTrip:
    def test_exact(self, tiny_workload, tiny_optimizer):
        budget = relative_budget(tiny_workload.schema, 0.4)
        result = ExtendAlgorithm(tiny_optimizer).select(
            tiny_workload, budget
        )
        restored = result_from_dict(result_to_dict(result))
        # Algorithms may return SelectionResult subclasses (ExtendResult),
        # so compare serialized content, not dataclass identity.
        assert result_to_dict(restored) == result_to_dict(result)
        assert restored.configuration == result.configuration
        assert restored.total_cost == result.total_cost
        assert restored.steps == result.steps

    def test_step_trace_round_trips_exactly(
        self, tiny_workload, tiny_optimizer
    ):
        budget = relative_budget(tiny_workload.schema, 0.4)
        result = ExtendAlgorithm(tiny_optimizer).select(
            tiny_workload, budget
        )
        assert result.steps  # Extend always records its construction
        restored = result_from_dict(result_to_dict(result))
        assert restored.steps == result.steps
        for original, clone in zip(result.steps, restored.steps):
            assert clone.kind is original.kind
            assert clone.ratio == original.ratio

    def test_degraded_result_with_steps_round_trips(
        self, tiny_workload, tiny_optimizer
    ):
        """The satellite contract: a degraded result — status, step
        trace, and configuration signature — survives persistence
        exactly, so post-mortems of deadline-cut runs see precisely
        what the service saw."""
        import dataclasses

        from repro.core.steps import STATUS_DEGRADED

        budget = relative_budget(tiny_workload.schema, 0.4)
        complete = ExtendAlgorithm(tiny_optimizer).select(
            tiny_workload, budget
        )
        # A degraded run is a prefix of the full construction.
        result = dataclasses.replace(
            complete,
            status=STATUS_DEGRADED,
            steps=complete.steps[:-1] if complete.steps else (),
        )
        restored = result_from_dict(result_to_dict(result))
        assert result_to_dict(restored) == result_to_dict(result)
        assert restored.degraded
        assert restored.steps == result.steps
        assert (
            restored.configuration_signature()
            == result.configuration_signature()
        )

    def test_pre_step_artifacts_default_to_empty_trace(
        self, tiny_workload, tiny_optimizer
    ):
        budget = relative_budget(tiny_workload.schema, 0.4)
        result = ExtendAlgorithm(tiny_optimizer).select(
            tiny_workload, budget
        )
        data = result_to_dict(result)
        del data["steps"]  # artifact written before step persistence
        assert result_from_dict(data).steps == ()


class TestFiles:
    def test_save_and_load(self, tiny_workload, tmp_path):
        path = str(tmp_path / "workload.json")
        save_json(path, workload_to_dict(tiny_workload))
        restored = workload_from_dict(load_json(path))
        assert restored.query_count == tiny_workload.query_count

    def test_version_check(self, tiny_schema):
        data = schema_to_dict(tiny_schema)
        data["version"] = 99
        with pytest.raises(ReproError, match="version"):
            schema_from_dict(data)

    def test_files_are_deterministic(self, tiny_workload, tmp_path):
        first = str(tmp_path / "a.json")
        second = str(tmp_path / "b.json")
        save_json(first, workload_to_dict(tiny_workload))
        save_json(second, workload_to_dict(tiny_workload))
        with open(first) as a, open(second) as b:
            assert a.read() == b.read()


class TestStatusRoundTrip:
    def test_completed_status_round_trips(
        self, tiny_workload, tiny_optimizer
    ):
        budget = relative_budget(tiny_workload.schema, 0.4)
        result = ExtendAlgorithm(tiny_optimizer).select(
            tiny_workload, budget
        )
        data = result_to_dict(result)
        assert data["status"] == "completed"
        assert result_from_dict(data).status == "completed"

    def test_degraded_status_round_trips(
        self, tiny_workload, tiny_optimizer
    ):
        import dataclasses

        from repro.core.steps import STATUS_DEGRADED

        budget = relative_budget(tiny_workload.schema, 0.4)
        result = dataclasses.replace(
            ExtendAlgorithm(tiny_optimizer).select(tiny_workload, budget),
            status=STATUS_DEGRADED,
        )
        restored = result_from_dict(result_to_dict(result))
        assert restored.status == STATUS_DEGRADED
        assert restored.degraded

    def test_pre_resilience_artifacts_default_to_completed(
        self, tiny_workload, tiny_optimizer
    ):
        budget = relative_budget(tiny_workload.schema, 0.4)
        result = ExtendAlgorithm(tiny_optimizer).select(
            tiny_workload, budget
        )
        data = result_to_dict(result)
        del data["status"]  # artifact written before the status field
        restored = result_from_dict(data)
        assert restored.status == "completed"
        assert not restored.degraded
