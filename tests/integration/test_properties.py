"""Property-based tests (hypothesis) on core data structures and
invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frontier import Frontier, FrontierPoint
from repro.cost.model import CostModel
from repro.cost.whatif import AnalyticalCostSource, WhatIfOptimizer
from repro.indexes.index import Index, canonical_index
from repro.indexes.memory import index_memory
from repro.workload.query import Query, Workload
from repro.workload.schema import Schema

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

ROWS = 10_000


@st.composite
def schemas(draw) -> Schema:
    """Single-table schemas with 3–8 attributes of random statistics."""
    attribute_count = draw(st.integers(min_value=3, max_value=8))
    columns = []
    for position in range(attribute_count):
        distinct = draw(st.integers(min_value=1, max_value=ROWS))
        size = draw(st.integers(min_value=1, max_value=16))
        columns.append((f"A{position}", distinct, size))
    return Schema.build({"T": (ROWS, columns)})


@st.composite
def schema_and_query(draw):
    schema = draw(schemas())
    ids = [a.id for a in schema.iter_attributes()]
    subset = draw(
        st.sets(st.sampled_from(ids), min_size=1, max_size=len(ids))
    )
    frequency = draw(
        st.floats(min_value=0.5, max_value=1e4, allow_nan=False)
    )
    return schema, Query(0, "T", frozenset(subset), frequency)


@st.composite
def schema_query_and_index(draw):
    schema, query = draw(schema_and_query())
    ids = [a.id for a in schema.iter_attributes()]
    width = draw(st.integers(min_value=1, max_value=len(ids)))
    permutation = draw(st.permutations(ids))
    return schema, query, Index.of(schema, tuple(permutation[:width]))


# ----------------------------------------------------------------------
# Cost model properties
# ----------------------------------------------------------------------


class TestCostModelProperties:
    @given(schema_query_and_index())
    @settings(max_examples=200, deadline=None)
    def test_index_cost_never_exceeds_sequential(self, data):
        schema, query, index = data
        model = CostModel(schema)
        assert model.index_cost(query, index) <= (
            model.sequential_cost(query) * (1 + 1e-12)
        )

    @given(schema_query_and_index())
    @settings(max_examples=200, deadline=None)
    def test_extension_is_monotone(self, data):
        """f_j(k·i) <= f_j(k) for every appended attribute i."""
        schema, query, index = data
        model = CostModel(schema)
        base = model.index_cost(query, index)
        for attribute in schema.iter_attributes():
            if attribute.id in index.attributes:
                continue
            extended = index.extended_by(attribute.id)
            assert model.index_cost(query, extended) <= base * (1 + 1e-12)

    @given(schema_query_and_index())
    @settings(max_examples=100, deadline=None)
    def test_costs_are_positive_and_finite(self, data):
        schema, query, index = data
        model = CostModel(schema)
        for cost in (
            model.sequential_cost(query),
            model.index_cost(query, index),
            model.multi_index_cost(query, [index]),
        ):
            assert cost > 0
            assert math.isfinite(cost)

    @given(schema_query_and_index())
    @settings(max_examples=100, deadline=None)
    def test_multi_index_never_worse_than_single(self, data):
        schema, query, index = data
        model = CostModel(schema)
        assert model.multi_index_cost(query, [index]) <= (
            model.index_cost(query, index) * (1 + 1e-12)
        )


# ----------------------------------------------------------------------
# Memory model properties
# ----------------------------------------------------------------------


class TestMemoryProperties:
    @given(schema_query_and_index())
    @settings(max_examples=100, deadline=None)
    def test_memory_positive_and_grows_under_extension(self, data):
        schema, _, index = data
        base = index_memory(schema, index)
        assert base > 0
        for attribute in schema.iter_attributes():
            if attribute.id in index.attributes:
                continue
            extended = index.extended_by(attribute.id)
            assert index_memory(schema, extended) > base

    @given(schemas(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_memory_is_permutation_invariant(self, schema, data):
        ids = [a.id for a in schema.iter_attributes()]
        subset = data.draw(
            st.sets(st.sampled_from(ids), min_size=1, max_size=len(ids))
        )
        permutation = data.draw(st.permutations(sorted(subset)))
        canonical = canonical_index(schema, subset)
        other = Index.of(schema, tuple(permutation))
        assert index_memory(schema, canonical) == index_memory(
            schema, other
        )


# ----------------------------------------------------------------------
# Frontier properties
# ----------------------------------------------------------------------


points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0, max_value=1e9, allow_nan=False),
    ),
    min_size=0,
    max_size=50,
)


class TestFrontierProperties:
    @given(points_strategy)
    @settings(max_examples=200, deadline=None)
    def test_frontier_is_sorted_and_strictly_improving(self, raw_points):
        frontier = Frontier(
            FrontierPoint(memory=m, cost=c) for m, c in raw_points
        )
        memories = [p.memory for p in frontier.points]
        costs = [p.cost for p in frontier.points]
        assert memories == sorted(memories)
        assert all(b < a for a, b in zip(costs, costs[1:]))

    @given(points_strategy, st.floats(min_value=0, max_value=1e6))
    @settings(max_examples=200, deadline=None)
    def test_cost_at_is_monotone_in_budget(self, raw_points, budget):
        frontier = Frontier(
            FrontierPoint(memory=m, cost=c) for m, c in raw_points
        )
        assert frontier.cost_at(budget) >= frontier.cost_at(budget * 2)

    @given(points_strategy)
    @settings(max_examples=100, deadline=None)
    def test_frontier_dominates_every_input_point(self, raw_points):
        frontier = Frontier(
            FrontierPoint(memory=m, cost=c) for m, c in raw_points
        )
        for memory, cost in raw_points:
            assert frontier.cost_at(memory) <= cost


# ----------------------------------------------------------------------
# Extend invariants on random workloads
# ----------------------------------------------------------------------


@st.composite
def random_workloads(draw):
    schema = draw(schemas())
    ids = [a.id for a in schema.iter_attributes()]
    query_count = draw(st.integers(min_value=1, max_value=8))
    queries = []
    for query_id in range(query_count):
        subset = draw(
            st.sets(st.sampled_from(ids), min_size=1, max_size=len(ids))
        )
        frequency = draw(st.integers(min_value=1, max_value=1000))
        queries.append(
            Query(query_id, "T", frozenset(subset), float(frequency))
        )
    return Workload(schema, queries)


class TestExtendProperties:
    @given(random_workloads(), st.floats(min_value=0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_budget_respected_and_cost_consistent(self, workload, share):
        from repro.core.extend import ExtendAlgorithm
        from repro.indexes.memory import relative_budget

        optimizer = WhatIfOptimizer(
            AnalyticalCostSource(CostModel(workload.schema))
        )
        budget = relative_budget(workload.schema, share)
        result = ExtendAlgorithm(optimizer).select(workload, budget)
        assert result.memory <= budget
        fresh = optimizer.workload_cost(workload, result.configuration)
        assert result.total_cost == pytest.approx(fresh, rel=1e-9)

    @given(random_workloads())
    @settings(max_examples=30, deadline=None)
    def test_steps_never_increase_cost(self, workload):
        from repro.core.extend import ExtendAlgorithm
        from repro.indexes.memory import relative_budget

        optimizer = WhatIfOptimizer(
            AnalyticalCostSource(CostModel(workload.schema))
        )
        budget = relative_budget(workload.schema, 1.0)
        result = ExtendAlgorithm(optimizer).select(workload, budget)
        for step in result.steps:
            assert step.cost_after <= step.cost_before * (1 + 1e-12)
