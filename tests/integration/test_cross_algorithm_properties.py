"""Cross-algorithm correctness properties (hypothesis).

Relationships that must hold between the algorithms on *any* workload:

* CoPhy with zero MIP gap equals the exhaustive optimum,
* CoPhy (optimal over the candidate set) is never beaten by any
  heuristic restricted to the same candidate set,
* Extend's result does not depend on the order queries are listed in,
* the swap pass never worsens any algorithm's selection.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cophy.exhaustive import exhaustive_best_selection
from repro.cophy.solver import CoPhyAlgorithm
from repro.core.extend import ExtendAlgorithm
from repro.cost.model import CostModel
from repro.cost.whatif import AnalyticalCostSource, WhatIfOptimizer
from repro.heuristics.performance import BenefitPerSizeHeuristic
from repro.heuristics.rules import FrequencyHeuristic
from repro.indexes.candidates import (
    single_attribute_candidates,
    syntactically_relevant_candidates,
)
from repro.indexes.memory import relative_budget
from repro.workload.query import Query, Workload
from repro.workload.schema import Schema


@st.composite
def tiny_problems(draw):
    """Single-table workloads small enough for exhaustive search."""
    attribute_count = draw(st.integers(min_value=3, max_value=5))
    columns = [
        (
            f"A{position}",
            draw(st.integers(min_value=2, max_value=5_000)),
            draw(st.integers(min_value=1, max_value=8)),
        )
        for position in range(attribute_count)
    ]
    schema = Schema.build({"T": (5_000, columns)})
    ids = list(range(attribute_count))
    query_count = draw(st.integers(min_value=1, max_value=5))
    queries = [
        Query(
            query_id,
            "T",
            frozenset(
                draw(
                    st.sets(
                        st.sampled_from(ids),
                        min_size=1,
                        max_size=attribute_count,
                    )
                )
            ),
            float(draw(st.integers(min_value=1, max_value=1_000))),
        )
        for query_id in range(query_count)
    ]
    share = draw(st.sampled_from([0.2, 0.5, 1.0]))
    return Workload(schema, queries), share


def _optimizer(workload: Workload) -> WhatIfOptimizer:
    return WhatIfOptimizer(
        AnalyticalCostSource(CostModel(workload.schema))
    )


class TestCoPhyOptimality:
    @given(tiny_problems())
    @settings(max_examples=25, deadline=None)
    def test_zero_gap_cophy_equals_exhaustive(self, problem):
        workload, share = problem
        optimizer = _optimizer(workload)
        candidates = single_attribute_candidates(workload)
        budget = relative_budget(workload.schema, share)
        solver_result = CoPhyAlgorithm(optimizer, mip_gap=0.0).select(
            workload, budget, candidates
        )
        truth = exhaustive_best_selection(
            workload, budget, candidates, optimizer
        )
        assert solver_result.total_cost == pytest.approx(
            truth.total_cost, rel=1e-9
        )

    @given(tiny_problems())
    @settings(max_examples=15, deadline=None)
    def test_cophy_never_beaten_by_heuristics_on_same_candidates(
        self, problem
    ):
        workload, share = problem
        optimizer = _optimizer(workload)
        candidates = syntactically_relevant_candidates(workload, 2)
        budget = relative_budget(workload.schema, share)
        optimal = CoPhyAlgorithm(optimizer, mip_gap=0.0).select(
            workload, budget, candidates
        )
        for heuristic in (
            FrequencyHeuristic(optimizer),
            BenefitPerSizeHeuristic(optimizer),
        ):
            result = heuristic.select(workload, budget, candidates)
            assert optimal.total_cost <= result.total_cost * (1 + 1e-9)


class TestExtendInvariance:
    @given(tiny_problems(), st.randoms(use_true_random=False))
    @settings(max_examples=20, deadline=None)
    def test_result_independent_of_query_order(self, problem, rng):
        workload, share = problem
        budget = relative_budget(workload.schema, share)
        baseline_result = ExtendAlgorithm(_optimizer(workload)).select(
            workload, budget
        )

        shuffled_queries = list(workload.queries)
        rng.shuffle(shuffled_queries)
        shuffled = Workload(workload.schema, shuffled_queries)
        shuffled_result = ExtendAlgorithm(_optimizer(shuffled)).select(
            shuffled, budget
        )
        assert shuffled_result.configuration == (
            baseline_result.configuration
        )
        assert shuffled_result.total_cost == pytest.approx(
            baseline_result.total_cost
        )

    @given(tiny_problems())
    @settings(max_examples=15, deadline=None)
    def test_extend_never_worse_than_no_indexes(self, problem):
        workload, share = problem
        optimizer = _optimizer(workload)
        budget = relative_budget(workload.schema, share)
        result = ExtendAlgorithm(optimizer).select(workload, budget)
        assert result.total_cost <= optimizer.workload_cost(
            workload, ()
        ) * (1 + 1e-12)
