"""Cross-module integration tests.

These tests exercise whole pipelines — workload generation through
selection through evaluation — and check the paper's qualitative claims
at test-friendly scale.
"""

from __future__ import annotations

import pytest

from repro.cophy.solver import CoPhyAlgorithm
from repro.core.extend import ExtendAlgorithm
from repro.core.frontier import frontier_from_steps
from repro.core.localsearch import swap_local_search
from repro.cost.model import CostModel
from repro.cost.whatif import AnalyticalCostSource, WhatIfOptimizer
from repro.engine.columnstore import ColumnStoreDatabase
from repro.engine.measured import MeasuredCostSource, evaluate_configuration
from repro.heuristics.performance import BenefitPerSizeHeuristic
from repro.heuristics.rules import FrequencyHeuristic
from repro.indexes.candidates import syntactically_relevant_candidates
from repro.indexes.memory import relative_budget
from repro.workload.generator import GeneratorConfig, generate_workload
from repro.workload.tpcc import tpcc_workload


@pytest.fixture(scope="module")
def workload():
    """A moderate Appendix-C workload (N = 30, Q = 45)."""
    return generate_workload(
        GeneratorConfig(
            tables=3,
            attributes_per_table=10,
            queries_per_table=15,
            seed=77,
        )
    )


@pytest.fixture(scope="module")
def optimizer(workload):
    return WhatIfOptimizer(
        AnalyticalCostSource(CostModel(workload.schema))
    )


class TestQualityOrdering:
    """The paper's headline orderings must hold end to end."""

    def test_h6_close_to_cophy_all(self, workload, optimizer):
        candidates = syntactically_relevant_candidates(workload)
        budget = relative_budget(workload.schema, 0.4)
        optimal = CoPhyAlgorithm(optimizer, mip_gap=0.001).select(
            workload, budget, candidates
        )
        extend = ExtendAlgorithm(optimizer).select(workload, budget)
        swap = swap_local_search(
            workload, optimizer, extend, budget, candidates
        )
        assert swap.total_cost <= optimal.total_cost * 1.10

    def test_h6_beats_rule_based_heuristics(self, workload, optimizer):
        candidates = syntactically_relevant_candidates(workload)
        budget = relative_budget(workload.schema, 0.4)
        extend = ExtendAlgorithm(optimizer).select(workload, budget)
        h1 = FrequencyHeuristic(optimizer).select(
            workload, budget, candidates
        )
        assert extend.total_cost <= h1.total_cost

    def test_cophy_quality_degrades_with_small_candidate_sets(
        self, workload, optimizer
    ):
        from repro.indexes.candidates import candidates_h1m
        from repro.workload.stats import WorkloadStatistics

        statistics = WorkloadStatistics(workload)
        budget = relative_budget(workload.schema, 0.4)
        small = CoPhyAlgorithm(optimizer).select(
            workload, budget, candidates_h1m(statistics, 8)
        )
        full = CoPhyAlgorithm(optimizer).select(
            workload,
            budget,
            syntactically_relevant_candidates(workload),
        )
        assert full.total_cost <= small.total_cost

    def test_h6_solve_time_far_below_cophy_all(self, workload, optimizer):
        candidates = syntactically_relevant_candidates(workload)
        budget = relative_budget(workload.schema, 0.4)
        cophy = CoPhyAlgorithm(optimizer).select(
            workload, budget, candidates
        )
        extend = ExtendAlgorithm(optimizer).select(workload, budget)
        # Generous bound: the point is the order of magnitude.
        assert extend.runtime_seconds < cophy.runtime_seconds * 10


class TestWhatIfEconomy:
    def test_h6_uses_fewer_calls_than_cophy_table(self, workload):
        """Section III-A: H6's call count beats the up-front cost table
        once |I| is large relative to N."""
        candidates = syntactically_relevant_candidates(workload)
        budget = relative_budget(workload.schema, 0.4)

        extend_optimizer = WhatIfOptimizer(
            AnalyticalCostSource(CostModel(workload.schema))
        )
        ExtendAlgorithm(extend_optimizer).select(workload, budget)

        table_optimizer = WhatIfOptimizer(
            AnalyticalCostSource(CostModel(workload.schema))
        )
        table_optimizer.cost_table(workload, candidates)

        assert extend_optimizer.calls < table_optimizer.calls


class TestFrontierShape:
    def test_extend_frontier_is_convexish(self, workload, optimizer):
        """Property 4 (Section V): step ratios decrease — diminishing
        returns along the construction."""
        budget = relative_budget(workload.schema, 1.0)
        result = ExtendAlgorithm(optimizer).select(workload, budget)
        ratios = [step.ratio for step in result.steps]
        # Allow small local violations (affected-query sets differ), but
        # the overall trend must be non-increasing.
        violations = sum(
            1
            for earlier, later in zip(ratios, ratios[1:])
            if later > earlier * 1.01
        )
        assert violations <= len(ratios) // 4

    def test_frontier_serves_every_budget(self, workload, optimizer):
        budget = relative_budget(workload.schema, 1.0)
        result = ExtendAlgorithm(optimizer).select(workload, budget)
        frontier = frontier_from_steps(
            result.steps,
            initial_cost=optimizer.workload_cost(workload, ()),
        )
        previous = float("inf")
        for share in (0.0, 0.2, 0.4, 0.8, 1.0):
            cost = frontier.cost_at(
                relative_budget(workload.schema, share)
            )
            assert cost <= previous
            previous = cost


class TestMeasuredPipeline:
    def test_selection_on_measured_costs_improves_execution(self):
        workload = generate_workload(
            GeneratorConfig(
                tables=2,
                attributes_per_table=6,
                queries_per_table=8,
                seed=21,
            )
        )
        database = ColumnStoreDatabase(
            workload.schema, seed=9, row_cap=20_000
        )
        source = MeasuredCostSource(database)
        optimizer = WhatIfOptimizer(source)
        budget = relative_budget(workload.schema, 0.5)
        result = ExtendAlgorithm(optimizer).select(workload, budget)
        baseline = evaluate_configuration(
            source, workload, type(result.configuration)()
        )
        tuned = evaluate_configuration(
            source, workload, result.configuration
        )
        assert tuned.total_cost < baseline.total_cost

    def test_h5_on_measured_costs(self):
        workload = generate_workload(
            GeneratorConfig(
                tables=2,
                attributes_per_table=6,
                queries_per_table=8,
                seed=21,
            )
        )
        database = ColumnStoreDatabase(
            workload.schema, seed=9, row_cap=20_000
        )
        optimizer = WhatIfOptimizer(MeasuredCostSource(database))
        candidates = syntactically_relevant_candidates(workload, 3)
        budget = relative_budget(workload.schema, 0.5)
        result = BenefitPerSizeHeuristic(optimizer).select(
            workload, budget, candidates
        )
        assert result.memory <= budget


class TestTpccCaseStudy:
    def test_construction_mirrors_fig1_structure(self):
        """On TPC-C, the algorithm creates single-attribute indexes
        first and then morphs them into the multi-attribute indexes of
        Fig. 1 — including a wide (>= 2 attributes) CUSTOMER index."""
        workload = tpcc_workload()
        optimizer = WhatIfOptimizer(
            AnalyticalCostSource(CostModel(workload.schema))
        )
        budget = relative_budget(workload.schema, 0.6)
        result = ExtendAlgorithm(optimizer).select(workload, budget)
        customer_indexes = result.configuration.indexes_on_table(
            "CUSTOMER"
        )
        assert any(index.width >= 2 for index in customer_indexes)
        from repro.core.steps import StepKind

        kinds = [step.kind for step in result.steps]
        assert kinds[0] is StepKind.NEW_SINGLE
        assert StepKind.EXTEND in kinds
